"""AES cipher modes: CTR keystream, CMAC (RFC 4493), and GCM (SP 800-38D).

These provide the building blocks used throughout the in-vehicle-network
security protocols:

* **CTR** — keystream generation, also the DRBG behind HRP-UWB scrambled
  timestamp sequences (:mod:`repro.phy.hrp`).
* **CMAC** — the MAC underlying AUTOSAR SECOC and CiA 613-2 CANsec.
* **GCM** — the AEAD mandated by IEEE 802.1AE MACsec (GCM-AES-128/256).

All algorithms are validated against published test vectors in the test
suite (RFC 4493 appendix, NIST GCM test cases).
"""

from __future__ import annotations

from repro.crypto.aes import AES, xor_bytes

__all__ = ["ctr_keystream", "ctr_xcrypt", "Cmac", "cmac", "Gcm", "AuthenticationError"]


class AuthenticationError(Exception):
    """Raised when an AEAD tag or MAC fails verification."""


def _inc32(block: bytes) -> bytes:
    """Increment the rightmost 32 bits of a 16-byte block (GCM counter)."""
    prefix, ctr = block[:12], int.from_bytes(block[12:], "big")
    return prefix + ((ctr + 1) & 0xFFFFFFFF).to_bytes(4, "big")


def ctr_keystream(key: bytes, initial_counter: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of AES-CTR keystream.

    ``initial_counter`` is a full 16-byte counter block; the rightmost 32
    bits are incremented per block (GCM-style), which is adequate for all
    message sizes used in this project.
    """
    if len(initial_counter) != 16:
        raise ValueError("initial counter must be 16 bytes")
    cipher = AES(key)
    out = bytearray()
    counter = initial_counter
    while len(out) < length:
        out.extend(cipher.encrypt_block(counter))
        counter = _inc32(counter)
    return bytes(out[:length])


def ctr_xcrypt(key: bytes, initial_counter: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt ``data`` with AES-CTR (the operation is symmetric)."""
    return xor_bytes(data, ctr_keystream(key, initial_counter, len(data)))


def _left_shift_one(block: bytes) -> bytes:
    value = int.from_bytes(block, "big")
    return ((value << 1) & ((1 << 128) - 1)).to_bytes(16, "big")


class Cmac:
    """AES-CMAC per RFC 4493, with support for truncated tags.

    Truncation matters for the reproduction: SECOC and CANsec transmit
    truncated MACs to save bus bandwidth, trading forgery resistance for
    goodput (ablation ABL-2 in DESIGN.md).
    """

    def __init__(self, key: bytes) -> None:
        self._cipher = AES(key)
        zero = self._cipher.encrypt_block(b"\x00" * 16)
        k1 = _left_shift_one(zero)
        if zero[0] & 0x80:
            k1 = xor_bytes(k1, b"\x00" * 15 + b"\x87")
        k2 = _left_shift_one(k1)
        if k1[0] & 0x80:
            k2 = xor_bytes(k2, b"\x00" * 15 + b"\x87")
        self._k1 = k1
        self._k2 = k2

    def tag(self, message: bytes, tag_bits: int = 128) -> bytes:
        """Compute the CMAC over ``message`` truncated to ``tag_bits`` bits.

        ``tag_bits`` must be a positive multiple of 8, at most 128. The tag
        keeps the most significant (leftmost) bytes, per RFC 4493 §2.4 and
        AUTOSAR SECOC truncation rules.
        """
        if tag_bits <= 0 or tag_bits > 128 or tag_bits % 8:
            raise ValueError("tag_bits must be a multiple of 8 in (0, 128]")
        n_blocks = max(1, (len(message) + 15) // 16)
        complete = len(message) % 16 == 0 and len(message) > 0
        if complete:
            last = xor_bytes(message[-16:], self._k1)
        else:
            tail = message[16 * (n_blocks - 1) :]
            padded = tail + b"\x80" + b"\x00" * (15 - len(tail))
            last = xor_bytes(padded, self._k2)
        state = b"\x00" * 16
        for i in range(n_blocks - 1):
            state = self._cipher.encrypt_block(xor_bytes(state, message[16 * i : 16 * i + 16]))
        full = self._cipher.encrypt_block(xor_bytes(state, last))
        return full[: tag_bits // 8]

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-result check of a (possibly truncated) tag."""
        expected = self.tag(message, tag_bits=len(tag) * 8)
        # Non-short-circuit compare; timing is irrelevant in simulation but
        # we keep the idiom to mirror real implementations.
        diff = 0
        for a, b in zip(expected, tag):
            diff |= a ^ b
        return diff == 0 and len(expected) == len(tag)


def cmac(key: bytes, message: bytes, tag_bits: int = 128) -> bytes:
    """One-shot AES-CMAC."""
    return Cmac(key).tag(message, tag_bits=tag_bits)


def _ghash_mul(x: int, y: int) -> int:
    """Carry-less multiply in GF(2^128) with the GCM polynomial (bit-reflected)."""
    r = 0xE1 << 120
    z = 0
    v = y
    for i in range(127, -1, -1):
        if (x >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ r
        else:
            v >>= 1
    return z


class Gcm:
    """AES-GCM authenticated encryption (NIST SP 800-38D).

    Supports the 96-bit IV fast path and arbitrary IV lengths via GHASH.
    This is the AEAD used by the MACsec model (:mod:`repro.ivn.macsec`).
    """

    def __init__(self, key: bytes) -> None:
        self._cipher = AES(key)
        self._key = key
        self._h = int.from_bytes(self._cipher.encrypt_block(b"\x00" * 16), "big")

    def _ghash(self, data: bytes) -> bytes:
        y = 0
        for i in range(0, len(data), 16):
            block = data[i : i + 16].ljust(16, b"\x00")
            y = _ghash_mul(y ^ int.from_bytes(block, "big"), self._h)
        return y.to_bytes(16, "big")

    def _j0(self, iv: bytes) -> bytes:
        if len(iv) == 12:
            return iv + b"\x00\x00\x00\x01"
        pad = (16 - len(iv) % 16) % 16
        return self._ghash(iv + b"\x00" * (pad + 8) + (8 * len(iv)).to_bytes(8, "big"))

    def _auth_tag(self, j0: bytes, aad: bytes, ciphertext: bytes, tag_len: int) -> bytes:
        def padded(d: bytes) -> bytes:
            return d + b"\x00" * ((16 - len(d) % 16) % 16)

        s = self._ghash(
            padded(aad)
            + padded(ciphertext)
            + (8 * len(aad)).to_bytes(8, "big")
            + (8 * len(ciphertext)).to_bytes(8, "big")
        )
        return xor_bytes(s, self._cipher.encrypt_block(j0))[:tag_len]

    def encrypt(self, iv: bytes, plaintext: bytes, aad: bytes = b"", tag_len: int = 16) -> tuple[bytes, bytes]:
        """Return ``(ciphertext, tag)``."""
        j0 = self._j0(iv)
        ciphertext = ctr_xcrypt(self._key, _inc32(j0), plaintext)
        return ciphertext, self._auth_tag(j0, aad, ciphertext, tag_len)

    def decrypt(self, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b"") -> bytes:
        """Verify ``tag`` and return the plaintext; raise on failure."""
        j0 = self._j0(iv)
        expected = self._auth_tag(j0, aad, ciphertext, len(tag))
        diff = 0
        for a, b in zip(expected, tag):
            diff |= a ^ b
        if diff or len(expected) != len(tag):
            raise AuthenticationError("GCM tag verification failed")
        return ctr_xcrypt(self._key, _inc32(j0), ciphertext)
