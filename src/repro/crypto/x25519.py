"""X25519 Diffie-Hellman key agreement (RFC 7748) in pure Python.

Used by the MACsec Key Agreement model (:mod:`repro.ivn.macsec`) and the
SSI layer for establishing pairwise session keys between vehicle
components — the "(session) key storage" question that distinguishes
scenarios S1/S2/S3 in the paper's §III-A.

Pinned to the RFC 7748 §5.2 and §6.1 test vectors in the test suite.
"""

from __future__ import annotations

__all__ = ["x25519", "x25519_base", "BASE_POINT"]

_P = 2**255 - 19
_A24 = 121665

BASE_POINT = (9).to_bytes(32, "little")


def _decode_scalar(k: bytes) -> int:
    if len(k) != 32:
        raise ValueError("X25519 scalar must be 32 bytes")
    a = bytearray(k)
    a[0] &= 248
    a[31] &= 127
    a[31] |= 64
    return int.from_bytes(bytes(a), "little")


def _decode_u(u: bytes) -> int:
    if len(u) != 32:
        raise ValueError("X25519 u-coordinate must be 32 bytes")
    value = int.from_bytes(u, "little")
    return (value & ((1 << 255) - 1)) % _P


def x25519(scalar: bytes, u_coord: bytes) -> bytes:
    """Montgomery-ladder scalar multiplication: returns scalar * point(u)."""
    k = _decode_scalar(scalar)
    u = _decode_u(u_coord)

    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        if swap ^ k_t:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = k_t

        a = (x2 + z2) % _P
        aa = a * a % _P
        b = (x2 - z2) % _P
        bb = b * b % _P
        e = (aa - bb) % _P
        c = (x3 + z3) % _P
        d = (x3 - z3) % _P
        da = d * a % _P
        cb = c * b % _P
        x3 = (da + cb) % _P
        x3 = x3 * x3 % _P
        z3 = (da - cb) % _P
        z3 = x1 * z3 * z3 % _P
        x2 = aa * bb % _P
        z2 = e * (aa + _A24 * e) % _P

    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2
    result = x2 * pow(z2, _P - 2, _P) % _P
    return result.to_bytes(32, "little")


def x25519_base(scalar: bytes) -> bytes:
    """Compute the public key for ``scalar`` (scalar * base point)."""
    return x25519(scalar, BASE_POINT)
