"""Key derivation: HMAC-SHA256 and HKDF (RFC 5869).

The zonal-network key hierarchy (MACsec CAK → SAK derivation, SECOC
per-PDU keys) and SSI session establishment both derive working keys from
master secrets via HKDF, mirroring how MKA and AUTOSAR KeyM structure key
material.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

__all__ = ["hmac_sha256", "hkdf_extract", "hkdf_expand", "hkdf"]


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 of ``message`` under ``key``."""
    return _hmac.new(key, message, hashlib.sha256).digest()


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """RFC 5869 extract step: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * 32
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """RFC 5869 expand step producing ``length`` bytes of output key material."""
    if length > 255 * 32:
        raise ValueError("HKDF-SHA256 output limited to 8160 bytes")
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac_sha256(prk, block + info + bytes([counter]))
        okm += block
        counter += 1
    return okm[:length]


def hkdf(ikm: bytes, *, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """One-shot HKDF-SHA256."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
