"""Shamir secret sharing over GF(256).

Substrate for the owner-controlled data-access layer
(:mod:`repro.datalayer.access`), modeled after the paper's reference
[54] (SeEMQTT): a data owner splits a content key into shares held by
independent *key trustees*, and a consumer must convince a threshold of
trustees to reconstruct it — no single trustee can leak the data.

The field is GF(2^8) with the AES polynomial (x^8+x^4+x^3+x+1), shared
with :mod:`repro.crypto.aes`; secrets of any byte length are shared
byte-wise with a common x-coordinate per share.
"""

from __future__ import annotations

from repro.core.rng import python_rng
from repro.crypto.aes import _gf_mul  # same field as AES

__all__ = ["split_secret", "reconstruct_secret", "Share"]

Share = tuple[int, bytes]  # (x coordinate, share bytes)


def _gf_pow(a: int, n: int) -> int:
    result = 1
    while n:
        if n & 1:
            result = _gf_mul(result, a)
        a = _gf_mul(a, a)
        n >>= 1
    return result


def _gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("no inverse of 0 in GF(256)")
    return _gf_pow(a, 254)


def split_secret(secret: bytes, *, threshold: int, n_shares: int,
                 seed_label: str = "shamir") -> list[Share]:
    """Split ``secret`` into ``n_shares`` shares, any ``threshold`` of
    which reconstruct it.

    Returns ``[(x, share_bytes), ...]`` with distinct non-zero x.
    """
    if not secret:
        raise ValueError("cannot share an empty secret")
    if not 1 <= threshold <= n_shares <= 255:
        raise ValueError("need 1 <= threshold <= n_shares <= 255")
    rng = python_rng(seed_label)
    # One random polynomial of degree threshold-1 per secret byte;
    # coefficient arrays indexed [byte][degree].
    coefficients = [
        [byte] + [rng.randrange(256) for _ in range(threshold - 1)]
        for byte in secret
    ]
    shares: list[Share] = []
    for x in range(1, n_shares + 1):
        share = bytearray()
        for poly in coefficients:
            accumulator = 0
            for degree, coefficient in enumerate(poly):
                accumulator ^= _gf_mul(coefficient, _gf_pow(x, degree))
            share.append(accumulator)
        shares.append((x, bytes(share)))
    return shares


def reconstruct_secret(shares: list[Share]) -> bytes:
    """Lagrange interpolation at x=0 over the provided shares.

    With at least ``threshold`` genuine shares this returns the secret;
    with fewer (or corrupted) shares it returns garbage — information-
    theoretically indistinguishable from random, which the tests verify
    behaviourally.
    """
    if not shares:
        raise ValueError("need at least one share")
    xs = [x for x, _ in shares]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate share x-coordinates")
    if any(x == 0 or not 0 < x < 256 for x in xs):
        raise ValueError("share x-coordinates must be in 1..255")
    length = len(shares[0][1])
    if any(len(data) != length for _, data in shares):
        raise ValueError("shares must have equal length")

    secret = bytearray(length)
    for byte_index in range(length):
        accumulator = 0
        for i, (xi, data) in enumerate(shares):
            # Lagrange basis at 0: prod_{j != i} xj / (xj - xi);
            # subtraction is XOR in GF(2^8).
            numerator, denominator = 1, 1
            for j, (xj, _) in enumerate(shares):
                if i == j:
                    continue
                numerator = _gf_mul(numerator, xj)
                denominator = _gf_mul(denominator, xi ^ xj)
            weight = _gf_mul(numerator, _gf_inv(denominator))
            accumulator ^= _gf_mul(data[byte_index], weight)
        secret[byte_index] = accumulator
    return bytes(secret)
