"""Ed25519 signatures (RFC 8032) in pure Python.

This is the signature scheme behind the self-sovereign-identity layer
(:mod:`repro.ssi`): DID authentication keys, verifiable-credential proofs,
and software-component attestations all sign with Ed25519, mirroring the
did:web / W3C VC ecosystem the paper references in §IV.

The implementation follows the RFC 8032 reference structure (twisted
Edwards curve edwards25519, SHA-512) and is pinned to the RFC's test
vectors in the test suite.  Not constant-time; simulation substrate only.
"""

from __future__ import annotations

import hashlib

__all__ = ["generate_public_key", "sign", "verify", "SignatureError"]

_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P
_I = pow(2, (_P - 1) // 4, _P)


class SignatureError(Exception):
    """Raised when a signature fails to verify or decode."""


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, _P - 2, _P)


# Points are extended homogeneous coordinates (X, Y, Z, T) with x=X/Z, y=Y/Z,
# x*y=T/Z.
_Point = tuple[int, int, int, int]


def _edwards_add(p: _Point, q: _Point) -> _Point:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = 2 * t1 * t2 * _D % _P
    d = 2 * z1 * z2 % _P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _edwards_double(p: _Point) -> _Point:
    x1, y1, z1, _ = p
    a = x1 * x1 % _P
    b = y1 * y1 % _P
    c = 2 * z1 * z1 % _P
    h = (a + b) % _P
    e = (h - (x1 + y1) * (x1 + y1)) % _P
    g = (a - b) % _P
    f = (c + g) % _P
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _scalar_mult(p: _Point, s: int) -> _Point:
    q: _Point = (0, 1, 1, 0)  # neutral element
    while s > 0:
        if s & 1:
            q = _edwards_add(q, p)
        p = _edwards_double(p)
        s >>= 1
    return q


def _recover_x(y: int, sign: int) -> int:
    if y >= _P:
        raise SignatureError("point decode: y out of range")
    x2 = (y * y - 1) * _inv(_D * y * y + 1) % _P
    if x2 == 0:
        if sign:
            raise SignatureError("point decode: invalid sign for x=0")
        return 0
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P:
        x = x * _I % _P
    if (x * x - x2) % _P:
        raise SignatureError("point decode: not on curve")
    if x & 1 != sign:
        x = _P - x
    return x


_BY = 4 * _inv(5) % _P
_BX = _recover_x(_BY, 0)
_B: _Point = (_BX, _BY, 1, _BX * _BY % _P)


def _compress(p: _Point) -> bytes:
    x, y, z, _ = p
    zinv = _inv(z)
    x, y = x * zinv % _P, y * zinv % _P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _decompress(data: bytes) -> _Point:
    if len(data) != 32:
        raise SignatureError("point must be 32 bytes")
    value = int.from_bytes(data, "little")
    sign = value >> 255
    y = value & ((1 << 255) - 1)
    x = _recover_x(y, sign)
    return (x, y, 1, x * y % _P)


def _clamp(scalar_bytes: bytes) -> int:
    a = int.from_bytes(scalar_bytes, "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a


def generate_public_key(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    if len(secret) != 32:
        raise ValueError("Ed25519 secret seed must be 32 bytes")
    h = _sha512(secret)
    a = _clamp(h[:32])
    return _compress(_scalar_mult(_B, a))


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature over ``message``."""
    if len(secret) != 32:
        raise ValueError("Ed25519 secret seed must be 32 bytes")
    h = _sha512(secret)
    a = _clamp(h[:32])
    prefix = h[32:]
    public = _compress(_scalar_mult(_B, a))
    r = int.from_bytes(_sha512(prefix + message), "little") % _L
    r_point = _compress(_scalar_mult(_B, r))
    k = int.from_bytes(_sha512(r_point + public + message), "little") % _L
    s = (r + k * a) % _L
    return r_point + s.to_bytes(32, "little")


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Return True iff ``signature`` is a valid signature of ``message``."""
    if len(public) != 32 or len(signature) != 64:
        return False
    try:
        a_point = _decompress(public)
        r_point = _decompress(signature[:32])
    except SignatureError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    k = int.from_bytes(_sha512(signature[:32] + public + message), "little") % _L
    lhs = _scalar_mult(_B, s)
    rhs = _edwards_add(r_point, _scalar_mult(a_point, k))
    # Compare projectively: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1.
    x1, y1, z1, _ = lhs
    x2, y2, z2, _ = rhs
    return (x1 * z2 - x2 * z1) % _P == 0 and (y1 * z2 - y2 * z1) % _P == 0
