"""Pure-Python AES block cipher (FIPS 197).

This module provides the raw 128-bit block transform for AES-128, AES-192,
and AES-256.  It exists because the reproduction environment has no binary
crypto libraries; the cipher modes built on top of it (CTR, CMAC, GCM) live
in :mod:`repro.crypto.modes`.

The S-box and its inverse are derived programmatically from the GF(2^8)
multiplicative inverse plus the FIPS 197 affine transform, which avoids
transcription errors in a 256-entry table.  Correctness is pinned to the
FIPS 197 appendix test vectors in the test suite.

This implementation favours clarity over speed and is **not** constant-time;
it is a simulation substrate, not a production cipher.
"""

from __future__ import annotations

__all__ = ["AES", "xor_bytes"]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Return the byte-wise XOR of two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"xor_bytes length mismatch: {len(a)} != {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    """Construct the AES S-box and inverse S-box from first principles."""
    # Multiplicative inverses via exponentiation tables over generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]

    def inv(a: int) -> int:
        if a == 0:
            return 0
        return exp[255 - log[a]]

    sbox = bytearray(256)
    for a in range(256):
        b = inv(a)
        # Affine transform: b XOR rot(b,1..4) XOR 0x63
        s = b
        for shift in (1, 2, 3, 4):
            s ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[a] = s ^ 0x63

    inv_sbox = bytearray(256)
    for a, s in enumerate(sbox):
        inv_sbox[s] = a
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]

# Precomputed GF(2^8) multiply-by-constant tables used by (Inv)MixColumns.
_MUL = {c: bytes(_gf_mul(x, c) for x in range(256)) for c in (2, 3, 9, 11, 13, 14)}


class AES:
    """AES block cipher supporting 128-, 192-, and 256-bit keys.

    Usage::

        cipher = AES(b"\\x00" * 16)
        ct = cipher.encrypt_block(b"\\x00" * 16)
        pt = cipher.decrypt_block(ct)
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24, or 32 bytes, got {len(key)}")
        self.key = bytes(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self.key)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        nk = len(key) // 4
        nr = self._rounds
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        # Group words into 16-byte round keys (flat lists for speed).
        return [
            [b for w in words[4 * r : 4 * r + 4] for b in w]
            for r in range(nr + 1)
        ]

    # The state is a flat 16-element list in column-major order, matching the
    # byte order of the input block (FIPS 197 s[r][c] = in[r + 4c]).

    @staticmethod
    def _shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(s: list[int]) -> list[int]:
        m2, m3 = _MUL[2], _MUL[3]
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = m2[a0] ^ m3[a1] ^ a2 ^ a3
            out[c + 1] = a0 ^ m2[a1] ^ m3[a2] ^ a3
            out[c + 2] = a0 ^ a1 ^ m2[a2] ^ m3[a3]
            out[c + 3] = m3[a0] ^ a1 ^ a2 ^ m2[a3]
        return out

    @staticmethod
    def _inv_mix_columns(s: list[int]) -> list[int]:
        m9, m11, m13, m14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = m14[a0] ^ m11[a1] ^ m13[a2] ^ m9[a3]
            out[c + 1] = m9[a0] ^ m14[a1] ^ m11[a2] ^ m13[a3]
            out[c + 2] = m13[a0] ^ m9[a1] ^ m14[a2] ^ m11[a3]
            out[c + 3] = m11[a0] ^ m13[a1] ^ m9[a2] ^ m14[a3]
        return out

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be exactly 16 bytes")
        rk = self._round_keys
        s = [b ^ k for b, k in zip(block, rk[0])]
        for rnd in range(1, self._rounds):
            s = [_SBOX[b] for b in s]
            s = self._shift_rows(s)
            s = self._mix_columns(s)
            s = [b ^ k for b, k in zip(s, rk[rnd])]
        s = [_SBOX[b] for b in s]
        s = self._shift_rows(s)
        s = [b ^ k for b, k in zip(s, rk[self._rounds])]
        return bytes(s)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be exactly 16 bytes")
        rk = self._round_keys
        s = [b ^ k for b, k in zip(block, rk[self._rounds])]
        for rnd in range(self._rounds - 1, 0, -1):
            s = self._inv_shift_rows(s)
            s = [_INV_SBOX[b] for b in s]
            s = [b ^ k for b, k in zip(s, rk[rnd])]
            s = self._inv_mix_columns(s)
        s = self._inv_shift_rows(s)
        s = [_INV_SBOX[b] for b in s]
        s = [b ^ k for b, k in zip(s, rk[0])]
        return bytes(s)
