"""Pure-Python cryptographic substrate for the reproduction.

The offline environment has no binary crypto packages, so every primitive
the paper's protocol stacks rely on is implemented here from the relevant
specifications and pinned to published test vectors:

* :mod:`repro.crypto.aes` — AES-128/192/256 block cipher (FIPS 197).
* :mod:`repro.crypto.modes` — CTR, CMAC (RFC 4493), GCM (SP 800-38D).
* :mod:`repro.crypto.ed25519` — Ed25519 signatures (RFC 8032).
* :mod:`repro.crypto.x25519` — X25519 key agreement (RFC 7748).
* :mod:`repro.crypto.kdf` — HMAC-SHA256 / HKDF (RFC 5869).

These are simulation substrates: clear, spec-shaped, and correct, but not
constant-time and not intended for production use.
"""

from repro.crypto.aes import AES, xor_bytes
from repro.crypto.ed25519 import SignatureError, generate_public_key, sign, verify
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract, hmac_sha256
from repro.crypto.modes import AuthenticationError, Cmac, Gcm, cmac, ctr_keystream, ctr_xcrypt
from repro.crypto.shamir import reconstruct_secret, split_secret
from repro.crypto.x25519 import x25519, x25519_base

__all__ = [
    "AES",
    "xor_bytes",
    "Cmac",
    "cmac",
    "Gcm",
    "AuthenticationError",
    "ctr_keystream",
    "ctr_xcrypt",
    "generate_public_key",
    "sign",
    "verify",
    "SignatureError",
    "split_secret",
    "reconstruct_secret",
    "x25519",
    "x25519_base",
    "hkdf",
    "hkdf_extract",
    "hkdf_expand",
    "hmac_sha256",
]
