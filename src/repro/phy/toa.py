"""Time-of-arrival estimation: cross-correlation and leading-edge search.

The paper's §II-A pinpoints the HRP vulnerability precisely: "if
cross-correlation is naively applied to compute the time-of-arrival on
these STS sequences, it opens the door to distance manipulation
attacks".  This module implements both halves of that statement:

* :func:`cross_correlation` + :func:`first_path_toa` — the standard
  receiver pipeline: correlate against the known template, find the
  strongest peak, then *back-search* for the earliest path above a
  fraction of the peak (real receivers must do this because in multipath
  the direct path is often weaker than a later reflection);
* the back-search threshold is exactly what ghost-peak attacks exploit —
  injected energy that correlates slightly with the template can exceed
  a low threshold at an earlier position, pulling the ToA (and thus the
  measured distance) down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layers import Layer
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["ToaEstimate", "cross_correlation", "first_path_toa"]


@dataclass(frozen=True)
class ToaEstimate:
    """Result of a ToA search over a correlation function."""

    toa_sample: int
    peak_sample: int
    peak_value: float
    first_path_value: float

    @property
    def used_early_path(self) -> bool:
        """True when back-search selected a path earlier than the main peak."""
        return self.toa_sample < self.peak_sample


def cross_correlation(received: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Correlation of ``received`` against ``template`` (valid lags only).

    Index ``k`` of the output corresponds to the template starting at
    sample ``k`` of the received signal.
    """
    received = np.asarray(received, dtype=float)
    template = np.asarray(template, dtype=float)
    if template.size == 0:
        raise ValueError("template must be non-empty")
    if received.size < template.size:
        raise ValueError("received signal shorter than template")
    return np.correlate(received, template, mode="valid")


def first_path_toa(correlation: np.ndarray, *,
                   back_search_window: int = 64,
                   threshold_ratio: float = 0.4) -> ToaEstimate:
    """Peak detection with leading-edge back-search.

    Args:
        correlation: output of :func:`cross_correlation`.
        back_search_window: how many samples before the main peak to
            search for an earlier (weaker) first path.
        threshold_ratio: fraction of the peak magnitude a sample must
            exceed to count as a path.  Low values accept weak early
            paths (good in deep multipath, but the attack surface for
            ghost peaks); high values are conservative.

    Returns the ToA estimate. The search is over correlation magnitude,
    so BPSK polarity does not matter.
    """
    if not 0.0 < threshold_ratio <= 1.0:
        raise ValueError("threshold_ratio must be in (0, 1]")
    if back_search_window < 0:
        raise ValueError("back_search_window must be non-negative")
    magnitude = np.abs(np.asarray(correlation, dtype=float))
    peak = int(np.argmax(magnitude))
    peak_value = float(magnitude[peak])
    threshold = threshold_ratio * peak_value
    start = max(0, peak - back_search_window)
    # Vectorized leading-edge search: first window sample at/above the
    # threshold (argmax of the boolean mask finds the first True),
    # matching the old index loop exactly.
    hits = magnitude[start:peak] >= threshold
    toa = start + int(np.argmax(hits)) if hits.any() else peak
    estimate = ToaEstimate(
        toa_sample=toa,
        peak_sample=peak,
        peak_value=peak_value,
        first_path_value=float(magnitude[toa]),
    )
    if OBS.enabled:
        OBS.count("phy.toa.estimates")
        if estimate.used_early_path:
            OBS.count("phy.toa.early_path_selected")
        OBS.emit(EventKind.TOA_ESTIMATE, Layer.PHYSICAL, "toa-search",
                 f"first path at sample {toa} (peak at {peak})",
                 toa_sample=toa, peak_sample=peak,
                 early_path=estimate.used_early_path,
                 threshold_ratio=threshold_ratio)
    return estimate
