"""Collision avoidance sensing under spoofing attacks (paper §II-B).

Collision avoidance fuses LiDAR, radar, camera, and (increasingly)
5G-PRS/UWB ranging.  The paper's two attack directions:

* **false obstacles** — spoof a ghost object into one sensor (emergency
  braking for nothing);
* **obscured real obstacles** — remove/hide a real object from a sensor
  (a collision), the counterpart of distance *enlargement*.

The defense the paper points to ([12], [13]) is cross-checking with
*secure two-way ranging*: a sensor reading that no other modality — and
in particular not the cryptographically protected ranging channel —
corroborates is rejected.

:class:`FusionPipeline` implements plausibility fusion with a
configurable agreement quorum and an optional secure-ranging
cross-check, and reports per-object verdicts plus scenario-level false
obstacle / missed obstacle rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.core.rng import numpy_rng

__all__ = [
    "SensorKind",
    "Detection",
    "Sensor",
    "GhostObjectAttack",
    "ObjectRemovalAttack",
    "FusionPipeline",
    "FusionReport",
]


class SensorKind(Enum):
    LIDAR = "lidar"
    RADAR = "radar"
    CAMERA = "camera"
    SECURE_RANGING = "secure_ranging"


@dataclass(frozen=True)
class Detection:
    """One sensor's report of an object at a distance (metres)."""

    sensor: SensorKind
    distance_m: float


@dataclass
class Sensor:
    """A noisy range sensor with bounded field of view.

    ``spoofable`` marks modalities an adjacent attacker can inject into
    (LiDAR/radar/camera per [9]-[12]); the secure-ranging channel is
    authenticated and not spoofable in this model — that is the paper's
    point in citing [12], [13].
    """

    kind: SensorKind
    noise_sigma_m: float = 0.3
    max_range_m: float = 120.0
    dropout_prob: float = 0.02
    spoofable: bool = True
    seed_label: str = ""
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        label = self.seed_label or f"sensor:{self.kind.value}"
        self._rng = numpy_rng(label)

    def observe(self, true_distances_m: list[float]) -> list[Detection]:
        """Detections for the true objects (noise + dropouts applied)."""
        detections = []
        for distance in true_distances_m:
            if distance > self.max_range_m:
                continue
            if self._rng.random() < self.dropout_prob:
                continue
            noisy = distance + self._rng.normal(0.0, self.noise_sigma_m)
            detections.append(Detection(self.kind, max(0.0, noisy)))
        return detections


def default_sensor_suite() -> list[Sensor]:
    """LiDAR + radar + camera + secure UWB/5G ranging."""
    return [
        Sensor(SensorKind.LIDAR, noise_sigma_m=0.1),
        Sensor(SensorKind.RADAR, noise_sigma_m=0.4),
        Sensor(SensorKind.CAMERA, noise_sigma_m=0.8, dropout_prob=0.05),
        Sensor(SensorKind.SECURE_RANGING, noise_sigma_m=0.2, spoofable=False),
    ]


@dataclass(frozen=True)
class GhostObjectAttack:
    """Inject a fake object at ``ghost_distance_m`` into one modality."""

    target: SensorKind
    ghost_distance_m: float

    def apply(self, sensor: Sensor, detections: list[Detection]) -> list[Detection]:
        if sensor.kind != self.target or not sensor.spoofable:
            return detections
        return detections + [Detection(sensor.kind, self.ghost_distance_m)]


@dataclass(frozen=True)
class ObjectRemovalAttack:
    """Hide real objects within ``window_m`` of ``target_distance_m`` from one modality."""

    target: SensorKind
    target_distance_m: float
    window_m: float = 5.0

    def apply(self, sensor: Sensor, detections: list[Detection]) -> list[Detection]:
        if sensor.kind != self.target or not sensor.spoofable:
            return detections
        return [
            d for d in detections
            if abs(d.distance_m - self.target_distance_m) > self.window_m
        ]


@dataclass(frozen=True)
class FusionReport:
    """Scenario-level outcome of fused perception."""

    confirmed_objects_m: tuple[float, ...]
    rejected_detections: int
    false_obstacles: int
    missed_obstacles: int


class FusionPipeline:
    """Plausibility fusion across the sensor suite.

    Detections from different sensors are clustered by distance
    (``gate_m`` association gate); a cluster is *confirmed* when it has
    at least ``quorum`` supporting sensors, or — with
    ``require_secure_corroboration`` — when the secure-ranging modality
    is among the supporters for safety-critical near-range objects.
    """

    def __init__(self, sensors: list[Sensor] | None = None, *,
                 gate_m: float = 2.0, quorum: int = 2,
                 require_secure_corroboration: bool = False,
                 critical_range_m: float = 30.0) -> None:
        if quorum < 1:
            raise ValueError("quorum must be >= 1")
        self.sensors = sensors if sensors is not None else default_sensor_suite()
        self.gate_m = gate_m
        self.quorum = quorum
        self.require_secure_corroboration = require_secure_corroboration
        self.critical_range_m = critical_range_m

    def perceive(self, true_distances_m: list[float],
                 attacks: list[GhostObjectAttack | ObjectRemovalAttack] | None = None,
                 ) -> FusionReport:
        """Run one perception cycle and compare against ground truth."""
        attacks = attacks or []
        all_detections: list[Detection] = []
        for sensor in self.sensors:
            detections = sensor.observe(true_distances_m)
            for attack in attacks:
                detections = attack.apply(sensor, detections)
            all_detections.extend(detections)

        clusters = self._cluster(all_detections)
        confirmed: list[float] = []
        rejected = 0
        for centre, members in clusters:
            supporters = {d.sensor for d in members}
            ok = len(supporters) >= self.quorum
            if (ok and self.require_secure_corroboration
                    and centre <= self.critical_range_m):
                ok = SensorKind.SECURE_RANGING in supporters
            if (not ok and self.require_secure_corroboration
                    and SensorKind.SECURE_RANGING in supporters
                    and centre <= self.critical_range_m):
                # The authenticated ranging channel cannot be spoofed:
                # in the critical range its word alone confirms an
                # object even when every other modality was jammed
                # (the [13] obstacle-removal counter).
                ok = True
            if ok:
                confirmed.append(centre)
            else:
                rejected += len(members)

        false_obstacles = sum(
            1 for c in confirmed
            if not any(abs(c - t) <= self.gate_m for t in true_distances_m)
        )
        missed = sum(
            1 for t in true_distances_m
            if t <= min(s.max_range_m for s in self.sensors)
            and not any(abs(c - t) <= self.gate_m for c in confirmed)
        )
        return FusionReport(
            confirmed_objects_m=tuple(sorted(confirmed)),
            rejected_detections=rejected,
            false_obstacles=false_obstacles,
            missed_obstacles=missed,
        )

    def _cluster(self, detections: list[Detection]) -> list[tuple[float, list[Detection]]]:
        """Greedy 1-D clustering by distance with the association gate."""
        ordered = sorted(detections, key=lambda d: d.distance_m)
        clusters: list[tuple[float, list[Detection]]] = []
        for det in ordered:
            if clusters and det.distance_m - clusters[-1][1][-1].distance_m <= self.gate_m:
                members = clusters[-1][1]
                members.append(det)
                centre = float(np.mean([d.distance_m for d in members]))
                clusters[-1] = (centre, members)
            else:
                clusters.append((det.distance_m, [det]))
        return clusters
