"""V-Range-style secure ranging in 5G waveforms (paper §II-B, ref [12]).

Collision avoidance "relies on inputs from ... 5G's Positioning
Reference Signal (PRS)", and [12] (V-Range) shows how to make
OFDM-based ranging resistant to distance manipulation.  The structural
difference from UWB: 5G NR is an **OFDM** system, where each symbol
carries a cyclic prefix (CP).  A standard receiver tolerates any energy
inside the CP window — which is exactly where an attacker can inject an
early copy to shorten the measured distance.  V-Range's core ideas,
modeled here:

* ranging symbols carry a **pseudorandom PRS sequence** (unknown to the
  attacker, AES-CTR derived) so injected energy is sequence-independent;
* the receiver shortens the effective guard tolerance and verifies the
  **cross-correlation integrity** of the claimed first path (normalized
  correlation, as in the UWB HRP defense) plus a **CP-consistency
  check**: the CP must equal the symbol tail it copies — early injected
  energy breaks that equality.

The model works at baseband sample level with QPSK-modulated
subcarriers, an FFT-based OFDM modulator, and a time-domain correlator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rng import numpy_rng
from repro.crypto.modes import ctr_keystream
from repro.phy.pulses import SPEED_OF_LIGHT

__all__ = ["OfdmConfig", "VRangeSession", "VRangeOutcome", "CpInjectionAttack"]


@dataclass(frozen=True)
class OfdmConfig:
    """OFDM numerology for the ranging symbol.

    Defaults approximate a 100 MHz NR carrier (FFT 1024 at 122.88 MS/s):
    one sample ~ 2.44 m of light travel.
    """

    n_subcarriers: int = 1024
    cp_len: int = 72
    sample_rate_hz: float = 122.88e6

    def __post_init__(self) -> None:
        if self.n_subcarriers < 16 or self.cp_len < 1:
            raise ValueError("invalid OFDM geometry")
        if self.cp_len >= self.n_subcarriers:
            raise ValueError("CP must be shorter than the symbol")

    @property
    def metres_per_sample(self) -> float:
        return SPEED_OF_LIGHT / self.sample_rate_hz

    @property
    def symbol_len(self) -> int:
        return self.n_subcarriers + self.cp_len


def _prs_sequence(key: bytes, counter: int, n: int) -> np.ndarray:
    """QPSK PRS: pseudorandom unit-modulus subcarrier values."""
    stream = ctr_keystream(key, counter.to_bytes(16, "big"), (2 * n + 7) // 8)
    bits = np.unpackbits(np.frombuffer(stream, dtype=np.uint8))[: 2 * n]
    symbols = (2.0 * bits[0::2] - 1.0) + 1j * (2.0 * bits[1::2] - 1.0)
    return symbols / np.sqrt(2.0)


@dataclass(frozen=True)
class VRangeOutcome:
    """Result of one 5G ranging measurement."""

    true_distance_m: float
    measured_distance_m: float
    accepted: bool
    normalized_correlation: float
    cp_consistency: float

    @property
    def error_m(self) -> float:
        return self.measured_distance_m - self.true_distance_m

    @property
    def reduced(self) -> bool:
        return self.error_m < -1.5 * 2.44  # more than ~1.5 samples early


@dataclass
class CpInjectionAttack:
    """Inject sequence-independent energy ahead of the legitimate symbol.

    The attacker aims energy ``advance_m`` early; against a tolerant
    receiver (no integrity checks) random correlation peaks inside the
    guard window pull the ToA forward.
    """

    advance_m: float
    #: Amplitude advantage over the legitimate signal. Sequence-
    #: independent energy only couples into the correlator as ~sqrt(N)
    #: of the coherent gain, so a meaningful attack needs a strong
    #: near-far advantage (published attacks assume a close attacker).
    power: float = 15.0
    seed_label: str = "cp-inject"

    def __post_init__(self) -> None:
        if self.advance_m <= 0 or self.power <= 0:
            raise ValueError("advance and power must be positive")
        self._rng = numpy_rng(self.seed_label)

    def waveform(self, delay_samples: int, config: OfdmConfig) -> np.ndarray:
        advance = max(1, round(self.advance_m / config.metres_per_sample))
        start = max(0, delay_samples - advance)
        burst = (self._rng.normal(0, 1, config.symbol_len)
                 + 1j * self._rng.normal(0, 1, config.symbol_len)) / np.sqrt(2)
        out = np.zeros(start + config.symbol_len, dtype=complex)
        out[start:] = self.power * burst
        return out


class VRangeSession:
    """One-way ToA over an OFDM ranging symbol with optional V-Range checks."""

    def __init__(self, key: bytes, *, config: OfdmConfig | None = None,
                 secure: bool = True,
                 min_normalized_corr: float = 0.35,
                 min_cp_consistency: float = 0.5,
                 back_search: int = 48,
                 threshold_ratio: float = 0.35) -> None:
        self.key = key
        self.config = config or OfdmConfig()
        self.secure = secure
        self.min_normalized_corr = min_normalized_corr
        self.min_cp_consistency = min_cp_consistency
        self.back_search = back_search
        self.threshold_ratio = threshold_ratio
        self._counter = 0

    def _tx_symbol(self) -> np.ndarray:
        prs = _prs_sequence(self.key, self._counter, self.config.n_subcarriers)
        self._counter += 1
        time_domain = np.fft.ifft(prs) * np.sqrt(self.config.n_subcarriers)
        return np.concatenate([time_domain[-self.config.cp_len:], time_domain])

    def measure(self, distance_m: float, *, snr_db: float = 15.0,
                attack: CpInjectionAttack | None = None,
                seed_label: str = "vrange") -> VRangeOutcome:
        """Range once over an AWGN channel at ``distance_m``."""
        if distance_m < 0:
            raise ValueError("distance must be non-negative")
        config = self.config
        tx = self._tx_symbol()
        delay = round(distance_m / config.metres_per_sample)
        attacker = attack.waveform(delay, config) if attack is not None else None
        length = delay + tx.size
        if attacker is not None:
            length = max(length, attacker.size)
        rng = numpy_rng(seed_label)
        sigma = 10.0 ** (-snr_db / 20.0) / np.sqrt(2.0)
        rx = (rng.normal(0, sigma, length) + 1j * rng.normal(0, sigma, length))
        rx[delay : delay + tx.size] += tx
        if attacker is not None:
            rx[: attacker.size] += attacker

        # Correlate against the known symbol (without CP, the receiver's
        # matched filter reference).
        reference = tx[config.cp_len :]
        corr = np.abs(np.correlate(rx, reference, mode="valid"))
        peak = int(np.argmax(corr))
        threshold = self.threshold_ratio * corr[peak]
        toa = peak
        for idx in range(max(0, peak - self.back_search), peak):
            if corr[idx] >= threshold:
                toa = idx
                break

        # toa points at the start of the symbol body; the frame started
        # one CP earlier.
        body_start = toa
        window = rx[body_start : body_start + reference.size]
        denom = float(np.linalg.norm(reference) * np.linalg.norm(window))
        rho = float(corr[body_start]) / denom if denom > 0 else 0.0

        # CP consistency at the claimed position: the cp_len samples
        # before the body must replicate the body's tail.
        cp_start = body_start - config.cp_len
        if cp_start >= 0:
            cp = rx[cp_start:body_start]
            tail = window[-config.cp_len:]
            denom_cp = float(np.linalg.norm(cp) * np.linalg.norm(tail))
            cp_rho = float(np.abs(np.vdot(tail, cp))) / denom_cp if denom_cp > 0 else 0.0
        else:
            cp_rho = 0.0

        accepted = True
        if self.secure:
            accepted = (rho >= self.min_normalized_corr
                        and cp_rho >= self.min_cp_consistency)
        # The frame began one CP before the detected symbol body.
        measured = (body_start - config.cp_len) * config.metres_per_sample
        return VRangeOutcome(
            true_distance_m=(delay) * config.metres_per_sample,
            measured_distance_m=measured,
            accepted=accepted,
            normalized_correlation=rho,
            cp_consistency=cp_rho,
        )
