"""Two-way ranging timing algebra (SS-TWR and DS-TWR).

"Two-way Time-of-flight measurement using Ultrawideband signals has
emerged as the secure solution" (paper §II-A).  Two-way ranging removes
the need for synchronized clocks; this module implements the two
standard variants and their sensitivity to clock drift:

* **SS-TWR** (single-sided): one round trip; the responder's reply delay
  is scaled by its (drifting) clock, leaving a bias proportional to the
  drift times the reply time.
* **DS-TWR** (double-sided): two round trips combined so first-order
  drift cancels — the variant 802.15.4z deployments use.

These are exercised by the PKES model and the Fig. 2 bench to show why
DS-TWR is the practical choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layers import Layer
from repro.obs.events import EventKind
from repro.obs.runtime import OBS
from repro.phy.pulses import SPEED_OF_LIGHT

__all__ = ["TwrMeasurement", "TwrBatch", "ss_twr", "ds_twr",
           "ss_twr_batch", "ds_twr_batch"]


@dataclass(frozen=True)
class TwrMeasurement:
    """A two-way ranging result."""

    method: str
    true_distance_m: float
    measured_distance_m: float

    @property
    def error_m(self) -> float:
        return self.measured_distance_m - self.true_distance_m


def _tof_s(distance_m: float) -> float:
    return distance_m / SPEED_OF_LIGHT


def ss_twr(distance_m: float, *, reply_time_s: float = 300e-6,
           responder_drift_ppm: float = 0.0,
           extra_path_m: float = 0.0) -> TwrMeasurement:
    """Single-sided TWR.

    ``extra_path_m`` models a relay/replay that lengthens the radio path
    (attacks can only add path, never remove it).  ``responder_drift_ppm``
    is the responder clock offset; SS-TWR error ≈ drift x reply_time / 2.
    """
    if distance_m < 0 or extra_path_m < 0:
        raise ValueError("distances must be non-negative")
    tof = _tof_s(distance_m + extra_path_m)
    drift = 1.0 + responder_drift_ppm * 1e-6
    # Initiator measures t_round on its own (reference) clock; the
    # responder reports its reply time measured on a drifting clock.
    t_round = 2.0 * tof + reply_time_s
    t_reply_reported = reply_time_s / drift
    tof_est = (t_round - t_reply_reported) / 2.0
    measurement = TwrMeasurement("SS-TWR", distance_m, tof_est * SPEED_OF_LIGHT)
    if OBS.enabled:
        _record_twr(measurement, extra_path_m)
    return measurement


def ds_twr(distance_m: float, *, reply_time_a_s: float = 300e-6,
           reply_time_b_s: float = 280e-6,
           responder_drift_ppm: float = 0.0,
           extra_path_m: float = 0.0) -> TwrMeasurement:
    """Double-sided TWR (asymmetric formula of 802.15.4z):

    ``tof = (Ra*Rb - Da*Db) / (Ra + Rb + Da + Db)`` where R are round
    times and D are reply delays. First-order clock drift cancels.
    """
    if distance_m < 0 or extra_path_m < 0:
        raise ValueError("distances must be non-negative")
    tof = _tof_s(distance_m + extra_path_m)
    drift = 1.0 + responder_drift_ppm * 1e-6
    # Times measured by A (reference clock) and B (drifting clock).
    ra = 2.0 * tof + reply_time_b_s            # A: poll -> response
    db = reply_time_b_s / drift                 # B reports its delay
    rb = (2.0 * tof + reply_time_a_s) / drift   # B: response -> final
    da = reply_time_a_s                         # A's reply delay
    tof_est = (ra * rb - da * db) / (ra + rb + da + db)
    measurement = TwrMeasurement("DS-TWR", distance_m, tof_est * SPEED_OF_LIGHT)
    if OBS.enabled:
        _record_twr(measurement, extra_path_m)
    return measurement


@dataclass(frozen=True)
class TwrBatch:
    """Vectorized two-way ranging results (one array slot per exchange).

    Element ``i`` is bit-identical to the scalar :func:`ss_twr` /
    :func:`ds_twr` result for the same inputs: the batch entry points
    evaluate the same IEEE-754 expression tree elementwise, so
    ``batch.measured_distance_m[i] == scalar(d[i]).measured_distance_m``
    exactly — the equivalence the kernel tests pin.
    """

    method: str
    true_distance_m: np.ndarray
    measured_distance_m: np.ndarray

    @property
    def error_m(self) -> np.ndarray:
        return self.measured_distance_m - self.true_distance_m

    def __len__(self) -> int:
        return int(self.true_distance_m.size)

    def __getitem__(self, index: int) -> TwrMeasurement:
        return TwrMeasurement(self.method,
                              float(self.true_distance_m[index]),
                              float(self.measured_distance_m[index]))


def _batch_inputs(distances_m, extra_path_m) -> tuple[np.ndarray, np.ndarray]:
    distances = np.asarray(distances_m, dtype=float)
    extra = np.broadcast_to(np.asarray(extra_path_m, dtype=float),
                            distances.shape)
    if np.any(distances < 0) or np.any(extra < 0):
        raise ValueError("distances must be non-negative")
    return distances, extra


def ss_twr_batch(distances_m, *, reply_time_s: float = 300e-6,
                 responder_drift_ppm: float = 0.0,
                 extra_path_m=0.0) -> TwrBatch:
    """Vectorized :func:`ss_twr` over an array of true distances.

    ``extra_path_m`` may be a scalar or an array broadcast against
    ``distances_m`` (per-exchange relay lengths).
    """
    distances, extra = _batch_inputs(distances_m, extra_path_m)
    tof = (distances + extra) / SPEED_OF_LIGHT
    drift = 1.0 + responder_drift_ppm * 1e-6
    t_round = 2.0 * tof + reply_time_s
    t_reply_reported = reply_time_s / drift
    tof_est = (t_round - t_reply_reported) / 2.0
    batch = TwrBatch("SS-TWR", distances, tof_est * SPEED_OF_LIGHT)
    if OBS.enabled:
        _record_twr_batch(batch)
    return batch


def ds_twr_batch(distances_m, *, reply_time_a_s: float = 300e-6,
                 reply_time_b_s: float = 280e-6,
                 responder_drift_ppm: float = 0.0,
                 extra_path_m=0.0) -> TwrBatch:
    """Vectorized :func:`ds_twr` over an array of true distances."""
    distances, extra = _batch_inputs(distances_m, extra_path_m)
    tof = (distances + extra) / SPEED_OF_LIGHT
    drift = 1.0 + responder_drift_ppm * 1e-6
    ra = 2.0 * tof + reply_time_b_s
    db = reply_time_b_s / drift
    rb = (2.0 * tof + reply_time_a_s) / drift
    da = reply_time_a_s
    tof_est = (ra * rb - da * db) / (ra + rb + da + db)
    batch = TwrBatch("DS-TWR", distances, tof_est * SPEED_OF_LIGHT)
    if OBS.enabled:
        _record_twr_batch(batch)
    return batch


def _record_twr_batch(batch: TwrBatch) -> None:
    """Aggregate obs reporting for a batched exchange (exact counters,
    one summary event instead of per-exchange emission)."""
    OBS.count("phy.ranging.measurements", len(batch))
    if not OBS.sample("phy.ranging.twr"):
        return
    errors = batch.error_m
    if len(batch):
        OBS.observe("phy.ranging.error_m", float(errors.mean()))
    OBS.emit(EventKind.RANGING, Layer.PHYSICAL, batch.method.lower(),
             f"batched {len(batch)} exchanges "
             f"(mean |error| {float(np.abs(errors).mean()) if len(batch) else 0.0:.3f} m)",
             batch_size=len(batch))


def _record_twr(measurement: TwrMeasurement, extra_path_m: float) -> None:
    """Report one TWR exchange to the observability layer."""
    OBS.count("phy.ranging.measurements")
    if not OBS.sample("phy.ranging.twr"):
        return
    OBS.observe("phy.ranging.error_m", measurement.error_m)
    OBS.emit(EventKind.RANGING, Layer.PHYSICAL, measurement.method.lower(),
             f"measured {measurement.measured_distance_m:.2f} m "
             f"(true {measurement.true_distance_m:.2f} m)",
             true_m=measurement.true_distance_m,
             measured_m=measurement.measured_distance_m,
             extra_path_m=extra_path_m)
