"""UWB pulse shaping and baseband signal construction.

IEEE 802.15.4z defines two UWB PHYs (paper Fig. 2): the **High Rate
Pulse** (HRP) mode with short (~2 ns) pulses at a high repetition rate,
and the **Low Rate Pulse** (LRP) mode with longer, higher-energy pulses
at a low repetition rate.  Both are modeled here at baseband as sampled
waveforms: a pulse template (Gaussian second derivative, the standard
UWB monocycle approximation) placed at pulse-repetition-interval
positions with BPSK polarities.

Geometry convention used across :mod:`repro.phy`: the default sample
rate is ~2 GS/s (0.4997 ns/sample), so one sample of time-of-arrival
error corresponds to ~15 cm of ranging error.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["PhyConfig", "HRP_CONFIG", "LRP_CONFIG", "pulse_template",
           "template_length", "build_pulse_train", "SPEED_OF_LIGHT"]

SPEED_OF_LIGHT = 299_792_458.0  # m/s


@dataclass(frozen=True)
class PhyConfig:
    """Sampled-waveform parameters for one UWB mode.

    Attributes:
        name: mode label ("HRP" or "LRP").
        sample_rate_hz: simulation sample rate.
        pulse_width_s: nominal monocycle width (controls bandwidth).
        pulse_repetition_interval_s: spacing between pulse positions.
        pulse_amplitude: per-pulse amplitude. LRP uses fewer, stronger
            pulses (its link budget concentrates energy per pulse, which
            is what enables per-pulse decisions for distance bounding).
    """

    name: str
    sample_rate_hz: float
    pulse_width_s: float
    pulse_repetition_interval_s: float
    pulse_amplitude: float

    @property
    def samples_per_pri(self) -> int:
        return max(1, round(self.pulse_repetition_interval_s * self.sample_rate_hz))

    @property
    def metres_per_sample(self) -> float:
        return SPEED_OF_LIGHT / self.sample_rate_hz


HRP_CONFIG = PhyConfig(
    name="HRP",
    sample_rate_hz=1.9968e9,          # ~2 GS/s, matches 499.2 MHz chip clock x4
    pulse_width_s=2.0e-9,             # ~500 MHz bandwidth pulse
    pulse_repetition_interval_s=8.0e-9,
    pulse_amplitude=1.0,
)

LRP_CONFIG = PhyConfig(
    name="LRP",
    sample_rate_hz=1.9968e9,
    pulse_width_s=2.0e-9,
    pulse_repetition_interval_s=512.0e-9,  # Fig. 2: LRP pulse slot is 512 ns
    pulse_amplitude=8.0,                   # high energy per pulse
)


def template_length(config: PhyConfig) -> int:
    """Exact sample count of the pulse template: round(2·width·rate).

    Derived as an integer up front (not as a float-stepped ``np.arange``
    endpoint, whose length is rounding-sensitive) so the template length
    — and therefore every waveform and correlation built on it — is
    platform-stable, which the determinism invariant requires.
    """
    return max(1, int(round(2.0 * config.pulse_width_s * config.sample_rate_hz)))


@lru_cache(maxsize=None)
def _pulse_template_cached(config: PhyConfig) -> np.ndarray:
    sigma = config.pulse_width_s / 4.0
    half = config.pulse_width_s
    step = 1.0 / config.sample_rate_hz
    # Integer index grid: t[k] = -half + k·step, identical values to the
    # old float-stepped arange but with an exact, pre-derived length.
    t = -half + np.arange(template_length(config)) * step
    x = (t / sigma) ** 2
    wave = (1.0 - x) * np.exp(-x / 2.0)
    peak = np.max(np.abs(wave))
    if peak > 0:
        wave = wave / peak
    wave = wave * config.pulse_amplitude
    wave.setflags(write=False)
    return wave


def pulse_template(config: PhyConfig) -> np.ndarray:
    """Gaussian second-derivative monocycle sampled at the config rate.

    Normalized to unit peak before scaling by ``pulse_amplitude``.
    Cached per :class:`PhyConfig` (the configs are frozen, the returned
    array is read-only) — waveform construction re-reads the same
    template millions of times on the ranging hot path.
    """
    return _pulse_template_cached(config)


def build_pulse_train(symbols: np.ndarray, config: PhyConfig,
                      positions: np.ndarray | None = None,
                      tail_samples: int = 0) -> np.ndarray:
    """Place BPSK ``symbols`` (±1) on a pulse grid and return the waveform.

    Args:
        symbols: array of +1/-1 polarities, one per pulse.
        config: PHY parameters.
        positions: optional per-pulse sample offsets (used by the pulse
            reordering defense in LRP mode). Defaults to the regular grid
            ``i * samples_per_pri``.
        tail_samples: extra zero samples appended (room for channel delay).
    """
    symbols = np.asarray(symbols, dtype=float)
    if symbols.ndim != 1 or symbols.size == 0:
        raise ValueError("symbols must be a non-empty 1-D array")
    if not np.all(np.isin(symbols, (-1.0, 1.0))):
        raise ValueError("symbols must be +1/-1")
    template = pulse_template(config)
    spp = config.samples_per_pri
    if positions is None:
        positions = np.arange(symbols.size) * spp
    else:
        positions = np.asarray(positions, dtype=int)
        if positions.shape != symbols.shape:
            raise ValueError("positions must match symbols shape")
        if np.any(positions < 0):
            raise ValueError("positions must be non-negative")
    length = int(positions.max()) + template.size + tail_samples
    signal = np.zeros(length)
    # Vectorized scatter-add.  np.add.at accumulates unbuffered in
    # row-major index order — for overlapping pulses the per-sample
    # addition order matches the old sequential placement loop, so the
    # result is bit-identical to it.
    offsets = np.arange(template.size)
    np.add.at(signal, positions[:, None] + offsets[None, :],
              symbols[:, None] * template[None, :])
    return signal
