"""Wireless channel model: propagation delay, multipath, and AWGN.

Distance manipulation at the physical layer is fundamentally a game
played against the *earliest arriving path* (paper Fig. 2 marks the
"early path" explicitly).  The channel model therefore keeps the
line-of-sight delay exact at sample resolution and adds optional later
multipath echoes plus white noise, which is all the structure the
attacks and defenses in this package interact with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rng import numpy_rng
from repro.phy.pulses import SPEED_OF_LIGHT, PhyConfig

__all__ = ["Multipath", "Channel"]


@dataclass(frozen=True)
class Multipath:
    """One non-line-of-sight echo: extra delay (must be positive) and gain."""

    extra_delay_s: float
    gain: float

    def __post_init__(self) -> None:
        if self.extra_delay_s <= 0:
            raise ValueError("multipath echoes arrive after the direct path")


@dataclass
class Channel:
    """A point-to-point UWB channel.

    Attributes:
        distance_m: true line-of-sight distance.
        snr_db: signal-to-noise ratio (relative to unit-amplitude pulses).
        path_gain: amplitude gain of the direct path (models attenuation;
            the enlargement attack drives this toward 0 by annihilation).
        multipath: later echoes.
        seed_label: label for deterministic noise generation.
    """

    distance_m: float
    snr_db: float = 20.0
    path_gain: float = 1.0
    multipath: tuple[Multipath, ...] = ()
    seed_label: str = "channel"
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.distance_m < 0:
            raise ValueError("distance must be non-negative")
        self._rng = numpy_rng(self.seed_label)

    def delay_samples(self, config: PhyConfig) -> int:
        """One-way propagation delay in whole samples."""
        return round(self.distance_m / SPEED_OF_LIGHT * config.sample_rate_hz)

    def noise_sigma(self) -> float:
        """Noise standard deviation for the configured SNR (unit signal)."""
        return 10.0 ** (-self.snr_db / 20.0)

    def propagate(self, signal: np.ndarray, config: PhyConfig,
                  extra_signal: np.ndarray | None = None) -> np.ndarray:
        """Propagate ``signal`` through the channel.

        Returns the received waveform: direct path (delayed, scaled) +
        multipath echoes + AWGN.  ``extra_signal`` is an attacker
        waveform already expressed in receiver time (no channel delay is
        applied to it — attackers position their energy deliberately).
        """
        delay = self.delay_samples(config)
        echo_delays = [
            delay + round(echo.extra_delay_s * config.sample_rate_hz)
            for echo in self.multipath
        ]
        out_len = max([delay] + echo_delays) + signal.size
        if extra_signal is not None:
            out_len = max(out_len, extra_signal.size)
        received = np.zeros(out_len)
        received[delay : delay + signal.size] += self.path_gain * signal
        for echo, echo_delay in zip(self.multipath, echo_delays):
            received[echo_delay : echo_delay + signal.size] += echo.gain * signal
        if extra_signal is not None:
            received[: extra_signal.size] += extra_signal
        received += self._rng.normal(0.0, self.noise_sigma(), size=out_len)
        return received
