"""Camera image-pipeline security (paper §VIII, ref [49]).

"At the physical and sensor layer, specialized solutions are needed to
address the unique characteristics of various smart sensors, such as
cameras [49]."  Kühr et al. [49] systematize the security of the image
processing pipeline in autonomous vehicles: every stage from optics to
perception has its own attack classes and defenses.

This module encodes that systematization as an analyzable model:

* :data:`PIPELINE_STAGES` — the ordered stages (optics → image sensor →
  ISP → serialization/transport → perception);
* an attack catalog per stage (laser blinding, rolling-shutter flicker,
  electromagnetic interference, adversarial patches, frame injection on
  the serializer link, model evasion);
* a defense catalog per stage, each naming the attacks it mitigates;
* :class:`ImagePipeline` — select deployed defenses and compute residual
  attacks per stage, end-to-end coverage, and the cheapest defense set
  achieving full coverage — the same analysis style as the core layer
  framework, specialized to one sensor.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

__all__ = ["PIPELINE_STAGES", "PipelineAttack", "PipelineDefense",
           "IMAGE_ATTACKS", "IMAGE_DEFENSES", "ImagePipeline"]

PIPELINE_STAGES: tuple[str, ...] = (
    "optics", "image-sensor", "isp", "transport", "perception",
)


@dataclass(frozen=True)
class PipelineAttack:
    """An attack against one pipeline stage."""

    name: str
    stage: str
    description: str

    def __post_init__(self) -> None:
        if self.stage not in PIPELINE_STAGES:
            raise ValueError(f"unknown stage {self.stage!r}")


@dataclass(frozen=True)
class PipelineDefense:
    """A defense deployed at one stage, mitigating named attacks."""

    name: str
    stage: str
    mitigates: frozenset[str]
    cost: int = 1  # relative deployment cost

    def __post_init__(self) -> None:
        if self.stage not in PIPELINE_STAGES:
            raise ValueError(f"unknown stage {self.stage!r}")


IMAGE_ATTACKS: tuple[PipelineAttack, ...] = (
    PipelineAttack("laser-blinding", "optics",
                   "saturating the optics with a laser to hide objects"),
    PipelineAttack("projection-spoofing", "optics",
                   "projecting phantom objects onto surfaces"),
    PipelineAttack("rolling-shutter-flicker", "image-sensor",
                   "modulated light exploiting line-sequential exposure"),
    PipelineAttack("em-interference", "image-sensor",
                   "EMI injecting noise/stripes into the readout"),
    PipelineAttack("isp-parameter-tampering", "isp",
                   "compromised tuning (exposure/gain) degrading detection"),
    PipelineAttack("frame-injection", "transport",
                   "injecting or replacing frames on the serializer link"),
    PipelineAttack("frame-replay", "transport",
                   "replaying stale frames to freeze the scene"),
    PipelineAttack("adversarial-patch", "perception",
                   "physical patch causing misclassification"),
    PipelineAttack("model-evasion", "perception",
                   "digital-domain perturbation evading the detector"),
)

IMAGE_DEFENSES: tuple[PipelineDefense, ...] = (
    PipelineDefense("optical-filtering", "optics",
                    frozenset({"laser-blinding"}), cost=1),
    PipelineDefense("multi-camera-parallax", "optics",
                    frozenset({"projection-spoofing"}), cost=2),
    PipelineDefense("global-shutter-or-randomized-exposure", "image-sensor",
                    frozenset({"rolling-shutter-flicker"}), cost=2),
    PipelineDefense("shielding-and-plausibility", "image-sensor",
                    frozenset({"em-interference"}), cost=1),
    PipelineDefense("attested-isp-configuration", "isp",
                    frozenset({"isp-parameter-tampering"}), cost=1),
    PipelineDefense("authenticated-frame-transport", "transport",
                    frozenset({"frame-injection", "frame-replay"}), cost=2),
    PipelineDefense("temporal-consistency-check", "transport",
                    frozenset({"frame-replay"}), cost=1),
    PipelineDefense("adversarial-training", "perception",
                    frozenset({"adversarial-patch", "model-evasion"}), cost=3),
    PipelineDefense("sensor-fusion-cross-check", "perception",
                    frozenset({"adversarial-patch", "projection-spoofing"}), cost=2),
)


class ImagePipeline:
    """Coverage analysis over the [49] pipeline model."""

    def __init__(self,
                 attacks: tuple[PipelineAttack, ...] = IMAGE_ATTACKS,
                 defenses: tuple[PipelineDefense, ...] = IMAGE_DEFENSES) -> None:
        self.attacks = {a.name: a for a in attacks}
        self.defenses = {d.name: d for d in defenses}
        for defense in defenses:
            unknown = defense.mitigates - self.attacks.keys()
            if unknown:
                raise ValueError(f"{defense.name} mitigates unknown {sorted(unknown)}")

    def residual_attacks(self, deployed: set[str]) -> list[PipelineAttack]:
        """Attacks not mitigated by any deployed defense."""
        unknown = deployed - self.defenses.keys()
        if unknown:
            raise ValueError(f"unknown defenses {sorted(unknown)}")
        mitigated: set[str] = set()
        for name in deployed:
            mitigated |= self.defenses[name].mitigates
        return [a for a in self.attacks.values() if a.name not in mitigated]

    def coverage(self, deployed: set[str]) -> float:
        return 1.0 - len(self.residual_attacks(deployed)) / len(self.attacks)

    def residual_by_stage(self, deployed: set[str]) -> dict[str, int]:
        counts = {stage: 0 for stage in PIPELINE_STAGES}
        for attack in self.residual_attacks(deployed):
            counts[attack.stage] += 1
        return counts

    def cheapest_full_coverage(self) -> set[str] | None:
        """Minimum-cost defense set with zero residual attacks.

        Exhaustive over defense subsets (the catalog is small by
        design); ties break toward fewer defenses.
        """
        names = sorted(self.defenses)
        best: tuple[int, int, set[str]] | None = None
        for size in range(1, len(names) + 1):
            for subset in combinations(names, size):
                chosen = set(subset)
                if self.residual_attacks(chosen):
                    continue
                cost = sum(self.defenses[n].cost for n in chosen)
                if best is None or (cost, len(chosen)) < best[:2]:
                    best = (cost, len(chosen), chosen)
        return best[2] if best else None
