"""Message Time-of-Arrival Codes (paper §II ref [7]).

Leu et al. [7] introduce MTACs as "a fundamental primitive for secure
distance measurement": a message is encoded so that the receiver can
verify both its content **and** that its time of arrival was not
manipulated, even by an attacker with full knowledge of the modulation.

This model captures the primitive's security mechanics at the
pulse-position level:

* the sender derives, from a shared key and message index, a secret
  assignment of each pulse to one of ``slots_per_symbol`` fine time
  slots within its symbol (pulse-position randomization);
* the receiver checks (a) that pulse energy appears in exactly the
  expected slots and (b) that the fraction of matching slots exceeds a
  threshold;
* an **ED/LC advance attacker** must transmit each pulse *before*
  detecting it, i.e. guess the secret slot: each guessed pulse lands in
  the right slot with probability ``1/slots_per_symbol``, so the
  verification statistic collapses — the detection-probability formula
  and the Monte-Carlo simulation below agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from repro.core.rng import numpy_rng
from repro.crypto.modes import ctr_keystream

__all__ = ["MtacCode", "MtacVerdict", "attack_acceptance_probability"]


@dataclass(frozen=True)
class MtacVerdict:
    """Receiver decision for one MTAC-protected message."""

    accepted: bool
    matching_fraction: float
    threshold: float


class MtacCode:
    """A keyed pulse-position code over ``n_pulses`` pulses.

    Args:
        key: shared secret.
        n_pulses: code length (one pulse per symbol).
        slots_per_symbol: fine slots a pulse can occupy (power of the
            position randomization).
        accept_fraction: minimum fraction of correctly-placed pulses the
            verifier requires. Honest links lose a few pulses to noise
            (``pulse_loss_prob`` at verify time), so this is < 1.
    """

    def __init__(self, key: bytes, *, n_pulses: int = 64,
                 slots_per_symbol: int = 8,
                 accept_fraction: float = 0.75) -> None:
        if n_pulses < 8:
            raise ValueError("MTAC needs at least 8 pulses")
        if slots_per_symbol < 2:
            raise ValueError("need at least 2 slots per symbol")
        if not 0.0 < accept_fraction <= 1.0:
            raise ValueError("accept_fraction must be in (0, 1]")
        self.key = key
        self.n_pulses = n_pulses
        self.slots_per_symbol = slots_per_symbol
        self.accept_fraction = accept_fraction

    def slot_assignment(self, message_index: int) -> np.ndarray:
        """The secret slot per pulse for one message (AES-CTR derived)."""
        stream = ctr_keystream(self.key, message_index.to_bytes(16, "big"),
                               self.n_pulses)
        return np.frombuffer(stream, dtype=np.uint8) % self.slots_per_symbol

    def transmit(self, message_index: int) -> np.ndarray:
        """The honest sender's observed slots (exact placement)."""
        return self.slot_assignment(message_index).copy()

    def verify(self, message_index: int, observed_slots: np.ndarray, *,
               pulse_loss_prob: float = 0.05,
               seed_label: str = "mtac-rx") -> MtacVerdict:
        """Check observed pulse positions against the secret assignment.

        ``pulse_loss_prob`` models per-pulse channel erasures on honest
        receptions (a lost pulse counts as a mismatch).
        """
        expected = self.slot_assignment(message_index)
        observed = np.asarray(observed_slots)
        if observed.shape != expected.shape:
            raise ValueError("observed slots must match code length")
        rng = numpy_rng(f"{seed_label}:{message_index}")
        lost = rng.random(self.n_pulses) < pulse_loss_prob
        matches = (observed == expected) & ~lost
        fraction = float(np.mean(matches))
        return MtacVerdict(
            accepted=fraction >= self.accept_fraction,
            matching_fraction=fraction,
            threshold=self.accept_fraction,
        )

    def advance_attack_slots(self, message_index: int, *,
                             known_fraction: float = 0.0,
                             seed_label: str = "mtac-attacker") -> np.ndarray:
        """An ED/LC attacker's transmitted slots.

        To advance the message in time the attacker must commit each
        pulse before observing it; it knows a ``known_fraction`` of slot
        assignments (0 for a pure guesser; >0 models partial leakage)
        and guesses the rest uniformly.
        """
        if not 0.0 <= known_fraction <= 1.0:
            raise ValueError("known_fraction must be in [0, 1]")
        expected = self.slot_assignment(message_index)
        rng = numpy_rng(f"{seed_label}:{message_index}")
        guesses = rng.integers(0, self.slots_per_symbol, size=self.n_pulses)
        known = rng.random(self.n_pulses) < known_fraction
        return np.where(known, expected, guesses)


def attack_acceptance_probability(n_pulses: int, slots_per_symbol: int,
                                  accept_fraction: float) -> float:
    """Analytic acceptance probability of the pure-guessing attacker.

    Each guessed pulse matches with p = 1/slots; acceptance needs
    ``>= ceil(accept_fraction * n)`` matches:
    ``P = sum_{k>=k0} C(n,k) p^k (1-p)^(n-k)``.
    """
    p = 1.0 / slots_per_symbol
    k0 = int(np.ceil(accept_fraction * n_pulses))
    return float(sum(
        comb(n_pulses, k) * (p ** k) * ((1 - p) ** (n_pulses - k))
        for k in range(k0, n_pulses + 1)
    ))
