"""Physical layer (paper §II): UWB secure ranging, PKES, sensor security.

Implements the Fig. 2 content as a sampled-waveform simulator:

* :mod:`repro.phy.pulses`, :mod:`repro.phy.channel` — UWB signal substrate.
* :mod:`repro.phy.hrp` — HRP mode with STS correlation and receiver
  integrity checks ([4], [8]).
* :mod:`repro.phy.lrp` — LRP mode distance bounding + distance
  commitment + pulse randomization ([5], [6]).
* :mod:`repro.phy.ranging` — SS-TWR / DS-TWR timing algebra.
* :mod:`repro.phy.attacks` / :mod:`repro.phy.defenses` — ghost-peak,
  enlargement, relay attacks and the UWB-ED detector ([13]).
* :mod:`repro.phy.pkes` — keyless entry under three proximity policies.
* :mod:`repro.phy.collision` — collision-avoidance sensor fusion under
  spoofing ([9]-[12]).
"""

from repro.phy.attacks import EnlargementAttack, GhostPeakAttack, RelayAttack
from repro.phy.channel import Channel, Multipath
from repro.phy.collision import (
    Detection,
    FusionPipeline,
    FusionReport,
    GhostObjectAttack,
    ObjectRemovalAttack,
    Sensor,
    SensorKind,
)
from repro.phy.defenses import EnlargementVerdict, UwbEdDetector
from repro.phy.hrp import HrpRangingSession, HrpReceiver, RangingOutcome, generate_sts
from repro.phy.imaging import (
    IMAGE_ATTACKS,
    IMAGE_DEFENSES,
    PIPELINE_STAGES,
    ImagePipeline,
    PipelineAttack,
    PipelineDefense,
)
from repro.phy.lrp import (
    DistanceBoundingResult,
    DistanceBoundingSession,
    attack_success_probability,
)
from repro.phy.mtac import MtacCode, MtacVerdict, attack_acceptance_probability
from repro.phy.pkes import PkesSystem, UnlockAttempt
from repro.phy.pulses import HRP_CONFIG, LRP_CONFIG, SPEED_OF_LIGHT, PhyConfig
from repro.phy.ranging import (
    TwrBatch,
    TwrMeasurement,
    ds_twr,
    ds_twr_batch,
    ss_twr,
    ss_twr_batch,
)
from repro.phy.toa import ToaEstimate, cross_correlation, first_path_toa
from repro.phy.vrange import CpInjectionAttack, OfdmConfig, VRangeOutcome, VRangeSession

__all__ = [
    "PhyConfig",
    "HRP_CONFIG",
    "LRP_CONFIG",
    "SPEED_OF_LIGHT",
    "Channel",
    "Multipath",
    "generate_sts",
    "HrpRangingSession",
    "HrpReceiver",
    "RangingOutcome",
    "DistanceBoundingSession",
    "DistanceBoundingResult",
    "attack_success_probability",
    "TwrMeasurement",
    "TwrBatch",
    "ss_twr",
    "ds_twr",
    "ss_twr_batch",
    "ds_twr_batch",
    "VRangeSession",
    "VRangeOutcome",
    "OfdmConfig",
    "CpInjectionAttack",
    "ToaEstimate",
    "cross_correlation",
    "first_path_toa",
    "GhostPeakAttack",
    "EnlargementAttack",
    "RelayAttack",
    "UwbEdDetector",
    "EnlargementVerdict",
    "ImagePipeline",
    "PipelineAttack",
    "PipelineDefense",
    "IMAGE_ATTACKS",
    "IMAGE_DEFENSES",
    "PIPELINE_STAGES",
    "MtacCode",
    "MtacVerdict",
    "attack_acceptance_probability",
    "PkesSystem",
    "UnlockAttempt",
    "SensorKind",
    "Sensor",
    "Detection",
    "GhostObjectAttack",
    "ObjectRemovalAttack",
    "FusionPipeline",
    "FusionReport",
]
