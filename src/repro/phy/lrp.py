"""LRP-UWB: distance bounding + distance commitment (paper Fig. 2, §II-A).

The Low Rate Pulse mode secures ranging differently from HRP: it
combines **distance bounding at the logical layer** (a rapid bit
exchange whose per-bit round-trip time upper-bounds the distance, [5])
with **distance commitment at the physical layer** (the pulse position
commits to the bit value before the attacker can know it).  Pulse
randomization ([6]) additionally hides *where* in the 512 ns slot each
pulse sits, defeating early-detect/late-commit tricks.

The model here is at the bit/timing level rather than the waveform
level: what matters for security is the probability an attacker can
answer a challenge *earlier* than the prover — which requires guessing
bits (2^-n for n rounds) and, with pulse randomization, also guessing
pulse positions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import python_rng
from repro.crypto.modes import cmac
from repro.phy.pulses import SPEED_OF_LIGHT

__all__ = ["DistanceBoundingResult", "DistanceBoundingSession", "attack_success_probability"]


@dataclass(frozen=True)
class DistanceBoundingResult:
    """Outcome of a full rapid-bit-exchange run."""

    true_distance_m: float
    measured_distance_m: float
    rounds: int
    response_errors: int
    accepted: bool

    @property
    def error_m(self) -> float:
        return self.measured_distance_m - self.true_distance_m


def _response_bit(key: bytes, nonce: bytes, round_index: int, challenge_bit: int) -> int:
    """The prover's registered response function f(key, round, challenge).

    Implemented as one bit of a CMAC so both registers (challenge=0 /
    challenge=1) are precomputable before the timed phase, as real
    distance-bounding protocols require.
    """
    tag = cmac(key, nonce + bytes([round_index & 0xFF, challenge_bit]))
    return tag[0] & 1


class DistanceBoundingSession:
    """Verifier-side distance bounding over a modeled timing channel.

    Args:
        key: shared secret between verifier (vehicle) and prover (fob).
        rounds: number of rapid bit-exchange rounds.
        max_errors: accepted response-bit errors (noise tolerance).
        prover_turnaround_ns: the prover's fixed processing delay; it is
            subtracted by the verifier, so only *variations* matter.
        pulse_randomization: model [6]'s defense — attacker attempts to
            advance pulses must also guess a hidden pulse position out of
            ``position_space`` slots.
        position_space: number of possible pulse positions per 512 ns slot.
    """

    def __init__(self, key: bytes, *, rounds: int = 32, max_errors: int = 0,
                 prover_turnaround_ns: float = 100.0,
                 pulse_randomization: bool = False,
                 position_space: int = 8,
                 seed_label: str = "lrp-db") -> None:
        if rounds < 1:
            raise ValueError("need at least one round")
        if position_space < 1:
            raise ValueError("position_space must be >= 1")
        self.key = key
        self.rounds = rounds
        self.max_errors = max_errors
        self.prover_turnaround_ns = prover_turnaround_ns
        self.pulse_randomization = pulse_randomization
        self.position_space = position_space
        self._rng = python_rng(seed_label)

    def run_honest(self, distance_m: float, *,
                   distance_bound_m: float = 5.0) -> DistanceBoundingResult:
        """An honest prover at ``distance_m``; verifier accepts iff the
        measured bound is within ``distance_bound_m`` and responses check."""
        nonce = self._rng.randbytes(8)
        rtt_ns = 2.0 * distance_m / SPEED_OF_LIGHT * 1e9 + self.prover_turnaround_ns
        measured = (rtt_ns - self.prover_turnaround_ns) * 1e-9 * SPEED_OF_LIGHT / 2.0
        errors = 0
        for i in range(self.rounds):
            challenge = self._rng.getrandbits(1)
            expected = _response_bit(self.key, nonce, i, challenge)
            actual = _response_bit(self.key, nonce, i, challenge)
            if actual != expected:
                errors += 1
        accepted = errors <= self.max_errors and measured <= distance_bound_m
        return DistanceBoundingResult(distance_m, measured, self.rounds, errors, accepted)

    def run_early_reply_attack(self, true_distance_m: float, *,
                               claimed_distance_m: float,
                               distance_bound_m: float = 5.0) -> DistanceBoundingResult:
        """A distance-fraud attacker pretending to be at ``claimed_distance_m``.

        To answer early enough to claim a shorter distance, the attacker
        must transmit each response *before* the challenge arrives, i.e.
        guess the response bit (probability 1/2 per round).  With pulse
        randomization it must additionally hit the hidden pulse position
        (probability ``1/position_space``). Wrong guesses show up as
        response errors; acceptance requires ``errors <= max_errors``.
        """
        if claimed_distance_m >= true_distance_m:
            raise ValueError("early-reply attack targets a shorter claimed distance")
        nonce = self._rng.randbytes(8)
        errors = 0
        for i in range(self.rounds):
            challenge = self._rng.getrandbits(1)
            guessed_challenge = self._rng.getrandbits(1)
            guess = _response_bit(self.key, nonce, i, guessed_challenge)
            truth = _response_bit(self.key, nonce, i, challenge)
            bit_ok = guess == truth
            if bit_ok and self.pulse_randomization:
                bit_ok = self._rng.randrange(self.position_space) == 0
            if not bit_ok:
                errors += 1
        accepted = errors <= self.max_errors and claimed_distance_m <= distance_bound_m
        measured = claimed_distance_m if accepted else true_distance_m
        return DistanceBoundingResult(true_distance_m, measured, self.rounds, errors, accepted)


def attack_success_probability(rounds: int, max_errors: int = 0, *,
                               pulse_randomization: bool = False,
                               position_space: int = 8) -> float:
    """Analytic acceptance probability of the early-reply attacker.

    Per round the attacker survives with probability ``p = 1/2`` (bit
    guess — guessing the challenge and holding both registers collapses
    to the response-bit guess), times ``1/position_space`` under pulse
    randomization. Acceptance allows up to ``max_errors`` failures:
    ``P = sum_{k<=max_errors} C(n,k) (1-p)^k p^(n-k)``.
    """
    from math import comb

    p = 0.5 * (1.0 / position_space if pulse_randomization else 1.0)
    total = 0.0
    for k in range(max_errors + 1):
        total += comb(rounds, k) * ((1.0 - p) ** k) * (p ** (rounds - k))
    return total
