"""Passive Keyless Entry and Start system model (paper §II-A).

The paper uses PKES as the canonical example of why physical-layer
security matters: "the vulnerabilities in the PKES were revealed ...
more than a decade ago [1]", data-layer crypto does not help against
relay, and secure UWB two-way ToF ranging is the fix.

:class:`PkesSystem` models the unlock decision of a vehicle under three
proximity-verification policies:

* ``"lf-rssi"`` — the legacy low-frequency field check; a relay makes a
  distant fob look adjacent → **relay succeeds**.
* ``"uwb-hrp"`` — HRP secure ranging (DS-TWR timing, ToF path length
  through the relay) → relay adds path → **relay fails**.
* ``"uwb-lrp"`` — LRP distance bounding → same ToF argument, plus the
  rapid-bit-exchange guarantee → **relay fails**.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.attacks import RelayAttack
from repro.phy.lrp import DistanceBoundingSession
from repro.phy.ranging import ds_twr, ds_twr_batch

__all__ = ["UnlockAttempt", "PkesSystem"]

_POLICIES = ("lf-rssi", "uwb-hrp", "uwb-lrp")


@dataclass(frozen=True)
class UnlockAttempt:
    """One unlock decision."""

    policy: str
    true_fob_distance_m: float
    perceived_distance_m: float
    unlocked: bool
    relayed: bool


class PkesSystem:
    """A vehicle's passive-entry decision logic.

    Args:
        unlock_range_m: fob must appear within this range to unlock.
        policy: proximity verification method (see module docstring).
        key: shared fob/vehicle secret (used by the LRP session).
    """

    def __init__(self, *, unlock_range_m: float = 2.0,
                 policy: str = "uwb-hrp",
                 key: bytes = b"\x5a" * 16) -> None:
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        if unlock_range_m <= 0:
            raise ValueError("unlock_range_m must be positive")
        self.unlock_range_m = unlock_range_m
        self.policy = policy
        self.key = key

    def _perceived_distance(self, fob_distance_m: float,
                            relay: RelayAttack | None) -> float:
        if self.policy == "lf-rssi":
            if relay is not None:
                return relay.rssi_observed_distance_m()
            return fob_distance_m
        # ToF-based policies measure the actual radio path length.
        path = fob_distance_m
        if relay is not None:
            path = relay.effective_distance_m(fob_distance_m)
        return ds_twr(path).measured_distance_m

    def try_unlock(self, fob_distance_m: float,
                   relay: RelayAttack | None = None) -> UnlockAttempt:
        """Evaluate an unlock attempt with the fob at ``fob_distance_m``."""
        if fob_distance_m < 0:
            raise ValueError("fob distance must be non-negative")
        perceived = self._perceived_distance(fob_distance_m, relay)
        unlocked = perceived <= self.unlock_range_m
        if unlocked and self.policy == "uwb-lrp":
            # The LRP policy additionally requires the distance-bounding
            # response check to pass at the perceived distance.
            session = DistanceBoundingSession(self.key, rounds=32)
            result = session.run_honest(perceived, distance_bound_m=self.unlock_range_m)
            unlocked = result.accepted
        return UnlockAttempt(
            policy=self.policy,
            true_fob_distance_m=fob_distance_m,
            perceived_distance_m=perceived,
            unlocked=unlocked,
            relayed=relay is not None,
        )

    def try_unlock_batch(self, fob_distances_m,
                         relay: RelayAttack | None = None) -> list[UnlockAttempt]:
        """Evaluate many unlock attempts in one vectorized ranging pass.

        Bit-identical to mapping :meth:`try_unlock` over the distances
        (the fleet-sweep equivalence tests pin this): the DS-TWR chain
        runs once over the whole array via :func:`ds_twr_batch`; only
        the per-attempt LRP distance-bounding check (needed just for
        unlocked ``uwb-lrp`` attempts) stays scalar.
        """
        distances = np.asarray(fob_distances_m, dtype=float)
        if distances.ndim != 1:
            raise ValueError("fob_distances_m must be a 1-D array")
        if np.any(distances < 0):
            raise ValueError("fob distance must be non-negative")
        if self.policy == "lf-rssi":
            if relay is not None:
                perceived = np.full(distances.shape,
                                    relay.rssi_observed_distance_m())
            else:
                perceived = distances
        else:
            paths = distances
            if relay is not None:
                paths = np.array([relay.effective_distance_m(d)
                                  for d in distances])
            perceived = ds_twr_batch(paths).measured_distance_m
        attempts: list[UnlockAttempt] = []
        for true_m, perceived_m in zip(distances, perceived):
            unlocked = bool(perceived_m <= self.unlock_range_m)
            if unlocked and self.policy == "uwb-lrp":
                session = DistanceBoundingSession(self.key, rounds=32)
                result = session.run_honest(float(perceived_m),
                                            distance_bound_m=self.unlock_range_m)
                unlocked = result.accepted
            attempts.append(UnlockAttempt(
                policy=self.policy,
                true_fob_distance_m=float(true_m),
                perceived_distance_m=float(perceived_m),
                unlocked=unlocked,
                relayed=relay is not None,
            ))
        return attempts

    def relay_attack_succeeds(self, fob_distance_m: float,
                              relay: RelayAttack | None = None) -> bool:
        """Convenience: does a relay attack open the car with a far fob?"""
        relay = relay or RelayAttack()
        attempt = self.try_unlock(fob_distance_m, relay=relay)
        return attempt.unlocked and fob_distance_m > self.unlock_range_m
