"""Physical-layer distance manipulation attacks (paper §II).

Three attack families the paper discusses:

* **Ghost-peak / early-peak injection** (:class:`GhostPeakAttack`) —
  against HRP STS correlation ([4], [8]): the attacker cannot predict
  the STS, so it blasts template-*independent* pulse energy slightly
  ahead of the legitimate arrival. Random correlation between the
  injected energy and the STS occasionally exceeds the receiver's
  leading-edge threshold at an early lag → **distance reduction**.
* **Distance enlargement** (:class:`EnlargementAttack`) — ([13], [14]):
  annihilate (imperfectly) the direct path and replay the legitimate
  signal later, so the receiver locks onto the delayed copy →
  **distance enlargement**, the dangerous case for collision avoidance
  (a nearby car made to look far).
* **Relay** (:class:`RelayAttack`) — the classic PKES attack [1]: relay
  frames between a distant key fob and the car. A relay can only *add*
  delay, which is why ToF-based secure ranging defeats it; against
  legacy RSSI-based proximity it succeeds trivially
  (:mod:`repro.phy.pkes`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rng import numpy_rng
from repro.phy.channel import Channel
from repro.phy.pulses import PhyConfig, build_pulse_train

__all__ = ["GhostPeakAttack", "EnlargementAttack", "RelayAttack"]


@dataclass
class GhostPeakAttack:
    """Inject unpredictable-sequence pulse energy ahead of the true arrival.

    Args:
        advance_m: how many metres earlier than the true path the
            injected energy is positioned (the distance reduction sought).
        power: amplitude of each injected pulse relative to legitimate
            pulses. Published attacks use a strong over-the-air power
            advantage; success probability grows with this.
        n_pulses: length of the injected random train (defaults to the
            session's STS length at measure time).
        seed_label: deterministic randomness label.
    """

    advance_m: float
    power: float = 4.0
    n_pulses: int = 256
    seed_label: str = "ghost-peak"

    def __post_init__(self) -> None:
        if self.advance_m <= 0:
            raise ValueError("advance_m must be positive (this is a reduction attack)")
        if self.power <= 0:
            raise ValueError("power must be positive")
        self._rng = numpy_rng(self.seed_label)

    def waveform(self, channel: Channel, config: PhyConfig) -> np.ndarray:
        """Attack waveform in receiver time.

        The injected train starts ``advance_m`` worth of samples before
        the legitimate direct path would arrive.
        """
        legit_delay = channel.delay_samples(config)
        advance_samples = round(self.advance_m / config.metres_per_sample)
        start = max(0, legit_delay - advance_samples)
        polarities = self._rng.choice((-1.0, 1.0), size=self.n_pulses)
        train = build_pulse_train(polarities, config) * self.power
        out = np.zeros(start + train.size)
        out[start:] = train
        return out


@dataclass
class EnlargementAttack:
    """Annihilate the direct path and replay the signal with extra delay.

    Args:
        extra_delay_m: how much farther the target should appear.
        residual_gain: leftover amplitude of the imperfectly annihilated
            direct path (0 = perfect annihilation; published analyses
            [13] show perfect annihilation is infeasible in practice,
            and the residual is what UWB-ED detects).
        replay_gain: amplitude of the delayed replayed copy.
    """

    extra_delay_m: float
    residual_gain: float = 0.3
    replay_gain: float = 1.0

    def __post_init__(self) -> None:
        if self.extra_delay_m <= 0:
            raise ValueError("extra_delay_m must be positive")
        if not 0.0 <= self.residual_gain < 1.0:
            raise ValueError("residual_gain must be in [0, 1)")

    def apply(self, channel: Channel) -> Channel:
        """Return a copy of ``channel`` with the direct path suppressed."""
        return Channel(
            distance_m=channel.distance_m,
            snr_db=channel.snr_db,
            path_gain=self.residual_gain,
            multipath=channel.multipath,
            seed_label=channel.seed_label + ":enlarged",
        )

    def waveform(self, channel: Channel, config: PhyConfig,
                 tx_signal: np.ndarray) -> np.ndarray:
        """The delayed replayed copy, in receiver time."""
        legit_delay = channel.delay_samples(config)
        extra = round(self.extra_delay_m / config.metres_per_sample)
        start = legit_delay + extra
        out = np.zeros(start + tx_signal.size)
        out[start:] = self.replay_gain * tx_signal
        return out


@dataclass(frozen=True)
class RelayAttack:
    """Relay frames between a far-away fob and the vehicle.

    ``cable_length_m`` models the attacker's relay link; the relayed
    signal travels vehicle → attacker → fob → attacker → vehicle, so the
    *measured* ToF distance can never be below the true fob distance.
    """

    cable_length_m: float = 30.0
    processing_delay_ns: float = 10.0

    def effective_distance_m(self, true_fob_distance_m: float) -> float:
        """Distance a ToF ranging system measures through the relay."""
        from repro.phy.pulses import SPEED_OF_LIGHT

        processing_m = self.processing_delay_ns * 1e-9 * SPEED_OF_LIGHT
        return true_fob_distance_m + self.cable_length_m + processing_m

    def rssi_observed_distance_m(self) -> float:
        """Distance an RSSI/LF proximity check *believes* under relay.

        The relay re-amplifies the LF field next to the car, so the
        legacy check sees the fob as essentially adjacent. This is the
        [1] attack that motivated secure ranging.
        """
        return 0.5
