"""Physical-layer defenses: enlargement detection (UWB-ED style).

The reduction-attack defense (the STS integrity check of [4]) lives
inside :class:`repro.phy.hrp.HrpReceiver`, because it is part of the
receive pipeline.  This module adds the *enlargement* side ([13]): a
detector that inspects the received energy **before** the claimed first
path.  A genuine measurement has only noise there; an enlargement attack
leaves the imperfectly annihilated residual of the true direct path,
which shows up as STS-coherent energy at an earlier delay hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.pulses import PhyConfig, pulse_template

__all__ = ["EnlargementVerdict", "UwbEdDetector"]


@dataclass(frozen=True)
class EnlargementVerdict:
    """Detector output.

    ``early_energy_ratio`` is the best STS-coherent match in the clean
    early region, normalized so that pure noise concentrates near 1.0
    (the statistic is divided by the expected maximum of standard
    normals over the searched lags).
    """

    attack_detected: bool
    early_energy_ratio: float
    threshold: float


class UwbEdDetector:
    """Detect distance enlargement via early-region coherent matching.

    For every candidate delay hypothesis ``d`` earlier than the claimed
    ToA, the detector coherently combines per-pulse matched-filter
    outputs — using the known STS polarities — over the pulses whose
    positions fall *strictly before* the claimed ToA (minus a guard).
    Honest measurements have only noise there, so the normalized maximum
    behaves like the max of standard normals; an imperfectly annihilated
    direct path produces a coherent spike at the true delay.  The
    attacker cannot avoid this without annihilating a cryptographically
    unpredictable sequence perfectly — [13]'s core argument.

    Args:
        energy_ratio_threshold: detection threshold on the normalized
            statistic (noise baseline is ~1.0; see
            :class:`EnlargementVerdict`).
        guard_samples: samples before the claimed ToA excluded from the
            clean region (keeps the legitimate peak's skirt out).
        min_clean_pulses: minimum pulses in the clean region for a
            meaningful decision; below this the detector abstains
            (returns not-detected).
    """

    def __init__(self, *, energy_ratio_threshold: float = 1.3,
                 guard_samples: int = 16,
                 min_clean_pulses: int = 3) -> None:
        if energy_ratio_threshold <= 1.0:
            raise ValueError("threshold must exceed 1 (the noise baseline)")
        if guard_samples < 0:
            raise ValueError("guard_samples must be non-negative")
        self.energy_ratio_threshold = energy_ratio_threshold
        self.guard_samples = guard_samples
        self.min_clean_pulses = min_clean_pulses

    def inspect(self, received: np.ndarray, sts: np.ndarray,
                claimed_toa_sample: int, config: PhyConfig,
                noise_sigma: float) -> EnlargementVerdict:
        """Search the clean early region for a hidden (residual) path."""
        received = np.asarray(received, dtype=float)
        sts = np.asarray(sts, dtype=float)
        pulse = pulse_template(config)
        spp = config.samples_per_pri
        clean_end = claimed_toa_sample - self.guard_samples
        pulse_len = pulse.size
        if clean_end <= pulse_len:
            return EnlargementVerdict(False, 0.0, self.energy_ratio_threshold)

        pulse_norm = float(np.linalg.norm(pulse))
        sigma = max(noise_sigma, 1e-12)
        best = 0.0
        n_lags = 0
        for d in range(0, clean_end - pulse_len):
            # Pulses of a train starting at d that fit entirely in the
            # clean region.
            n_clean = min(sts.size, (clean_end - pulse_len - d) // spp + 1)
            if n_clean < self.min_clean_pulses:
                break
            acc = 0.0
            for i in range(n_clean):
                start = d + i * spp
                acc += sts[i] * float(np.dot(received[start : start + pulse_len], pulse))
            stat = abs(acc) / (sigma * pulse_norm * np.sqrt(n_clean))
            best = max(best, stat)
            n_lags += 1
        if n_lags == 0:
            return EnlargementVerdict(False, 0.0, self.energy_ratio_threshold)
        noise_expectation = float(np.sqrt(2.0 * np.log(max(n_lags, 2))))
        ratio = best / noise_expectation
        return EnlargementVerdict(
            attack_detected=ratio > self.energy_ratio_threshold,
            early_energy_ratio=ratio,
            threshold=self.energy_ratio_threshold,
        )
