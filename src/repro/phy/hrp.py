"""HRP-UWB ranging with Scrambled Timestamp Sequences (paper Fig. 2, §II-A).

The High Rate Pulse mode of IEEE 802.15.4z appends a **Secure Training
Sequence (STS)** — a cryptographically pseudorandom ±1 pulse sequence —
to the frame and measures time-of-flight on it.  Security rests on the
attacker not being able to predict the sequence; the paper (citing [4],
[8]) notes that a receiver that *naively* cross-correlates is still
vulnerable to ghost-peak injection, and that integrity checks at the
receiver restore security.

This module implements:

* :func:`generate_sts` — AES-CTR-based STS derivation (the DRBG role the
  standard assigns to AES);
* :class:`HrpReceiver` — correlation + leading-edge ToA, with an optional
  STS integrity check (normalized-correlation validation of the claimed
  first path, modeled after Luo et al. [4]);
* :class:`HrpRangingSession` — one full measurement over a channel with
  an optional attacker waveform, returning a :class:`RangingOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.modes import ctr_keystream
from repro.phy.channel import Channel
from repro.phy.pulses import HRP_CONFIG, PhyConfig, build_pulse_train
from repro.phy.toa import ToaEstimate, cross_correlation, first_path_toa

__all__ = [
    "generate_sts",
    "RangingOutcome",
    "HrpReceiver",
    "HrpRangingSession",
]


def generate_sts(key: bytes, counter: int, length: int) -> np.ndarray:
    """Derive a ±1 STS of ``length`` pulses from an AES-CTR keystream.

    ``counter`` plays the role of the STS index / frame counter so each
    ranging round uses a fresh unpredictable sequence.
    """
    if length <= 0:
        raise ValueError("STS length must be positive")
    counter_block = counter.to_bytes(16, "big")
    stream = ctr_keystream(key, counter_block, (length + 7) // 8)
    bits = np.unpackbits(np.frombuffer(stream, dtype=np.uint8))[:length]
    return bits.astype(float) * 2.0 - 1.0


@dataclass(frozen=True)
class RangingOutcome:
    """Result of one HRP ranging measurement."""

    true_distance_m: float
    measured_distance_m: float
    accepted: bool
    integrity_ok: bool
    toa: ToaEstimate
    normalized_correlation: float

    @property
    def error_m(self) -> float:
        return self.measured_distance_m - self.true_distance_m

    @property
    def reduced(self) -> bool:
        """True when the measurement claims a distance shorter than reality
        by more than one sample of slack (a successful reduction)."""
        return self.error_m < -0.5


class HrpReceiver:
    """HRP receiver: correlate, back-search, optionally verify integrity.

    Args:
        config: PHY parameters.
        back_search_window: leading-edge search span in samples.
        threshold_ratio: leading-edge threshold (fraction of main peak).
        integrity_check: enable the normalized-correlation first-path
            validation ([4]); ``min_normalized_corr`` is its threshold.
    """

    def __init__(self, config: PhyConfig = HRP_CONFIG, *,
                 back_search_window: int = 64,
                 threshold_ratio: float = 0.35,
                 integrity_check: bool = True,
                 min_normalized_corr: float = 0.35) -> None:
        if not 0.0 < min_normalized_corr < 1.0:
            raise ValueError("min_normalized_corr must be in (0, 1)")
        self.config = config
        self.back_search_window = back_search_window
        self.threshold_ratio = threshold_ratio
        self.integrity_check = integrity_check
        self.min_normalized_corr = min_normalized_corr

    def estimate(self, received: np.ndarray, sts: np.ndarray) -> tuple[ToaEstimate, float, bool]:
        """Estimate the ToA of the STS in ``received``.

        Returns ``(estimate, normalized_correlation, integrity_ok)``.
        The normalized correlation is the matched-filter correlation at
        the claimed first path divided by the energy of the received
        window — close to 1 for a genuine (noisy) copy of the template,
        and near 0 for injected template-independent energy (a ghost
        peak), which is exactly the property the integrity check tests.
        """
        template = build_pulse_train(sts, self.config)
        corr = cross_correlation(received, template)
        estimate = first_path_toa(
            corr,
            back_search_window=self.back_search_window,
            threshold_ratio=self.threshold_ratio,
        )
        window = received[estimate.toa_sample : estimate.toa_sample + template.size]
        denom = float(np.linalg.norm(template) * np.linalg.norm(window))
        rho = abs(float(corr[estimate.toa_sample])) / denom if denom > 0 else 0.0
        integrity_ok = (not self.integrity_check) or rho >= self.min_normalized_corr
        return estimate, rho, integrity_ok


class HrpRangingSession:
    """One-way ToA measurement between two HRP devices sharing an STS key.

    The session abstracts the two-way exchange (see
    :mod:`repro.phy.ranging` for the TWR timing algebra): because both
    directions are symmetric, the security question — can an attacker
    shift the measured ToA of an STS? — is captured by a single
    direction, which is how the literature the paper cites ([4], [6],
    [8]) also evaluates it.
    """

    def __init__(self, key: bytes, *, sts_length: int = 256,
                 config: PhyConfig = HRP_CONFIG,
                 receiver: HrpReceiver | None = None) -> None:
        if sts_length < 16:
            raise ValueError("STS too short for meaningful correlation")
        self.key = key
        self.sts_length = sts_length
        self.config = config
        self.receiver = receiver or HrpReceiver(config)
        self._counter = 0

    def next_sts(self) -> np.ndarray:
        """Fresh STS for the next round (never reused)."""
        sts = generate_sts(self.key, self._counter, self.sts_length)
        self._counter += 1
        return sts

    def measure(self, channel: Channel,
                attacker_signal: np.ndarray | None = None) -> RangingOutcome:
        """Run one ranging round over ``channel``.

        ``attacker_signal`` is an optional waveform in receiver time
        (see :mod:`repro.phy.attacks`); it is summed at the receiver.
        """
        sts = self.next_sts()
        tx = build_pulse_train(sts, self.config)
        rx = channel.propagate(tx, self.config, extra_signal=attacker_signal)
        estimate, rho, integrity_ok = self.receiver.estimate(rx, sts)
        measured = estimate.toa_sample * self.config.metres_per_sample
        return RangingOutcome(
            true_distance_m=channel.distance_m,
            measured_distance_m=measured,
            accepted=integrity_ok,
            integrity_ok=integrity_ok,
            toa=estimate,
            normalized_correlation=rho,
        )
