"""The unified cross-layer flow graph (paper §V-C / §VIII).

`repro.lint` (PR 1) judges each configured object locally; this module
compiles the *whole* :class:`~repro.lint.target.AnalysisTarget` into one
directed graph so end-to-end exposure can be proved or refuted:

* **nodes** — every :class:`~repro.core.entities.SystemModel` component,
  plus cloud services with their endpoints and storage buckets, SSI
  actors (credential issuers/subjects), and V2X channels;
* **edges** — model interfaces, gateway forwarding rules (through
  :class:`~repro.lint.target.GatewayBinding` port attachments), cloud
  HTTP/IAM access paths, credential/provisioning relations, and V2X
  attachments;
* **protection lattice** — each edge is annotated with the strongest
  protection crossing it (:class:`Protection`: none < filtered < SECOC
  < CANsec < MACsec < TLS < VC-verified).  A *weakness* recorded on an
  edge (truncated SECOC profile, a MACsec session rekeying at the PN
  cliff, a heap-resident cloud key, an expired credential) downgrades
  it to non-blocking even when a mechanism is nominally deployed.

The graph is deliberately a static over-approximation: if *any* SECOC
profile in the target is broken, every SECOC-protected CAN edge is
treated as forgeable — the analyzer proves the absence of paths, not
their exploitability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import TYPE_CHECKING, Iterator

from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.lint.target import AnalysisTarget

__all__ = [
    "Protection",
    "FlowNode",
    "FlowEdge",
    "FlowGraph",
    "build_flow_graph",
    "SINK_CRITICALITY",
]

#: Components at or above this criticality are safety-critical sinks.
SINK_CRITICALITY = 4


class Protection(IntEnum):
    """The protection lattice, ordered by how much an edge resists taint.

    ``FILTERED`` (a gateway allow-rule) constrains *which* frames cross
    but authenticates nothing, so it never blocks taint; everything from
    ``SECOC`` upward blocks unless a recorded weakness voids it.
    """

    NONE = 0
    FILTERED = 1
    SECOC = 2
    CANSEC = 3
    MACSEC = 4
    TLS = 5
    VC_VERIFIED = 6

    @property
    def label(self) -> str:
        return self.name.lower().replace("_", "-")


#: Protections at or above this rank block taint (absent a weakness).
_BLOCKING_FLOOR = Protection.SECOC

#: What to deploy on an unprotected edge, by edge kind.
_SUGGESTIONS = {
    "interface": "authenticate the link (SECOC/MACsec/TLS as appropriate)",
    "gateway": "tighten the forwarding whitelist to the ids the zone needs",
    "http": "require credentials on the endpoint (or disable it)",
    "iam": "hold the key in an HSM/KMS and strip escalation scopes",
    "credential": "re-issue a registry-anchored, unexpired credential",
    "provisioning": "gate provisioning on a verifiable onboarding credential",
    "v2x": "sign V2X messages (1609.2 certificates / verifiable credentials)",
}


@dataclass(frozen=True)
class FlowNode:
    """One vertex of the unified flow graph."""

    name: str
    kind: str                 # component | service | endpoint | datastore | actor | channel
    layer: Layer
    criticality: int = 1
    source: bool = False      # an untrusted entry point (REMOTE/ADJACENT)
    sink: bool = False        # safety-critical ECU or personal-data store
    note: str = ""


@dataclass(frozen=True)
class FlowEdge:
    """One directed hop, annotated with its strongest crossing protection."""

    src: str
    dst: str
    kind: str                 # interface | gateway | http | iam | credential | provisioning | v2x
    protection: Protection = Protection.NONE
    weakness: str = ""        # why a nominal protection does not hold
    note: str = ""            # protocol / rule detail for witnesses

    @property
    def blocking(self) -> bool:
        """Does this edge stop taint?"""
        return self.protection >= _BLOCKING_FLOOR and not self.weakness

    @property
    def missing_boundary(self) -> str:
        """The witness annotation: what is absent or broken on this hop."""
        if self.blocking:
            return f"protected by {self.protection.label}"
        suggestion = _SUGGESTIONS.get(self.kind, "add an authenticated boundary")
        if self.weakness:
            return (f"{self.protection.label} deployed but void "
                    f"({self.weakness}); {suggestion}")
        if self.protection == Protection.FILTERED:
            detail = f" ({self.note})" if self.note else ""
            return f"filtered only{detail}; {suggestion}"
        detail = f" {self.note}" if self.note else ""
        return f"no protection on{detail or ' this hop'}; {suggestion}"


class FlowGraph:
    """A directed multigraph of :class:`FlowNode`/:class:`FlowEdge`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: dict[str, FlowNode] = {}
        self._out: dict[str, list[FlowEdge]] = {}
        self._edges: list[FlowEdge] = []

    # -- construction --------------------------------------------------------

    def add_node(self, node: FlowNode) -> FlowNode:
        if node.name in self._nodes:
            raise ValueError(f"duplicate flow node {node.name!r}")
        self._nodes[node.name] = node
        self._out[node.name] = []
        return node

    def add_edge(self, edge: FlowEdge) -> FlowEdge:
        for end in (edge.src, edge.dst):
            if end not in self._nodes:
                raise KeyError(f"unknown flow node {end!r}")
        self._edges.append(edge)
        self._out[edge.src].append(edge)
        return edge

    # -- queries -------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> FlowNode:
        return self._nodes[name]

    def nodes(self) -> list[FlowNode]:
        return list(self._nodes.values())

    def edges(self) -> list[FlowEdge]:
        return list(self._edges)

    def out_edges(self, name: str) -> list[FlowEdge]:
        return list(self._out[name])

    def sources(self) -> list[FlowNode]:
        return [n for n in self._nodes.values() if n.source]

    def sinks(self) -> list[FlowNode]:
        return [n for n in self._nodes.values() if n.sink]

    def open_edges(self) -> Iterator[FlowEdge]:
        """Edges taint can cross."""
        return (e for e in self._edges if not e.blocking)

    def to_system_model(self) -> SystemModel:
        """Export the *open* subgraph as a core :class:`SystemModel`.

        Sources become entry points and every open edge an
        unauthenticated interface, so
        :meth:`~repro.core.attackgraph.AttackGraph.minimal_hardening_cut`
        computes where to spend the hardening budget; blocking edges are
        omitted — they are already paid for.
        """
        model = SystemModel(f"flow:{self.name}")
        for node in self._nodes.values():
            model.add_component(Component(
                node.name, node.layer,
                criticality=min(max(node.criticality, 1), 5),
                exposed=node.source))
        seen: set[tuple[str, str]] = set()
        for edge in self.open_edges():
            if edge.src == edge.dst or (edge.src, edge.dst) in seen:
                continue
            seen.add((edge.src, edge.dst))
            model.connect(Interface(edge.src, edge.dst, edge.kind))
        return model


# --------------------------------------------------------------------------
# building the graph from an AnalysisTarget
# --------------------------------------------------------------------------

#: Interface protocols mapped to the mechanism that secures them when
#: ``authenticated`` is set.
_CAN_PROTOCOLS = {"can", "canfd", "lin"}
_T1S_PROTOCOLS = {"t1s", "10base-t1s"}
_ETHERNET_PROTOCOLS = {"ethernet", "macsec"}


def _secoc_weakness(target: "AnalysisTarget") -> str:
    """Conservative downgrade: any broken profile voids SECOC everywhere."""
    from repro.lint.rules import MIN_MAC_BITS

    for label, profile in sorted(target.secoc_profiles.items()):
        if profile.mac_bits < MIN_MAC_BITS:
            return (f"profile {profile.name!r} ({label}) truncates the MAC "
                    f"to {profile.mac_bits} bits")
        if profile.freshness_bits == 0:
            return f"profile {profile.name!r} ({label}) has no freshness"
    return ""


def _macsec_weakness(target: "AnalysisTarget") -> str:
    from repro.lint.rules import MAX_REKEY_FRACTION

    for index, manager in enumerate(target.lifecycle_managers):
        if manager.rekey_fraction > MAX_REKEY_FRACTION:
            return (f"lifecycle[{index}] rekeys at "
                    f"{manager.rekey_fraction:.0%} of the PN space")
    return ""


def _interface_edge(interface: Interface, *, secoc_weak: str,
                    macsec_weak: str) -> FlowEdge:
    note = f"{interface.protocol!r} interface"
    if not interface.authenticated:
        return FlowEdge(interface.source, interface.target, "interface",
                        Protection.NONE, note=note)
    protocol = interface.protocol.lower()
    if protocol in _CAN_PROTOCOLS:
        return FlowEdge(interface.source, interface.target, "interface",
                        Protection.SECOC, weakness=secoc_weak, note=note)
    if protocol in _T1S_PROTOCOLS:
        return FlowEdge(interface.source, interface.target, "interface",
                        Protection.CANSEC, note=note)
    if protocol in _ETHERNET_PROTOCOLS:
        return FlowEdge(interface.source, interface.target, "interface",
                        Protection.MACSEC, weakness=macsec_weak, note=note)
    return FlowEdge(interface.source, interface.target, "interface",
                    Protection.TLS, note=note)


def _add_model_nodes(graph: FlowGraph, target: "AnalysisTarget") -> None:
    assert target.model is not None
    for component in target.model.components():
        graph.add_node(FlowNode(
            component.name, "component", component.layer,
            criticality=component.criticality,
            source=component.exposed,
            sink=component.criticality >= SINK_CRITICALITY,
            note=component.description))
    secoc_weak = _secoc_weakness(target)
    macsec_weak = _macsec_weakness(target)
    for interface in target.model.interfaces():
        graph.add_edge(_interface_edge(
            interface, secoc_weak=secoc_weak, macsec_weak=macsec_weak))


def _add_gateway_edges(graph: FlowGraph, target: "AnalysisTarget") -> None:
    for binding in target.gateways:
        for src_port, dst_port, count in binding.gateway.forward_pairs():
            for src in sorted(binding.components_on(src_port)):
                for dst in sorted(binding.components_on(dst_port)):
                    if src == dst or src not in graph or dst not in graph:
                        continue
                    graph.add_edge(FlowEdge(
                        src, dst, "gateway", Protection.FILTERED,
                        note=f"{binding.gateway.name} forwards {count} id(s) "
                             f"{src_port}->{dst_port}"))


def _add_cloud_nodes(graph: FlowGraph, target: "AnalysisTarget") -> None:
    for service in target.cloud_services:
        service_node = f"cloud:{service.name}"
        graph.add_node(FlowNode(service_node, "service", Layer.DATA,
                                criticality=3, note=service.framework))
        for endpoint in sorted(service.active_endpoints(), key=lambda e: e.path):
            name = f"cloud:{service.name}:{endpoint.path}"
            untrusted = not endpoint.auth_required
            graph.add_node(FlowNode(
                name, "endpoint", Layer.DATA, criticality=1,
                source=untrusted,
                note="debug endpoint" if endpoint.debug else "endpoint"))
            if untrusted:
                detail = "debug " if endpoint.debug else ""
                edge = FlowEdge(name, service_node, "http", Protection.NONE,
                                note=f"unauthenticated {detail}endpoint "
                                     f"{endpoint.path}")
            else:
                edge = FlowEdge(name, service_node, "http", Protection.TLS,
                                note=f"credentialed endpoint {endpoint.path}")
            graph.add_edge(edge)
        for bucket in sorted(service.buckets.values(), key=lambda b: b.name):
            name = f"cloud:{service.name}:bucket:{bucket.name}"
            graph.add_node(FlowNode(
                name, "datastore", Layer.DATA, criticality=3,
                sink=bool(bucket.records),
                note=f"{len(bucket.records)} record(s), "
                     f"scope {bucket.required_scope!r}"))
            access = service.bucket_access_paths(bucket)
            heap_resident = [(s, how) for s, how in access if s.in_process_memory]
            if heap_resident:
                secret, how = heap_resident[0]
                graph.add_edge(FlowEdge(
                    service_node, name, "iam", Protection.TLS,
                    weakness=f"heap-resident secret {secret.key_id!r} {how}",
                    note=f"bucket {bucket.name}"))
            elif access:
                graph.add_edge(FlowEdge(
                    service_node, name, "iam", Protection.TLS,
                    note=f"scope-gated bucket {bucket.name}"))


def _credential_weakness(target: "AnalysisTarget", credential: object) -> str:
    from repro.ssi.vc import VerifiableCredential

    assert isinstance(credential, VerifiableCredential)
    if credential.issuer == credential.subject:
        return "self-issued (issuer == subject)"
    if target.registry is None:
        return "no verifiable data registry to resolve the issuer against"
    result = credential.verify(target.registry, now=target.now)
    if not result:
        return result.reason
    return ""


def _add_ssi_nodes(graph: FlowGraph, target: "AnalysisTarget") -> None:
    from repro.ssi.vc import VerifiableCredential

    def actor(did: str) -> str:
        name = f"ssi:{did}"
        if name not in graph:
            resolvable = False
            if target.registry is not None:
                try:
                    target.registry.resolve(did)
                    resolvable = True
                except (KeyError, ValueError):
                    resolvable = False
            graph.add_node(FlowNode(
                name, "actor", Layer.SOFTWARE_PLATFORM, criticality=2,
                source=not resolvable,
                note="resolvable DID" if resolvable else "unresolvable DID"))
        return name

    for credential in target.credentials:
        assert isinstance(credential, VerifiableCredential)
        weakness = _credential_weakness(target, credential)
        issuer = actor(credential.issuer)
        subject = actor(credential.subject)
        if issuer != subject:
            graph.add_edge(FlowEdge(
                issuer, subject, "credential", Protection.VC_VERIFIED,
                weakness=weakness,
                note=f"{credential.credential_type} "
                     f"{credential.credential_id[:8]}"))
        zones = credential.claims.get("zones", [])
        if isinstance(zones, (list, tuple)):
            for zone in zones:
                if isinstance(zone, str) and zone in graph:
                    graph.add_edge(FlowEdge(
                        subject, zone, "provisioning", Protection.VC_VERIFIED,
                        weakness=weakness,
                        note=f"key provisioning authorized by "
                             f"{credential.credential_type}"))


def _add_v2x_nodes(graph: FlowGraph, target: "AnalysisTarget") -> None:
    for channel in target.v2x_channels:
        name = f"v2x:{channel.name}"
        if name in graph:
            continue
        graph.add_node(FlowNode(
            name, "channel", Layer.COLLABORATION, criticality=1,
            source=not channel.authenticated,
            note="signed V2X channel" if channel.authenticated
                 else "unsigned V2X channel"))
        if channel.component in graph:
            protection = (Protection.VC_VERIFIED if channel.authenticated
                          else Protection.NONE)
            graph.add_edge(FlowEdge(
                name, channel.component, "v2x", protection,
                note=f"radio attachment of {channel.name!r}"))


def build_flow_graph(target: "AnalysisTarget") -> FlowGraph:
    """Compile an :class:`AnalysisTarget` into one unified flow graph."""
    graph = FlowGraph(target.name)
    if target.model is not None:
        _add_model_nodes(graph, target)
    _add_gateway_edges(graph, target)
    _add_cloud_nodes(graph, target)
    _add_ssi_nodes(graph, target)
    _add_v2x_nodes(graph, target)
    return graph
