"""repro.flow — static cross-layer taint/reachability analysis (§V-C, §VIII).

Compiles a whole configured system (the lint layer's
:class:`~repro.lint.target.AnalysisTarget`) into one unified flow graph
and proves — or refutes — that untrusted entry points cannot reach
safety-critical ECUs or personal-data stores.  Every violation carries
a hop-by-hop **path witness** naming the missing boundary on each hop,
plus a minimal **hardening cut** computed through the attack-graph
min-cut machinery.

Findings surface in two equivalent ways:

* programmatically — :func:`analyze` returns a :class:`FlowResult`;
* through the linter — the ``FLOW001``–``FLOW004`` rules are part of
  the shared lint catalog, so baselines, JSON reports, SARIF export,
  and CI gates all apply unchanged.
"""

from typing import TYPE_CHECKING

from repro.flow.graph import (
    FlowEdge,
    FlowGraph,
    FlowNode,
    Protection,
    build_flow_graph,
)
from repro.flow.report import render_cut, render_summary, render_witnesses
from repro.flow.rules import FLOW_RULES
from repro.flow.taint import FlowResult, PathWitness, analyze, propagate_taint

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.lint.engine import Linter

__all__ = [
    "Protection",
    "FlowNode",
    "FlowEdge",
    "FlowGraph",
    "build_flow_graph",
    "PathWitness",
    "FlowResult",
    "analyze",
    "propagate_taint",
    "FLOW_RULES",
    "flow_linter",
    "render_summary",
    "render_witnesses",
    "render_cut",
]


def flow_linter() -> "Linter":
    """A :class:`~repro.lint.engine.Linter` running only the FLOW rules."""
    from repro.lint.engine import Linter

    return Linter(FLOW_RULES)
