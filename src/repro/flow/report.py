"""Plain-text renderers for flow-analysis results (CLI output)."""

from __future__ import annotations

from repro.flow.taint import FlowResult

__all__ = ["render_summary", "render_witnesses", "render_cut"]


def render_summary(result: FlowResult) -> str:
    """One-paragraph overview: graph size, sources, sinks, verdict."""
    graph = result.graph
    lines = [
        f"flow analysis of {result.target_name!r}:",
        f"  graph: {len(graph.nodes())} node(s), {len(graph.edges())} edge(s), "
        f"{sum(1 for _ in graph.open_edges())} open",
        f"  sources: {', '.join(sorted(n.name for n in graph.sources())) or '-'}",
        f"  sinks: {', '.join(sorted(n.name for n in graph.sinks())) or '-'}",
        f"  tainted nodes: {len(result.tainted)}",
    ]
    if result.path_clean:
        lines.append("  verdict: PATH-CLEAN — no untrusted source reaches a sink")
    else:
        lines.append(f"  verdict: {len(result.witnesses)} unprotected "
                     f"source->sink path(s)")
    return "\n".join(lines)


def render_witnesses(result: FlowResult) -> str:
    """Every witness, hop by hop with the missing boundary per hop."""
    if result.path_clean:
        return "no unprotected paths"
    blocks = []
    for witness in result.witnesses:
        lines = [f"{witness.source} => {witness.sink} "
                 f"({len(witness.hops)} hop(s)):"]
        lines += [f"  [{i}] {line}"
                  for i, line in enumerate(witness.describe(), start=1)]
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_cut(result: FlowResult) -> str:
    """The hardening cut per reached sink."""
    if result.path_clean:
        return "no unprotected paths; nothing to cut"
    lines = []
    for sink in sorted(result.cuts):
        cut = result.cuts[sink]
        if cut:
            pretty = ", ".join(f"{u}->{v}" for u, v in sorted(cut))
            lines.append(f"{sink}: secure {len(cut)} edge(s): {pretty}")
        else:
            lines.append(f"{sink}: sink is itself an untrusted source; "
                         f"no edge cut applies")
    return "\n".join(lines)
