"""Renderers for flow-analysis results: CLI text and versioned JSON.

The JSON document (schema version ``1.0``) carries everything the
taint analysis proved — graph size, tainted set, hop-by-hop witnesses,
and the hardening cut per sink — in a shape
:func:`validate_flow_dict` can check, so downstream consumers detect
schema drift instead of silently misparsing.
"""

from __future__ import annotations

from repro.flow.taint import FlowResult
from repro.lint.report import SchemaError

__all__ = ["render_summary", "render_witnesses", "render_cut",
           "to_json_dict", "validate_flow_dict",
           "FLOW_SCHEMA_VERSION", "FLOW_TOOL_NAME"]

FLOW_SCHEMA_VERSION = "1.0"
FLOW_TOOL_NAME = "repro-flow"


def render_summary(result: FlowResult) -> str:
    """One-paragraph overview: graph size, sources, sinks, verdict."""
    graph = result.graph
    lines = [
        f"flow analysis of {result.target_name!r}:",
        f"  graph: {len(graph.nodes())} node(s), {len(graph.edges())} edge(s), "
        f"{sum(1 for _ in graph.open_edges())} open",
        f"  sources: {', '.join(sorted(n.name for n in graph.sources())) or '-'}",
        f"  sinks: {', '.join(sorted(n.name for n in graph.sinks())) or '-'}",
        f"  tainted nodes: {len(result.tainted)}",
    ]
    if result.path_clean:
        lines.append("  verdict: PATH-CLEAN — no untrusted source reaches a sink")
    else:
        lines.append(f"  verdict: {len(result.witnesses)} unprotected "
                     f"source->sink path(s)")
    return "\n".join(lines)


def render_witnesses(result: FlowResult) -> str:
    """Every witness, hop by hop with the missing boundary per hop."""
    if result.path_clean:
        return "no unprotected paths"
    blocks = []
    for witness in result.witnesses:
        lines = [f"{witness.source} => {witness.sink} "
                 f"({len(witness.hops)} hop(s)):"]
        lines += [f"  [{i}] {line}"
                  for i, line in enumerate(witness.describe(), start=1)]
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_cut(result: FlowResult) -> str:
    """The hardening cut per reached sink."""
    if result.path_clean:
        return "no unprotected paths; nothing to cut"
    lines = []
    for sink in sorted(result.cuts):
        cut = result.cuts[sink]
        if cut:
            pretty = ", ".join(f"{u}->{v}" for u, v in sorted(cut))
            lines.append(f"{sink}: secure {len(cut)} edge(s): {pretty}")
        else:
            lines.append(f"{sink}: sink is itself an untrusted source; "
                         f"no edge cut applies")
    return "\n".join(lines)


def to_json_dict(result: FlowResult) -> dict:
    """The flow document (see module docstring)."""
    from repro import __version__

    graph = result.graph
    return {
        "version": FLOW_SCHEMA_VERSION,
        "tool": {"name": FLOW_TOOL_NAME, "version": __version__},
        "target": result.target_name,
        "graph": {
            "nodes": len(graph.nodes()),
            "edges": len(graph.edges()),
            "open": sum(1 for _ in graph.open_edges()),
        },
        "tainted": sorted(result.tainted),
        "pathClean": result.path_clean,
        "witnesses": [
            {
                "source": witness.source,
                "sink": witness.sink,
                "hops": [
                    {"src": edge.src, "dst": edge.dst,
                     "missingBoundary": edge.missing_boundary}
                    for edge in witness.hops
                ],
            }
            for witness in result.witnesses
        ],
        "cuts": {
            sink: [list(pair) for pair in sorted(result.cuts[sink])]
            for sink in sorted(result.cuts)
        },
    }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def validate_flow_dict(document: dict) -> None:
    """Raise :class:`SchemaError` unless ``document`` matches the schema."""
    _require(isinstance(document, dict), "flow report must be an object")
    required = {"version", "tool", "target", "graph", "tainted", "pathClean",
                "witnesses", "cuts"}
    _require(set(document) == required,
             f"top-level keys {sorted(document)} != {sorted(required)}")
    _require(document["version"] == FLOW_SCHEMA_VERSION,
             f"unsupported schema version {document['version']!r}")
    tool = document["tool"]
    _require(isinstance(tool, dict) and set(tool) == {"name", "version"},
             "tool must be {name, version}")
    _require(tool["name"] == FLOW_TOOL_NAME,
             f"unexpected tool name {tool['name']!r}")
    _require(isinstance(document["target"], str) and document["target"],
             "target must be a non-empty string")

    graph = document["graph"]
    _require(isinstance(graph, dict)
             and set(graph) == {"nodes", "edges", "open"},
             "graph must be {nodes, edges, open}")
    for key in ("nodes", "edges", "open"):
        _require(isinstance(graph[key], int) and graph[key] >= 0,
                 f"graph.{key} must be a non-negative int")
    _require(graph["open"] <= graph["edges"],
             "graph.open cannot exceed graph.edges")

    _require(isinstance(document["tainted"], list)
             and all(isinstance(n, str) for n in document["tainted"]),
             "tainted must be a list of node names")
    _require(isinstance(document["pathClean"], bool),
             "pathClean must be a bool")
    _require(document["pathClean"] == (not document["witnesses"]),
             "pathClean must mean exactly zero witnesses")

    _require(isinstance(document["witnesses"], list),
             "witnesses must be a list")
    for index, witness in enumerate(document["witnesses"]):
        where = f"witnesses[{index}]"
        _require(isinstance(witness, dict)
                 and set(witness) == {"source", "sink", "hops"},
                 f"{where}: keys must be [hops, sink, source]")
        _require(isinstance(witness["source"], str) and witness["source"],
                 f"{where}: source must be a non-empty string")
        _require(isinstance(witness["sink"], str) and witness["sink"],
                 f"{where}: sink must be a non-empty string")
        hops = witness["hops"]
        _require(isinstance(hops, list) and hops,
                 f"{where}: hops must be a non-empty list")
        for hop_index, hop in enumerate(hops):
            inner = f"{where}.hops[{hop_index}]"
            _require(isinstance(hop, dict)
                     and set(hop) == {"src", "dst", "missingBoundary"},
                     f"{inner}: keys must be [dst, missingBoundary, src]")
            for key in ("src", "dst", "missingBoundary"):
                _require(isinstance(hop[key], str) and hop[key],
                         f"{inner}: {key} must be a non-empty string")
        _require(hops[-1]["dst"] == witness["sink"],
                 f"{where}: last hop must land on the sink")

    cuts = document["cuts"]
    _require(isinstance(cuts, dict), "cuts must be an object")
    for sink, edges in cuts.items():
        where = f"cuts[{sink!r}]"
        _require(isinstance(sink, str) and sink,
                 "cuts keys must be non-empty sink names")
        _require(isinstance(edges, list), f"{where} must be a list")
        for pair in edges:
            _require(isinstance(pair, list) and len(pair) == 2
                     and all(isinstance(p, str) and p for p in pair),
                     f"{where}: each cut edge must be a [src, dst] pair")
