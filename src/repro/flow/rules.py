"""The FLOW rule family: taint-analysis findings as lint rules.

Each rule runs the whole-system taint analysis
(:func:`repro.flow.taint.analyze`) and reports its findings through the
ordinary lint machinery, so FLOW findings baseline, fingerprint, gate,
and serialize exactly like every other rule family.  Subjects are
stable ``source=>sink`` (or edge) labels; messages carry the full path
witness and the hardening cut inline, because a flow finding without
its path is unactionable.

``repro.lint.rules`` extends these into the shared ``CATALOG`` at
import time; this module must therefore never import ``repro.lint.rules``
(only the engine and target adapters) or the catalog would cycle.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.core.layers import Layer
from repro.lint.engine import Rule, Severity
from repro.lint.target import AnalysisTarget

from repro.flow.graph import SINK_CRITICALITY, FlowEdge
from repro.flow.taint import FlowResult, PathWitness, analyze

__all__ = ["FLOW_RULES"]

FLOW_RULES: list[Rule] = []


def _rule(rule_id: str, title: str, *, layer: Layer, severity: Severity,
          paper_ref: str, remediation: str) -> Callable[
        [Callable[[AnalysisTarget], Iterable[tuple[str, str]]]],
        Callable[[AnalysisTarget], Iterable[tuple[str, str]]]]:
    def decorator(
            check: Callable[[AnalysisTarget], Iterable[tuple[str, str]]]
    ) -> Callable[[AnalysisTarget], Iterable[tuple[str, str]]]:
        FLOW_RULES.append(Rule(rule_id, title, layer, severity,
                               paper_ref, remediation, check))
        return check

    return decorator


def _witness_message(result: FlowResult, witness: PathWitness) -> str:
    lines = [f"untrusted data flows {witness.source} => {witness.sink} "
             f"({len(witness.hops)} hop(s))"]
    lines += [f"  {line}" for line in witness.describe()]
    cut = result.cuts.get(witness.sink, set())
    if cut:
        pretty = ", ".join(f"{u}->{v}" for u, v in sorted(cut))
        lines.append(f"  harden first: {pretty}")
    return "\n".join(lines)


@_rule("FLOW001", "untrusted source reaches safety-critical component",
       layer=Layer.NETWORK, severity=Severity.CRITICAL,
       paper_ref="§V-C / §VIII",
       remediation="break the witnessed path: deploy an authenticated "
                   "boundary on one of the listed hops (the hardening cut "
                   "names the cheapest set)")
def flow_taint_reaches_critical(
        target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    result = analyze(target)
    for witness in result.witnesses:
        sink = result.graph.node(witness.sink)
        if sink.kind != "component" or sink.criticality < SINK_CRITICALITY:
            continue
        yield (f"{witness.source}=>{witness.sink}",
               _witness_message(result, witness))


@_rule("FLOW002", "untrusted source reaches personal-data store",
       layer=Layer.DATA, severity=Severity.HIGH,
       paper_ref="§V / Fig. 8",
       remediation="require authentication on the public endpoint and move "
                   "bucket-unlocking secrets out of process memory")
def flow_taint_reaches_datastore(
        target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    result = analyze(target)
    for witness in result.witnesses:
        sink = result.graph.node(witness.sink)
        if sink.kind != "datastore":
            continue
        yield (f"{witness.source}=>{witness.sink}",
               _witness_message(result, witness))


@_rule("FLOW003", "gateway forwards tainted traffic into critical zone",
       layer=Layer.NETWORK, severity=Severity.MEDIUM,
       paper_ref="§III / Fig. 3",
       remediation="narrow the gateway whitelist so externally tainted "
                   "ports cannot emit toward safety-critical ECUs")
def flow_gateway_carries_taint(
        target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    result = analyze(target)
    seen: set[str] = set()
    for edge in result.graph.edges():
        if edge.kind != "gateway" or edge.src not in result.tainted:
            continue
        dst = result.graph.node(edge.dst)
        if dst.criticality < SINK_CRITICALITY:
            continue
        subject = f"{edge.src}->{edge.dst}"
        if subject in seen:
            continue
        seen.add(subject)
        yield (subject,
               f"tainted node {edge.src!r} can inject through the gateway "
               f"into criticality-{dst.criticality} {edge.dst!r} "
               f"({edge.note})")


def _credential_edges(result: FlowResult) -> Iterator[FlowEdge]:
    for edge in result.graph.edges():
        if edge.kind in ("credential", "provisioning") and edge.weakness:
            yield edge


@_rule("FLOW004", "provisioning relies on an unverifiable credential",
       layer=Layer.SOFTWARE_PLATFORM, severity=Severity.MEDIUM,
       paper_ref="§IV",
       remediation="anchor issuer and subject in the verifiable data "
                   "registry and re-issue within a valid window")
def flow_weak_credential_edge(
        target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    result = analyze(target)
    seen: set[str] = set()
    for edge in _credential_edges(result):
        subject = f"{edge.src}->{edge.dst}"
        if subject in seen:
            continue
        seen.add(subject)
        yield (subject,
               f"{edge.kind} edge {edge.src} -> {edge.dst} is not "
               f"verifiable: {edge.weakness}")
