"""Taint propagation with path witnesses and hardening cuts.

Taint starts on every untrusted source node (exposed components, public
cloud endpoints, unresolvable DIDs, unsigned V2X channels) and crosses
every non-blocking edge of the :class:`~repro.flow.graph.FlowGraph`.
The fixpoint is a multi-source BFS, so each tainted node remembers its
*shortest* offending path — the witness a human reads hop by hop, each
hop naming the boundary that is missing or void.

For every reached sink the analyzer also computes where to spend the
hardening budget: the open subgraph is exported as a derived
:class:`~repro.core.entities.SystemModel` and
:meth:`~repro.core.attackgraph.AttackGraph.minimal_hardening_cut` finds
the smallest edge set whose securing disconnects the tainted sources
from that sink.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.attackgraph import AttackGraph

from repro.flow.graph import FlowEdge, FlowGraph, build_flow_graph
from repro.lint.target import AnalysisTarget

__all__ = ["PathWitness", "FlowResult", "propagate_taint", "analyze"]


@dataclass(frozen=True)
class PathWitness:
    """One proved source→sink flow, hop by hop."""

    source: str
    sink: str
    hops: tuple[FlowEdge, ...]

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.source,) + tuple(edge.dst for edge in self.hops)

    def describe(self) -> list[str]:
        """Human-readable hop lines: ``src -> dst: missing boundary``."""
        return [f"{edge.src} -> {edge.dst}: {edge.missing_boundary}"
                for edge in self.hops]


@dataclass
class FlowResult:
    """Everything the taint analysis proved about one target."""

    target_name: str
    graph: FlowGraph
    #: node name -> the edge that first tainted it (None for sources).
    tainted: dict[str, FlowEdge | None]
    witnesses: list[PathWitness] = field(default_factory=list)
    #: sink name -> the minimal edge set to cut (may be empty when the
    #: sink is itself a source).
    cuts: dict[str, set[tuple[str, str]]] = field(default_factory=dict)

    @property
    def path_clean(self) -> bool:
        """True when no untrusted source reaches any sink."""
        return not self.witnesses

    def witness_for(self, sink: str) -> PathWitness | None:
        for witness in self.witnesses:
            if witness.sink == sink:
                return witness
        return None

    def witnesses_by_sink(self) -> dict[str, PathWitness]:
        """Sink name -> its shortest witness — the planner's seed goals.

        Every key here is an obligation on :mod:`repro.redteam`: the
        first differential gate demands a planner-reachable campaign
        for each witnessed sink.
        """
        mapping: dict[str, PathWitness] = {}
        for witness in self.witnesses:
            mapping.setdefault(witness.sink, witness)
        return mapping


def propagate_taint(graph: FlowGraph) -> dict[str, FlowEdge | None]:
    """Multi-source BFS over open edges; returns parent pointers.

    Sources map to ``None``; every other tainted node maps to the edge
    through which the taint *first* arrived (shortest hop count, ties
    broken by sorted edge order — fully deterministic).
    """
    tainted: dict[str, FlowEdge | None] = {}
    queue: deque[str] = deque()
    for node in sorted(graph.sources(), key=lambda n: n.name):
        tainted[node.name] = None
        queue.append(node.name)
    while queue:
        current = queue.popleft()
        edges = sorted(graph.out_edges(current), key=lambda e: (e.dst, e.kind))
        for edge in edges:
            if edge.blocking or edge.dst in tainted:
                continue
            tainted[edge.dst] = edge
            queue.append(edge.dst)
    return tainted


def _witness(graph: FlowGraph, tainted: dict[str, FlowEdge | None],
             sink: str) -> PathWitness | None:
    """Rebuild the shortest witness by walking parent pointers."""
    if sink not in tainted:
        return None
    hops: list[FlowEdge] = []
    current = sink
    while True:
        parent = tainted[current]
        if parent is None:
            break
        hops.append(parent)
        current = parent.src
    if not hops:
        return None  # the sink is itself a source; nothing flowed *to* it
    hops.reverse()
    return PathWitness(source=hops[0].src, sink=sink, hops=tuple(hops))


def _hardening_cut(graph: FlowGraph, tainted: dict[str, FlowEdge | None],
                   sink: str) -> set[tuple[str, str]]:
    """Min-cut between the tainted sources and ``sink`` on open edges."""
    sources = sorted(
        name for name, parent in tainted.items()
        if parent is None and name != sink)
    if not sources:
        return set()
    derived = graph.to_system_model()
    attack = AttackGraph(derived)
    return attack.minimal_hardening_cut(sink, sources=sources)


def analyze(target: AnalysisTarget) -> FlowResult:
    """Full pipeline: build the graph, taint it, witness every sink."""
    graph = build_flow_graph(target)
    tainted = propagate_taint(graph)
    result = FlowResult(target.name, graph, tainted)
    for sink in sorted(graph.sinks(), key=lambda n: n.name):
        witness = _witness(graph, tainted, sink.name)
        if witness is None:
            continue
        result.witnesses.append(witness)
        result.cuts[sink.name] = _hardening_cut(graph, tainted, sink.name)
    return result
