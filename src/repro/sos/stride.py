"""STRIDE threat enumeration over SoS interfaces (paper §VI-B).

§VI-B names the attack classes: "broad attack surface due to multiple
physical and digital entry points", spoofing and DoS against real-time
data, third-party component risks.  STRIDE-per-interface is the
standard way to make such an enumeration systematic; the rules below
map interface properties (kind, realtime, third_party, secured) to the
applicable STRIDE categories, so the FIG9 bench can print a threat
count per SoS level.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.sos.model import SosModel, SystemInterface

__all__ = ["StrideCategory", "Threat", "enumerate_threats", "threats_by_level"]


class StrideCategory(Enum):
    SPOOFING = "spoofing"
    TAMPERING = "tampering"
    REPUDIATION = "repudiation"
    INFORMATION_DISCLOSURE = "information_disclosure"
    DENIAL_OF_SERVICE = "denial_of_service"
    ELEVATION_OF_PRIVILEGE = "elevation_of_privilege"


@dataclass(frozen=True)
class Threat:
    """One enumerated threat at one interface."""

    interface: SystemInterface
    category: StrideCategory
    rationale: str


def _interface_threats(interface: SystemInterface) -> list[Threat]:
    threats: list[Threat] = []

    def add(category: StrideCategory, rationale: str) -> None:
        threats.append(Threat(interface, category, rationale))

    if not interface.secured:
        add(StrideCategory.SPOOFING,
            "unauthenticated interface: either end can be impersonated")
        add(StrideCategory.TAMPERING,
            "no integrity protection on transit data")
        add(StrideCategory.INFORMATION_DISCLOSURE,
            "no confidentiality on transit data")
    if interface.realtime:
        add(StrideCategory.DENIAL_OF_SERVICE,
            "real-time feed: delay/flood degrades decisions (§VI-B)")
        if not interface.secured:
            add(StrideCategory.SPOOFING,
                "real-time data spoofing affects decision-making (§VI-B)")
    if interface.third_party:
        add(StrideCategory.ELEVATION_OF_PRIVILEGE,
            "third-party integration: inherited vulnerabilities (§VI-B)")
    if interface.kind == "telematics":
        add(StrideCategory.INFORMATION_DISCLOSURE,
            "telematics gateways carry fleet/geolocation data (§V)")
    if interface.kind == "api" and not interface.secured:
        add(StrideCategory.REPUDIATION,
            "cross-stakeholder API without mutual authentication: "
            "actions cannot be attributed (§VI ambiguous responsibility)")
    return threats


def enumerate_threats(model: SosModel) -> list[Threat]:
    """All STRIDE threats across the model's interfaces."""
    threats: list[Threat] = []
    for interface in model.interfaces:
        threats.extend(_interface_threats(interface))
    return threats


def threats_by_level(model: SosModel) -> dict[int, int]:
    """Threat counts aggregated by the *deeper* endpoint's level.

    An interface threat is charged to the more deeply nested endpoint,
    which is where the compromise lands first.
    """
    counts = {level: 0 for level in range(4)}
    for threat in enumerate_threats(model):
        src = model.system(threat.interface.source)
        dst = model.system(threat.interface.target)
        counts[max(src.level, dst.level)] += 1
    return counts
