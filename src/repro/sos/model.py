"""System-of-systems model with hierarchy levels (paper §VI-A, Fig. 9).

Fig. 9 derives the AD MaaS architecture "schematically across multiple
levels": level 0 is the whole platform, level 1 its major systems
(autonomous vehicles, backend, hub infrastructure, MaaS platform),
level 2 the vehicle's internal subsystems (vehicle OS, self-driving
stack, passenger OS), level 3 the function groups inside those (act /
sense / plan; safety-critical vs comfort functions).

:class:`SosModel` is a tree of :class:`SosSystem` nodes plus a set of
cross-tree :class:`SystemInterface` edges (the "interconnected,
interdependent" structure §VI-B worries about), with queries for entry
points, per-level aggregation, and export to the core
:class:`~repro.core.entities.SystemModel` for reachability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer
from repro.core.threats import AccessLevel

__all__ = ["SosSystem", "SystemInterface", "SosModel"]


@dataclass
class SosSystem:
    """One node in the SoS hierarchy."""

    name: str
    level: int                       # 0 (whole platform) .. 3 (function group)
    stakeholder: str = ""            # who operates / is responsible for it
    safety_critical: bool = False
    exposed: bool = False            # externally reachable (telematics, app, ...)
    children: list["SosSystem"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.level <= 3:
            raise ValueError("SoS levels range 0..3 (Fig. 9)")

    def add_child(self, child: "SosSystem") -> "SosSystem":
        if child.level != self.level + 1:
            raise ValueError(
                f"child {child.name!r} at level {child.level} under level {self.level}")
        self.children.append(child)
        return child

    def walk(self) -> Iterator["SosSystem"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class SystemInterface:
    """A communication dependency between two systems (by name)."""

    source: str
    target: str
    kind: str                        # "telematics", "api", "sensor", "local-bus"
    realtime: bool = False           # §VI-B: real-time data is DoS/spoof-critical
    third_party: bool = False        # §VI-B: third-party integration risk
    secured: bool = False


class SosModel:
    """The full SoS: a hierarchy root plus cross-cutting interfaces."""

    def __init__(self, root: SosSystem) -> None:
        if root.level != 0:
            raise ValueError("the root is the level-0 platform")
        self.root = root
        self.interfaces: list[SystemInterface] = []
        self._by_name = {system.name: system for system in root.walk()}
        if len(self._by_name) != sum(1 for _ in root.walk()):
            raise ValueError("duplicate system names in the hierarchy")

    def system(self, name: str) -> SosSystem:
        return self._by_name[name]

    def systems(self, level: int | None = None) -> list[SosSystem]:
        items = list(self.root.walk())
        if level is not None:
            items = [s for s in items if s.level == level]
        return items

    def connect(self, interface: SystemInterface) -> SystemInterface:
        for end in (interface.source, interface.target):
            if end not in self._by_name:
                raise KeyError(f"unknown system {end!r}")
        self.interfaces.append(interface)
        return interface

    def entry_points(self) -> list[SosSystem]:
        return [s for s in self.root.walk() if s.exposed]

    def interfaces_of(self, name: str) -> list[SystemInterface]:
        return [i for i in self.interfaces if name in (i.source, i.target)]

    def stakeholders(self) -> set[str]:
        return {s.stakeholder for s in self.root.walk() if s.stakeholder}

    def to_system_model(self) -> SystemModel:
        """Flatten to the core model (leaf + intermediate nodes as components).

        Containment becomes *downward* adjacency only: a breached system
        exposes its subsystems, but hopping to a sibling system requires
        an actual interface — which is how §VI-B's cascades cross the
        architecture (via telematics/API/bus links, not via the
        abstraction hierarchy).
        """
        model = SystemModel(f"sos:{self.root.name}")
        for system in self.root.walk():
            model.add_component(Component(
                system.name, Layer.SYSTEM_OF_SYSTEMS,
                criticality=5 if system.safety_critical else 2,
                exposed=system.exposed,
            ))
        for system in self.root.walk():
            for child in system.children:
                model.connect(Interface(system.name, child.name, "containment",
                                        AccessLevel.LOCAL_BUS))
        for interface in self.interfaces:
            model.connect(Interface(interface.source, interface.target,
                                    interface.kind, AccessLevel.REMOTE,
                                    authenticated=interface.secured))
            model.connect(Interface(interface.target, interface.source,
                                    interface.kind, AccessLevel.REMOTE,
                                    authenticated=interface.secured))
        return model
