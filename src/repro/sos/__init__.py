"""System-of-systems layer (paper §VI, Fig. 9): AD MaaS threat analysis.

* :mod:`repro.sos.model` — SoS hierarchy (levels 0–3) + interfaces.
* :mod:`repro.sos.maas` — the Fig. 9 reference architecture builder.
* :mod:`repro.sos.stride` — STRIDE-per-interface threat enumeration.
* :mod:`repro.sos.cascade` — Monte-Carlo breach-cascade simulation.
* :mod:`repro.sos.responsibility` — stakeholder obligation mapping and
  the gaps the paper attributes to "ambiguous roles".
"""

from repro.sos.cascade import CascadeResult, CascadeSimulator
from repro.sos.compliance import (
    DEFAULT_REQUIREMENTS,
    Audit,
    ComplianceGap,
    ComplianceRequirement,
    cal_for,
)
from repro.sos.lifecycle import (
    ExposureWindow,
    LifecycleAnalyzer,
    LifecyclePlan,
    Phase,
)
from repro.sos.maas import build_maas_sos
from repro.sos.model import SosModel, SosSystem, SystemInterface
from repro.sos.responsibility import (
    OBLIGATIONS,
    ResponsibilityGap,
    ResponsibilityMatrix,
)
from repro.sos.stride import StrideCategory, Threat, enumerate_threats, threats_by_level

__all__ = [
    "SosSystem",
    "SystemInterface",
    "SosModel",
    "build_maas_sos",
    "StrideCategory",
    "Threat",
    "enumerate_threats",
    "threats_by_level",
    "CascadeSimulator",
    "Audit",
    "ComplianceGap",
    "ComplianceRequirement",
    "DEFAULT_REQUIREMENTS",
    "cal_for",
    "LifecyclePlan",
    "LifecycleAnalyzer",
    "ExposureWindow",
    "Phase",
    "CascadeResult",
    "ResponsibilityMatrix",
    "ResponsibilityGap",
    "OBLIGATIONS",
]
