"""The Fig. 9 AD MaaS reference architecture, fully wired.

Builds the exact structure the figure shows:

* level 0 — the SAE-L4 MaaS platform;
* level 1 — autonomous vehicle, cloud & backend, hub infrastructure,
  MaaS platform (the ride-hailing service);
* level 2 — inside the vehicle: vehicle OS, self-driving stack,
  passenger OS;
* level 3 — vehicle OS: safety-critical functions (steer/brake/light)
  and comfort functions (climate/seats); self-driving stack: sense /
  plan / act; passenger OS: passenger monitoring and platform gateway.

Cross-cutting interfaces mirror §VI-B's concerns: telematics gateways to
the backend, the passenger OS as the MaaS gateway, real-time data feeds,
and third-party integrations — each a potential entry point.
"""

from __future__ import annotations

from repro.sos.model import SosModel, SosSystem, SystemInterface

__all__ = ["build_maas_sos"]


def build_maas_sos(*, secured_interfaces: bool = False) -> SosModel:
    """Construct the Fig. 9 system of systems.

    ``secured_interfaces`` marks every cross-system interface as
    authenticated — the "unified security framework" counterfactual used
    by the FIG9 bench.
    """
    platform = SosSystem("maas-sos", 0, stakeholder="consortium")

    av = platform.add_child(SosSystem(
        "autonomous-vehicle", 1, stakeholder="vehicle-oem", safety_critical=True))
    backend = platform.add_child(SosSystem(
        "cloud-backend", 1, stakeholder="backend-operator", exposed=True))
    hub = platform.add_child(SosSystem(
        "hub-infrastructure", 1, stakeholder="hub-operator"))
    maas = platform.add_child(SosSystem(
        "maas-platform", 1, stakeholder="maas-operator", exposed=True))

    vehicle_os = av.add_child(SosSystem(
        "vehicle-os", 2, stakeholder="vehicle-oem", safety_critical=True))
    sds = av.add_child(SosSystem(
        "self-driving-stack", 2, stakeholder="ad-software-vendor", safety_critical=True))
    passenger_os = av.add_child(SosSystem(
        "passenger-os", 2, stakeholder="maas-operator", exposed=True))

    vehicle_os.add_child(SosSystem(
        "safety-functions", 3, stakeholder="vehicle-oem", safety_critical=True))
    vehicle_os.add_child(SosSystem(
        "comfort-functions", 3, stakeholder="vehicle-oem"))
    sds.add_child(SosSystem(
        "sense", 3, stakeholder="ad-software-vendor", safety_critical=True, exposed=True))
    sds.add_child(SosSystem(
        "plan", 3, stakeholder="ad-software-vendor", safety_critical=True))
    sds.add_child(SosSystem(
        "act", 3, stakeholder="ad-software-vendor", safety_critical=True))
    passenger_os.add_child(SosSystem(
        "passenger-monitoring", 3, stakeholder="maas-operator"))
    passenger_os.add_child(SosSystem(
        "platform-gateway", 3, stakeholder="maas-operator", exposed=True))

    model = SosModel(platform)
    s = secured_interfaces
    model.connect(SystemInterface("autonomous-vehicle", "cloud-backend",
                                  "telematics", realtime=True, secured=s))
    model.connect(SystemInterface("passenger-os", "maas-platform",
                                  "api", secured=s))
    model.connect(SystemInterface("maas-platform", "cloud-backend",
                                  "api", third_party=True, secured=s))
    model.connect(SystemInterface("hub-infrastructure", "cloud-backend",
                                  "api", secured=s))
    model.connect(SystemInterface("autonomous-vehicle", "hub-infrastructure",
                                  "local-bus", secured=s))
    model.connect(SystemInterface("self-driving-stack", "cloud-backend",
                                  "telematics", realtime=True, secured=s))
    model.connect(SystemInterface("sense", "plan", "sensor",
                                  realtime=True, secured=s))
    model.connect(SystemInterface("plan", "act", "local-bus",
                                  realtime=True, secured=s))
    model.connect(SystemInterface("passenger-os", "vehicle-os",
                                  "local-bus", third_party=True, secured=s))
    model.connect(SystemInterface("vehicle-os", "self-driving-stack",
                                  "local-bus", secured=s))
    return model
