"""Lifecycle desynchronization analysis (paper §VI-B).

"Many autonomous vehicle MaaS platforms retrofit legacy vehicles — such
as in partnerships between Waymo and Chrysler — rather than developing
integrated systems from scratch. As a result, development milestones for
a cohesive solution become fragmented, leading to inconsistent
validation efforts."  And §VI-A: cybersecurity needs "an expanded
lifecycle perspective that extends from the development phase through
the operational phase to the end of service."

The model: every subsystem has its own :class:`LifecyclePlan` — phase
boundaries on a shared timeline (development → integration → validation
→ operation → end-of-service).  The analyzer finds the **exposure
windows** the paper warns about:

* a subsystem *operating* while a subsystem it depends on is still in
  development/integration (validated against a moving target);
* operation continuing past a supplier's end-of-service (unpatched
  components in the field);
* the overall *co-validation overlap*: the fraction of the platform's
  operating time during which every dependency was simultaneously in
  validation-or-later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

__all__ = ["Phase", "LifecyclePlan", "ExposureWindow", "LifecycleAnalyzer"]


class Phase(IntEnum):
    """Lifecycle phases, ordered."""

    DEVELOPMENT = 0
    INTEGRATION = 1
    VALIDATION = 2
    OPERATION = 3
    END_OF_SERVICE = 4


@dataclass(frozen=True)
class LifecyclePlan:
    """One subsystem's phase boundaries (times in arbitrary units,
    e.g. months on the program timeline).

    ``boundaries[i]`` is the start of phase ``i``; phases are
    contiguous; ``boundaries[Phase.END_OF_SERVICE]`` is when support
    stops.
    """

    system: str
    boundaries: tuple[float, float, float, float, float]

    def __post_init__(self) -> None:
        if list(self.boundaries) != sorted(self.boundaries):
            raise ValueError(f"{self.system}: phase boundaries must be ordered")

    def phase_at(self, t: float) -> Phase:
        current = Phase.DEVELOPMENT
        for phase in Phase:
            if t >= self.boundaries[phase]:
                current = phase
        return current

    def interval(self, phase: Phase) -> tuple[float, float]:
        start = self.boundaries[phase]
        end = (self.boundaries[phase + 1] if phase < Phase.END_OF_SERVICE
               else float("inf"))
        return start, end


@dataclass(frozen=True)
class ExposureWindow:
    """A time interval during which a dependency is in an unsafe phase."""

    operating_system: str
    dependency: str
    start: float
    end: float
    reason: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class LifecycleAnalyzer:
    """Exposure-window analysis over subsystem plans + dependencies."""

    plans: dict[str, LifecyclePlan] = field(default_factory=dict)
    dependencies: list[tuple[str, str]] = field(default_factory=list)

    def add_plan(self, plan: LifecyclePlan) -> None:
        if plan.system in self.plans:
            raise ValueError(f"duplicate plan for {plan.system!r}")
        self.plans[plan.system] = plan

    def depends_on(self, system: str, dependency: str) -> None:
        for name in (system, dependency):
            if name not in self.plans:
                raise KeyError(f"no lifecycle plan for {name!r}")
        self.dependencies.append((system, dependency))

    def exposure_windows(self) -> list[ExposureWindow]:
        """All windows where an operating system's dependency is unsafe."""
        windows: list[ExposureWindow] = []
        for system, dependency in self.dependencies:
            op_start, op_end = self.plans[system].interval(Phase.OPERATION)
            dep = self.plans[dependency]
            # Unsafe early: dependency not yet in validation.
            validated_from = dep.boundaries[Phase.VALIDATION]
            if validated_from > op_start:
                windows.append(ExposureWindow(
                    system, dependency, op_start,
                    min(validated_from, op_end),
                    "dependency still in development/integration"))
            # Unsafe late: dependency past end of service.
            eos = dep.boundaries[Phase.END_OF_SERVICE]
            if eos < op_end:
                windows.append(ExposureWindow(
                    system, dependency, max(eos, op_start), op_end,
                    "dependency past end-of-service (unpatched)"))
        return [w for w in windows if w.duration > 0]

    def co_validation_overlap(self, system: str) -> float:
        """Fraction of ``system``'s operating time with all dependencies
        in validation-or-later and still in service."""
        plan = self.plans[system]
        op_start, op_end = plan.interval(Phase.OPERATION)
        if op_end == float("inf"):
            op_end = max(p.boundaries[Phase.END_OF_SERVICE]
                         for p in self.plans.values())
        if op_end <= op_start:
            return 1.0
        safe_start = op_start
        safe_end = op_end
        for dep_system, dependency in self.dependencies:
            if dep_system != system:
                continue
            dep = self.plans[dependency]
            safe_start = max(safe_start, dep.boundaries[Phase.VALIDATION])
            safe_end = min(safe_end, dep.boundaries[Phase.END_OF_SERVICE])
        overlap = max(0.0, min(safe_end, op_end) - max(safe_start, op_start))
        return overlap / (op_end - op_start)

    def total_exposure(self) -> float:
        """Summed duration of all exposure windows (program time units)."""
        return sum(w.duration for w in self.exposure_windows())
