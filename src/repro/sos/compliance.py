"""Regulatory compliance assessment (paper §VI-B).

"Increasing regulatory demands further complicate the landscape,
revealing additional cybersecurity gaps [45]."

Models a UN R155/ISO 21434-shaped compliance check over an SoS model:

* every system gets a **Cybersecurity Assurance Level** (CAL 1–4)
  derived from its safety criticality and exposure;
* a catalog of :class:`ComplianceRequirement` items (risk assessment,
  monitoring, incident response, update capability, supplier management)
  applies from a minimum CAL upward;
* an :class:`Audit` compares declared evidence against the applicable
  requirements and reports the gap list — the "fragmented validation"
  §VI complains about shows up as systems whose *operator* supplied
  evidence but whose *integrated* context demands more.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sos.model import SosModel, SosSystem

__all__ = ["cal_for", "ComplianceRequirement", "DEFAULT_REQUIREMENTS",
           "ComplianceGap", "Audit"]


def cal_for(system: SosSystem, model: SosModel) -> int:
    """Cybersecurity Assurance Level 1..4 for a system.

    Heuristic in the spirit of ISO 21434 annex CAL derivation: safety
    criticality raises impact; external exposure or a remote interface
    raises attack feasibility.
    """
    impact = 2 if system.safety_critical else 1
    remote = system.exposed or any(
        interface.kind in ("telematics", "api")
        for interface in model.interfaces_of(system.name)
    )
    feasibility = 2 if remote else 1
    return impact + feasibility  # 2..4, floor at CAL 2 is fine: clamp below


@dataclass(frozen=True)
class ComplianceRequirement:
    """One regulatory requirement applying from ``min_cal`` upward."""

    req_id: str
    title: str
    min_cal: int

    def applies_to(self, cal: int) -> bool:
        return cal >= self.min_cal


DEFAULT_REQUIREMENTS: tuple[ComplianceRequirement, ...] = (
    ComplianceRequirement("RQ-01", "documented risk assessment (TARA)", 2),
    ComplianceRequirement("RQ-02", "secure development process evidence", 2),
    ComplianceRequirement("RQ-03", "security monitoring / IDS deployment", 3),
    ComplianceRequirement("RQ-04", "incident response plan & CSIRT contact", 3),
    ComplianceRequirement("RQ-05", "secure update capability (OTA)", 3),
    ComplianceRequirement("RQ-06", "supplier cybersecurity management", 4),
    ComplianceRequirement("RQ-07", "post-production vulnerability handling", 4),
)


@dataclass(frozen=True)
class ComplianceGap:
    """A requirement applicable to a system but without evidence."""

    system: str
    cal: int
    requirement: ComplianceRequirement


@dataclass
class Audit:
    """Evidence ledger + gap computation over an SoS model."""

    model: SosModel
    requirements: tuple[ComplianceRequirement, ...] = DEFAULT_REQUIREMENTS
    _evidence: dict[tuple[str, str], str] = field(default_factory=dict)

    def declare_evidence(self, system: str, req_id: str, evidence: str) -> None:
        if system not in {s.name for s in self.model.root.walk()}:
            raise KeyError(f"unknown system {system!r}")
        if req_id not in {r.req_id for r in self.requirements}:
            raise ValueError(f"unknown requirement {req_id!r}")
        self._evidence[(system, req_id)] = evidence

    def cal_assignment(self) -> dict[str, int]:
        return {
            system.name: cal_for(system, self.model)
            for system in self.model.root.walk()
        }

    def applicable(self, system: SosSystem) -> list[ComplianceRequirement]:
        cal = cal_for(system, self.model)
        return [r for r in self.requirements if r.applies_to(cal)]

    def gaps(self) -> list[ComplianceGap]:
        """All (system, requirement) pairs lacking evidence."""
        result = []
        for system in self.model.root.walk():
            cal = cal_for(system, self.model)
            for requirement in self.applicable(system):
                if (system.name, requirement.req_id) not in self._evidence:
                    result.append(ComplianceGap(system.name, cal, requirement))
        return result

    def compliance_fraction(self) -> float:
        total = sum(len(self.applicable(s)) for s in self.model.root.walk())
        if not total:
            return 1.0
        return 1.0 - len(self.gaps()) / total
