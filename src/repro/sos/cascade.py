"""Risk-cascade propagation (paper §VI-B).

"A security breach in one subsystem can trigger a cascade of risks,
potentially compromising the entire system of systems."

:class:`CascadeSimulator` makes the claim quantitative: starting from a
compromised system, the breach propagates along interfaces (and
containment edges) with per-hop probability — attenuated when the
interface is secured — and the result is the **blast radius** (expected
number of compromised systems) and whether any safety-critical system
falls.  The FIG9 bench sweeps the starting point and the
secured-interface counterfactual.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import python_rng
from repro.sos.model import SosModel

__all__ = ["CascadeResult", "CascadeSimulator"]


@dataclass(frozen=True)
class CascadeResult:
    """Aggregated outcome over Monte-Carlo cascades from one origin."""

    origin: str
    trials: int
    mean_blast_radius: float
    max_blast_radius: int
    p_safety_critical_hit: float
    p_full_compromise: float

    def critical_hit_interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Wilson confidence interval for the safety-critical hit rate."""
        from repro.core.stats import wilson_interval

        hits = round(self.p_safety_critical_hit * self.trials)
        return wilson_interval(hits, self.trials, confidence=confidence)


class CascadeSimulator:
    """Monte-Carlo breach propagation over an SoS model.

    Args:
        model: the system-of-systems.
        p_unsecured: per-hop compromise probability over an unsecured
            interface or containment edge.
        p_secured: per-hop probability when the interface is
            authenticated (exploiting a secured channel is much harder,
            not impossible — zero-days exist).
    """

    def __init__(self, model: SosModel, *, p_unsecured: float = 0.6,
                 p_secured: float = 0.05, seed_label: str = "cascade") -> None:
        if not 0 <= p_secured <= p_unsecured <= 1:
            raise ValueError("need 0 <= p_secured <= p_unsecured <= 1")
        self.model = model
        self.p_unsecured = p_unsecured
        self.p_secured = p_secured
        self._rng = python_rng(seed_label)
        self._edges = self._build_edges()

    def _build_edges(self) -> dict[str, list[tuple[str, float]]]:
        edges: dict[str, list[tuple[str, float]]] = {}

        def add(a: str, b: str, p: float) -> None:
            edges.setdefault(a, []).append((b, p))
            edges.setdefault(b, []).append((a, p))

        for system in self.model.root.walk():
            for child in system.children:
                add(system.name, child.name, self.p_unsecured)
        for interface in self.model.interfaces:
            p = self.p_secured if interface.secured else self.p_unsecured
            add(interface.source, interface.target, p)
        return edges

    def _single_cascade(self, origin: str) -> set[str]:
        compromised = {origin}
        frontier = [origin]
        while frontier:
            current = frontier.pop()
            for neighbour, p in self._edges.get(current, []):
                if neighbour not in compromised and self._rng.random() < p:
                    compromised.add(neighbour)
                    frontier.append(neighbour)
        return compromised

    def run(self, origin: str, *, trials: int = 500) -> CascadeResult:
        """Monte-Carlo cascades from ``origin``."""
        if origin not in {s.name for s in self.model.root.walk()}:
            raise KeyError(f"unknown system {origin!r}")
        if trials < 1:
            raise ValueError("need at least one trial")
        total_systems = len(self.model.systems())
        critical = {s.name for s in self.model.root.walk() if s.safety_critical}
        radii: list[int] = []
        critical_hits = 0
        full = 0
        for _ in range(trials):
            compromised = self._single_cascade(origin)
            radii.append(len(compromised))
            if compromised & critical:
                critical_hits += 1
            if len(compromised) == total_systems:
                full += 1
        return CascadeResult(
            origin=origin,
            trials=trials,
            mean_blast_radius=sum(radii) / trials,
            max_blast_radius=max(radii),
            p_safety_critical_hit=critical_hits / trials,
            p_full_compromise=full / trials,
        )

    def sweep_origins(self, *, trials: int = 200) -> list[CascadeResult]:
        """Cascade from every entry point (the attacker's real choices)."""
        return [self.run(ep.name, trials=trials)
                for ep in self.model.entry_points()]
