"""Stakeholder responsibility analysis (paper §VI).

"AD MaaS vehicles operate under a distributed, shared hierarchy of
responsibility, lacking clear roles ... ambiguous roles and
responsibilities within large-scale value networks hinder comprehensive
risk assessments."

:class:`ResponsibilityMatrix` maps security *obligations* (threat
analysis, incident response, patching, key management, data protection)
to stakeholders per system, then reports the gaps the paper warns
about: systems with **no** owner for an obligation, and cross-
stakeholder interfaces where the two ends answer to different parties
(the fragmented-integration problem).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sos.model import SosModel

__all__ = ["OBLIGATIONS", "ResponsibilityGap", "ResponsibilityMatrix"]

#: The security obligations every system needs someone to own.
OBLIGATIONS = (
    "threat-analysis",
    "incident-response",
    "patch-management",
    "key-management",
    "data-protection",
)


@dataclass(frozen=True)
class ResponsibilityGap:
    """One detected gap."""

    system: str
    obligation: str
    detail: str


@dataclass
class ResponsibilityMatrix:
    """Obligation → stakeholder assignments over an SoS model."""

    model: SosModel
    _assignments: dict[tuple[str, str], str] = field(default_factory=dict)

    def assign(self, system: str, obligation: str, stakeholder: str) -> None:
        if obligation not in OBLIGATIONS:
            raise ValueError(f"unknown obligation {obligation!r}")
        if system not in {s.name for s in self.model.root.walk()}:
            raise KeyError(f"unknown system {system!r}")
        self._assignments[(system, obligation)] = stakeholder

    def assign_by_operator(self) -> None:
        """Default split: each system's operator owns everything for it —
        the naive arrangement that leaves integration seams unowned."""
        for system in self.model.root.walk():
            if system.stakeholder:
                for obligation in OBLIGATIONS:
                    self._assignments[(system.name, obligation)] = system.stakeholder

    def owner(self, system: str, obligation: str) -> str | None:
        return self._assignments.get((system, obligation))

    def coverage_gaps(self) -> list[ResponsibilityGap]:
        """Systems with an unowned obligation."""
        gaps = []
        for system in self.model.root.walk():
            for obligation in OBLIGATIONS:
                if (system.name, obligation) not in self._assignments:
                    gaps.append(ResponsibilityGap(
                        system.name, obligation, "no stakeholder assigned"))
        return gaps

    def seam_gaps(self) -> list[ResponsibilityGap]:
        """Cross-stakeholder interfaces with split incident-response.

        When the two ends of an interface have *different*
        incident-response owners, a breach crossing it has no single
        responsible party — the paper's traceability complaint.
        """
        gaps = []
        for interface in self.model.interfaces:
            owner_src = self.owner(interface.source, "incident-response")
            owner_dst = self.owner(interface.target, "incident-response")
            if owner_src and owner_dst and owner_src != owner_dst:
                gaps.append(ResponsibilityGap(
                    f"{interface.source}<->{interface.target}",
                    "incident-response",
                    f"split between {owner_src!r} and {owner_dst!r}",
                ))
        return gaps

    def coverage_fraction(self) -> float:
        """Fraction of (system, obligation) pairs with an owner."""
        total = len(list(self.model.root.walk())) * len(OBLIGATIONS)
        return len(self._assignments) / total if total else 1.0
