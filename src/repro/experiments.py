"""Experiment registry: map experiment ids to their bench targets.

The reproduction's per-figure experiments live as pytest-benchmark
files; this registry gives them stable ids (matching DESIGN.md's
experiment index) so the ``python -m repro`` CLI and downstream tooling
can enumerate and run them without knowing the file layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["Experiment", "EXPERIMENTS", "benchmarks_dir"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment."""

    exp_id: str
    paper_artifact: str
    description: str
    bench_file: str


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment("FIG1", "Fig. 1", "layered architecture: threat/defense inventory",
               "bench_fig1_layers.py"),
    Experiment("FIG2", "Fig. 2", "UWB HRP/LRP secure ranging + PKES relay + 5G V-Range",
               "bench_fig2_uwb.py"),
    Experiment("FIG3", "Fig. 3", "zonal IVN latency matrix + attack surface",
               "bench_fig3_ivn.py"),
    Experiment("TAB1", "Table I", "security protocol per-frame overhead table",
               "bench_tab1_protocols.py"),
    Experiment("FIG4", "Fig. 4", "scenario S1: SECOC + MACsec",
               "bench_fig4_s1.py"),
    Experiment("FIG5", "Fig. 5", "scenario S2: MACsec end-to-end vs point-to-point",
               "bench_fig5_s2.py"),
    Experiment("FIG6", "Fig. 6", "scenario S3: CANAL + end-to-end MACsec",
               "bench_fig6_s3.py"),
    Experiment("FIG7", "Fig. 7", "SDV trust: SSI reconfiguration + PKI-vs-SSI charging",
               "bench_fig7_sdv.py"),
    Experiment("FIG8", "Fig. 8", "CARIAD kill chain + mitigations + privacy damage",
               "bench_fig8_killchain.py"),
    Experiment("FIG9", "Fig. 9", "MaaS SoS: STRIDE, cascades, responsibility",
               "bench_fig9_sos.py"),
    Experiment("EXP-C1", "§VII-A", "intersection competition and regulation",
               "bench_collab_competition.py"),
    Experiment("EXP-C2", "§VII-B", "internal-attacker detection vs redundancy",
               "bench_collab_detection.py"),
    Experiment("EXP-R1", "§VIII", "layered-defense ablation + response escalation",
               "bench_remarks_defense.py"),
    Experiment("ABL-1", "§II-A", "HRP receiver threshold ablation",
               "bench_abl_hrp_threshold.py"),
    Experiment("ABL-2", "§III-A", "SECOC MAC truncation ablation",
               "bench_abl_mac_trunc.py"),
    Experiment("ABL-3", "§V-C", "attack-surface minimization ablation",
               "bench_abl_surface.py"),
    Experiment("EXT-1", "§VIII", "bus-flood DoS detect→respond loop",
               "bench_ext_dos_response.py"),
    Experiment("EXT-2", "ref [7]", "Message Time-of-Arrival Codes",
               "bench_ext_mtac.py"),
    Experiment("EXT-3", "refs [54],[34]", "threshold access control + offline tokens",
               "bench_ext_access_tokens.py"),
    Experiment("EXT-4", "ref [45]", "regulatory compliance audit",
               "bench_ext_compliance.py"),
    Experiment("EXT-5", "ref [53]", "PTP delay attack + PTPsec detection",
               "bench_ext_timesync.py"),
    Experiment("EXT-6", "§II-B", "collision-avoidance spoofing vs fusion policy",
               "bench_ext_collision.py"),
    Experiment("EXT-7", "ref [49]", "camera image-pipeline coverage",
               "bench_ext_imaging.py"),
    Experiment("EXT-8", "§V-C", "attack-graph reasoning + gateway containment",
               "bench_ext_attackgraph.py"),
    Experiment("BENCH-OBS", "§VIII", "observability-layer overhead on the hot paths",
               "bench_obs_overhead.py"),
    Experiment("BENCH-RUN", "§VIII", "sweep-runner parallel speedup + warm-cache cost",
               "bench_runner.py"),
    Experiment("BENCH-FLOW", "§V-C", "whole-system taint analysis cost per scenario",
               "bench_flow.py"),
    Experiment("BENCH-FAULTS", "§VIII", "fault-injector overhead + chaos campaign cost",
               "bench_faults.py"),
    Experiment("BENCH-REDTEAM", "§VIII", "attack-campaign planning cost + output stability",
               "bench_redteam.py"),
    Experiment("BENCH-SENTINEL", "§VIII", "streaming detection cost + alarm latency gates",
               "bench_sentinel.py"),
    Experiment("BENCH-KERNELS", "§VIII", "batched hot-path kernels vs scalar references",
               "bench_kernels.py"),
    Experiment("BENCH-AUDIT", "§VIII", "self-audit engine cost + output stability",
               "bench_audit.py"),
    Experiment("BENCH-CAMPAIGN", "§VIII", "campaign journal overhead + resume skip ratio",
               "bench_campaign.py"),
)


def benchmarks_dir() -> Path:
    """The repository's benchmarks directory (resolved from this file)."""
    return Path(__file__).resolve().parents[2] / "benchmarks"


def find(exp_id: str) -> Experiment:
    """Look up an experiment by id (case-insensitive)."""
    wanted = exp_id.upper()
    for experiment in EXPERIMENTS:
        if experiment.exp_id == wanted:
            return experiment
    raise KeyError(f"unknown experiment {exp_id!r}; see `python -m repro list`")
