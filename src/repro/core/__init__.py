"""Core framework: the paper's layered architecture, threat taxonomy,
system modeling, metrics, cross-layer analysis, and intrusion response.

This package is the "primary contribution" layer of the reproduction: the
paper's conceptual framework (Fig. 1 + §VIII) made executable. The
per-layer simulators (:mod:`repro.phy`, :mod:`repro.ivn`, :mod:`repro.ssi`,
:mod:`repro.datalayer`, :mod:`repro.sos`, :mod:`repro.collab`) plug their
attacks and defenses into the catalog defined here.
"""

from repro.core.analysis import LayeredSecurityAnalyzer, SecurityAssessment, ablate_layers
from repro.core.attackgraph import AttackGraph, AttackPath
from repro.core.domains import (
    DOMAIN_PROFILES,
    DomainComponent,
    DomainProfile,
    build_domain_model,
)
from repro.core.entities import Component, Interface, SystemModel
from repro.core.events import Event, Simulator
from repro.core.layers import LAYER_INFO, Layer, LayerInfo, adjacent_layers
from repro.core.metrics import (
    AttackSurfaceReport,
    attack_surface,
    criticality_weighted_exposure,
    defense_coverage,
    layer_synergy,
)
from repro.core.response import (
    ResponseAction,
    ResponseDecision,
    ResponseEngine,
    SecurityAlert,
    Severity,
)
from repro.core.rng import derive_seed, numpy_rng, python_rng
from repro.core.stats import proportions_differ, wilson_interval
from repro.core.threats import (
    AccessLevel,
    Attack,
    Defense,
    SecurityProperty,
    ThreatCatalog,
    default_catalog,
)

__all__ = [
    "Layer",
    "LayerInfo",
    "LAYER_INFO",
    "adjacent_layers",
    "SecurityProperty",
    "AccessLevel",
    "Attack",
    "Defense",
    "ThreatCatalog",
    "default_catalog",
    "Component",
    "Interface",
    "SystemModel",
    "Event",
    "Simulator",
    "AttackSurfaceReport",
    "attack_surface",
    "defense_coverage",
    "layer_synergy",
    "criticality_weighted_exposure",
    "LayeredSecurityAnalyzer",
    "SecurityAssessment",
    "ablate_layers",
    "ResponseEngine",
    "ResponseAction",
    "ResponseDecision",
    "SecurityAlert",
    "Severity",
    "derive_seed",
    "numpy_rng",
    "python_rng",
    "DomainProfile",
    "DomainComponent",
    "DOMAIN_PROFILES",
    "build_domain_model",
    "AttackGraph",
    "AttackPath",
    "wilson_interval",
    "proportions_differ",
]
