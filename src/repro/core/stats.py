"""Statistical helpers for Monte-Carlo experiment results.

The cascade simulator, the ghost-peak trials, and the detection-rate
sweeps all report empirical proportions from finite trials; this module
provides the interval estimates that make those numbers honest:

* :func:`wilson_interval` — the Wilson score interval for a binomial
  proportion (well-behaved at 0 %/100 %, unlike the normal
  approximation);
* :func:`proportions_differ` — a two-proportion z-test for
  "defense X beats defense Y" claims at a chosen significance.
"""

from __future__ import annotations

import math

from scipy.stats import norm

__all__ = ["wilson_interval", "proportions_differ"]


def wilson_interval(successes: int, trials: int, *,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials < 1 or not 0 <= successes <= trials:
        raise ValueError("need 0 <= successes <= trials, trials >= 1")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = float(norm.ppf(0.5 + confidence / 2.0))
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
    # The exact Wilson bound touches 0/1 at the degenerate counts;
    # clamp explicitly so round-off never leaves a sliver.
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    return low, high


def proportions_differ(successes_a: int, trials_a: int,
                       successes_b: int, trials_b: int, *,
                       alpha: float = 0.05) -> bool:
    """Two-proportion z-test: are the underlying rates different?

    Returns True when the null hypothesis (equal proportions) is
    rejected at significance ``alpha`` (two-sided).
    """
    for successes, trials in ((successes_a, trials_a), (successes_b, trials_b)):
        if trials < 1 or not 0 <= successes <= trials:
            raise ValueError("invalid counts")
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    variance = pooled * (1 - pooled) * (1 / trials_a + 1 / trials_b)
    if variance == 0.0:
        return p_a != p_b
    z = (p_a - p_b) / math.sqrt(variance)
    p_value = 2.0 * float(norm.sf(abs(z)))
    return p_value < alpha
