"""Security metrics over system models and threat catalogs.

Quantifies the structural claims the paper makes qualitatively:
attack-surface size (§V-C, §VI-B), defense coverage and cross-layer
synergy (§VIII), and exposure of safety-critical components.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entities import SystemModel
from repro.core.layers import Layer
from repro.core.threats import ThreatCatalog

__all__ = [
    "AttackSurfaceReport",
    "attack_surface",
    "defense_coverage",
    "layer_synergy",
    "criticality_weighted_exposure",
]


@dataclass(frozen=True)
class AttackSurfaceReport:
    """Summary of a system model's externally reachable surface."""

    entry_points: int
    unsecured_interfaces: int
    total_interfaces: int
    reachable_components: int
    total_components: int
    reachable_critical: int

    @property
    def unsecured_fraction(self) -> float:
        if not self.total_interfaces:
            return 0.0
        return self.unsecured_interfaces / self.total_interfaces

    @property
    def reachability_fraction(self) -> float:
        if not self.total_components:
            return 0.0
        return self.reachable_components / self.total_components


def attack_surface(model: SystemModel) -> AttackSurfaceReport:
    """Compute the attack-surface report for a system model.

    "Reachable" means reachable from any entry point over *unsecured*
    interfaces only — the paper's minimization argument is exactly that
    removing features/endpoints shrinks this set.
    """
    interfaces = list(model.interfaces())
    entry = model.entry_points()
    reachable: set[str] = set()
    for component in entry:
        reachable |= model.reachable_from(component.name, only_unsecured=True)
    critical = sum(1 for name in reachable if model.component(name).criticality >= 4)
    return AttackSurfaceReport(
        entry_points=len(entry),
        unsecured_interfaces=sum(1 for i in interfaces if not i.secured),
        total_interfaces=len(interfaces),
        reachable_components=len(reachable),
        total_components=len(model.components()),
        reachable_critical=critical,
    )


def defense_coverage(catalog: ThreatCatalog, enabled: set[str] | None = None) -> float:
    """Fraction of cataloged attacks mitigated by the enabled defenses."""
    if not catalog.attacks:
        return 1.0
    uncovered = catalog.uncovered_attacks(enabled)
    return 1.0 - len(uncovered) / len(catalog.attacks)


def layer_synergy(catalog: ThreatCatalog, enabled: set[str] | None = None) -> dict[Layer, float]:
    """Per-layer defense coverage.

    The paper's §VIII synergy claim is that overall security is bounded
    by the *worst* layer: this returns the coverage per layer so the
    holistic bench can show min-coverage dominating.
    """
    result: dict[Layer, float] = {}
    for layer in Layer:
        attacks = catalog.attacks_on_layer(layer)
        if not attacks:
            result[layer] = 1.0
            continue
        defenses = [
            d for name, d in catalog.defenses.items()
            if (enabled is None or name in enabled) and d.layer == layer
        ]
        covered = sum(1 for a in attacks if any(d.covers(a) for d in defenses))
        result[layer] = covered / len(attacks)
    return result


def criticality_weighted_exposure(model: SystemModel) -> float:
    """Sum over components of criticality x (number of entry points reaching it).

    A scalar that rises with both connectivity and the criticality of what
    is reachable; used to compare architectures before/after hardening.
    """
    return float(sum(
        component.criticality * model.exposure_of(component.name)
        for component in model.components()
    ))
