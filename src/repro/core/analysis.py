"""Cross-layer security analyzer (paper §VIII).

The paper's closing argument is that autonomous-system security must be
*holistic and multi-layered*: defenses at different layers only work in
synergy, attacks must be detectable early, and responses must span layers.
This module implements that argument as an executable analysis:

* :class:`LayeredSecurityAnalyzer` evaluates a :class:`ThreatCatalog`
  under a chosen set of enabled defenses and reports which attacks
  survive, per layer;
* :func:`ablate_layers` runs the layered-defense ablation behind the
  EXP-R1 bench — enabling defenses layer by layer and measuring residual
  attack count, demonstrating the "weakest layer dominates" effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layers import LAYER_INFO, Layer
from repro.core.metrics import defense_coverage, layer_synergy
from repro.core.threats import Attack, ThreatCatalog

__all__ = ["LayerAssessment", "SecurityAssessment", "LayeredSecurityAnalyzer", "ablate_layers"]


@dataclass(frozen=True)
class LayerAssessment:
    """Assessment of one layer: attacks, enabled defenses, residual risk."""

    layer: Layer
    total_attacks: int
    covered_attacks: int
    residual_attacks: tuple[str, ...]

    @property
    def coverage(self) -> float:
        if not self.total_attacks:
            return 1.0
        return self.covered_attacks / self.total_attacks


@dataclass(frozen=True)
class SecurityAssessment:
    """Whole-system assessment across all layers."""

    per_layer: dict[Layer, LayerAssessment]
    overall_coverage: float
    weakest_layer: Layer
    residual_attacks: tuple[str, ...]

    @property
    def min_layer_coverage(self) -> float:
        return min(a.coverage for a in self.per_layer.values())


class LayeredSecurityAnalyzer:
    """Evaluates defense configurations against a threat catalog."""

    def __init__(self, catalog: ThreatCatalog) -> None:
        self.catalog = catalog

    def assess(self, enabled_defenses: set[str] | None = None) -> SecurityAssessment:
        """Assess the system with the given defenses enabled (None = all)."""
        per_layer: dict[Layer, LayerAssessment] = {}
        residual_all: list[str] = []
        for layer in Layer:
            attacks = self.catalog.attacks_on_layer(layer)
            defenses = [
                d for name, d in self.catalog.defenses.items()
                if (enabled_defenses is None or name in enabled_defenses)
            ]
            residual = [
                a.name for a in attacks if not any(d.covers(a) for d in defenses)
            ]
            residual_all.extend(residual)
            per_layer[layer] = LayerAssessment(
                layer=layer,
                total_attacks=len(attacks),
                covered_attacks=len(attacks) - len(residual),
                residual_attacks=tuple(residual),
            )
        weakest = min(
            (layer for layer in Layer if per_layer[layer].total_attacks),
            key=lambda l: per_layer[l].coverage,
            default=Layer.PHYSICAL,
        )
        return SecurityAssessment(
            per_layer=per_layer,
            overall_coverage=defense_coverage(self.catalog, enabled_defenses),
            weakest_layer=weakest,
            residual_attacks=tuple(residual_all),
        )

    def synergy_table(self, enabled_defenses: set[str] | None = None) -> list[tuple[str, float]]:
        """(layer title, coverage) rows for reporting."""
        synergy = layer_synergy(self.catalog, enabled_defenses)
        return [(LAYER_INFO[layer].title, synergy[layer]) for layer in Layer]

    def exploitable_by(self, access_difficulty: int,
                       enabled_defenses: set[str] | None = None) -> list[Attack]:
        """Residual attacks mountable by an attacker of bounded capability.

        ``access_difficulty`` is the max :attr:`AccessLevel.difficulty`
        the attacker can obtain (0 = remote-only attacker).
        """
        assessment = self.assess(enabled_defenses)
        residual = set(assessment.residual_attacks)
        return [
            attack for name, attack in self.catalog.attacks.items()
            if name in residual and attack.access.difficulty <= access_difficulty
        ]


def ablate_layers(catalog: ThreatCatalog,
                  order: list[Layer] | None = None) -> list[tuple[str, int, float]]:
    """Enable defenses one layer at a time; report residual attacks after each.

    Returns rows of ``(layer title, residual attack count, coverage)`` —
    the data series behind the EXP-R1 "defense-in-depth" bench.
    """
    if order is None:
        order = list(Layer)
    analyzer = LayeredSecurityAnalyzer(catalog)
    enabled: set[str] = set()
    rows: list[tuple[str, int, float]] = []
    for layer in order:
        enabled |= {d.name for d in catalog.defenses_on_layer(layer)}
        assessment = analyzer.assess(enabled)
        rows.append((
            LAYER_INFO[layer].title,
            len(assessment.residual_attacks),
            assessment.overall_coverage,
        ))
    return rows
