"""Seeded randomness utilities.

Every stochastic experiment in the reproduction draws from an explicit
:class:`numpy.random.Generator` or :class:`random.Random` created here, so
all benchmark tables are reproducible run-to-run. Seeds are derived by
hashing a textual label, which keeps independent subsystems decorrelated
without manual seed bookkeeping.
"""

from __future__ import annotations

import hashlib
import os
import random

import numpy as np

__all__ = ["derive_seed", "numpy_rng", "python_rng"]


def _default_base_seed() -> int:
    """The sweep-wide base seed (``REPRO_BASE_SEED``, default 0).

    The experiment runner exports this per worker, so a sweep can
    re-shard every derived stream without touching any call site.
    """
    try:
        return int(os.environ.get("REPRO_BASE_SEED", "0"))
    except ValueError:
        return 0


def derive_seed(label: str, base_seed: int | None = None) -> int:
    """Derive a stable 63-bit seed from a label and a base seed.

    With ``base_seed=None`` the ambient :func:`_default_base_seed` is
    used — identical to the historical default of 0 unless a sweep set
    ``REPRO_BASE_SEED``.
    """
    if base_seed is None:
        base_seed = _default_base_seed()
    digest = hashlib.sha256(f"{base_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def numpy_rng(label: str, base_seed: int | None = None) -> np.random.Generator:
    """A numpy Generator seeded deterministically from ``label``."""
    return np.random.default_rng(derive_seed(label, base_seed))


def python_rng(label: str, base_seed: int | None = None) -> random.Random:
    """A stdlib Random seeded deterministically from ``label``."""
    return random.Random(derive_seed(label, base_seed))
