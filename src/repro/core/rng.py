"""Seeded randomness utilities.

Every stochastic experiment in the reproduction draws from an explicit
:class:`numpy.random.Generator` or :class:`random.Random` created here, so
all benchmark tables are reproducible run-to-run. Seeds are derived by
hashing a textual label, which keeps independent subsystems decorrelated
without manual seed bookkeeping.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np

__all__ = ["derive_seed", "numpy_rng", "python_rng"]


def derive_seed(label: str, base_seed: int = 0) -> int:
    """Derive a stable 63-bit seed from a label and a base seed."""
    digest = hashlib.sha256(f"{base_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def numpy_rng(label: str, base_seed: int = 0) -> np.random.Generator:
    """A numpy Generator seeded deterministically from ``label``."""
    return np.random.default_rng(derive_seed(label, base_seed))


def python_rng(label: str, base_seed: int = 0) -> random.Random:
    """A stdlib Random seeded deterministically from ``label``."""
    return random.Random(derive_seed(label, base_seed))
