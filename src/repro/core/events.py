"""Deterministic discrete-event simulation kernel.

Shared substrate for the timed simulators in this reproduction: the CAN
bus and Ethernet switch models (:mod:`repro.ivn`), the 10BASE-T1S PLCA
round-robin, and the collaborative-perception world (:mod:`repro.collab`).

The kernel is a plain priority queue of ``(time, seq, callback)`` entries.
``seq`` makes ordering total and deterministic: two events scheduled for
the same instant fire in scheduling order, so repeated runs of a seeded
simulation are bit-identical — a prerequisite for reproducible security
experiments.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by ``(time, seq)``."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    canceled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.canceled = True


class Simulator:
    """Minimal deterministic event loop.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fired at", sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = 0
        self._processed = 0

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including canceled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, self._seq, action)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        return self.schedule(time - self.now, action)

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.canceled:
                continue
            self.now = event.time
            event.action()
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            next_time = self._queue[0].time
            if until is not None and next_time > until:
                self.now = until
                return
            if not self.step():
                return
            executed += 1
        if until is not None and until > self.now:
            self.now = until
