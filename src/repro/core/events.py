"""Deterministic discrete-event simulation kernel.

Shared substrate for the timed simulators in this reproduction: the CAN
bus and Ethernet switch models (:mod:`repro.ivn`), the 10BASE-T1S PLCA
round-robin, and the collaborative-perception world (:mod:`repro.collab`).

The kernel is a plain priority queue of ``(time, seq, callback)`` entries.
``seq`` makes ordering total and deterministic: two events scheduled for
the same instant fire in scheduling order, so repeated runs of a seeded
simulation are bit-identical — a prerequisite for reproducible security
experiments.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by ``(time, seq)``."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    canceled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.canceled = True


class Simulator:
    """Minimal deterministic event loop.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fired at", sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = 0
        self._processed = 0

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including canceled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, self._seq, action)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        return self.schedule(time - self.now, action)

    def peek_time(self) -> float | None:
        """Time of the next *live* event, or None when none remain.

        Canceled entries at the heap head are lazily popped, so the
        answer always refers to an event that will actually fire —
        ``run(until=...)`` relies on this to avoid executing a live
        event past ``until`` hiding behind a canceled head.
        """
        while self._queue:
            head = self._queue[0]
            if head.canceled:
                heapq.heappop(self._queue)
                continue
            return head.time
        return None

    def live_events(self) -> list[Event]:
        """Non-canceled queued events, in heap (not firing) order.

        O(n) snapshot used by batch fast paths to prove no foreign
        event would interleave with an analytically-computed burst.
        """
        return [event for event in self._queue if not event.canceled]

    def advance_to(self, time: float, *, processed: int = 0) -> None:
        """Jump the clock forward after a batch computed events analytically.

        Batch fast paths (e.g. :meth:`repro.ivn.bus.CanBus.run_batch`)
        replace a run of scheduled callbacks with closed-form bookkeeping;
        this commits their net effect — the final clock value and how many
        events' worth of work they accounted for — back to the kernel.
        """
        if time < self.now:
            raise ValueError(
                f"cannot advance backwards (now={self.now}, target={time})")
        if processed < 0:
            raise ValueError("processed count must be non-negative")
        self.now = time
        self._processed += processed

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.canceled:
                continue
            self.now = event.time
            event.action()
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                return
            if not self.step():
                return
            executed += 1
        if until is not None and until > self.now:
            self.now = until
