"""The paper's layered architecture of an autonomous system (Fig. 1).

The paper structures its entire discussion around five architectural
layers — physical, network, software & platform, data, and system of
systems — plus the cross-cutting collaboration dimension (§VII).  This
module encodes that taxonomy as an enum with ordering (lower layers are
"closer to the physics") and attaches to each layer the section of the
paper it comes from and the subpackage of this reproduction that
operationalizes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = ["Layer", "LayerInfo", "LAYER_INFO", "adjacent_layers"]


class Layer(IntEnum):
    """Abstraction layers of an autonomous system, ordered bottom-up.

    The integer values encode the stacking order of Fig. 1; comparisons
    like ``Layer.PHYSICAL < Layer.NETWORK`` read as "further from the
    system-of-systems boundary".
    """

    PHYSICAL = 1
    NETWORK = 2
    SOFTWARE_PLATFORM = 3
    DATA = 4
    SYSTEM_OF_SYSTEMS = 5
    COLLABORATION = 6


@dataclass(frozen=True)
class LayerInfo:
    """Descriptive record for one layer of the architecture."""

    layer: Layer
    title: str
    paper_section: str
    example_mechanisms: tuple[str, ...]
    subpackage: str


LAYER_INFO: dict[Layer, LayerInfo] = {
    Layer.PHYSICAL: LayerInfo(
        Layer.PHYSICAL,
        "Physical Layer",
        "II",
        (
            "UWB secure ranging (HRP/LRP)",
            "distance bounding & distance commitment",
            "sensor spoofing resilience",
            "PKES relay-attack mitigation",
        ),
        "repro.phy",
    ),
    Layer.NETWORK: LayerInfo(
        Layer.NETWORK,
        "Network Layer",
        "III",
        (
            "SECOC", "MACsec", "CANsec", "CANAL",
            "zonal E/E architecture", "intrusion detection",
        ),
        "repro.ivn",
    ),
    Layer.SOFTWARE_PLATFORM: LayerInfo(
        Layer.SOFTWARE_PLATFORM,
        "Software and Platform Layer",
        "IV",
        (
            "software-defined vehicle reconfiguration",
            "self-sovereign identity",
            "verifiable credentials",
            "plug-and-charge authentication",
        ),
        "repro.ssi",
    ),
    Layer.DATA: LayerInfo(
        Layer.DATA,
        "Data Layer",
        "V",
        (
            "telemetry data protection",
            "kill-chain analysis",
            "attack-surface minimization",
            "geolocation privacy",
        ),
        "repro.datalayer",
    ),
    Layer.SYSTEM_OF_SYSTEMS: LayerInfo(
        Layer.SYSTEM_OF_SYSTEMS,
        "System of Systems Layer",
        "VI",
        (
            "MaaS platform architecture",
            "STRIDE threat enumeration",
            "risk cascades",
            "responsibility mapping",
        ),
        "repro.sos",
    ),
    Layer.COLLABORATION: LayerInfo(
        Layer.COLLABORATION,
        "Collaboration Layer",
        "VII",
        (
            "collaborative perception",
            "internal-attacker detection",
            "resource-competition governance",
        ),
        "repro.collab",
    ),
}


def adjacent_layers(layer: Layer) -> tuple[Layer, ...]:
    """Return the layers directly above/below ``layer`` in the Fig. 1 stack.

    Cross-layer attack paths in the analyzer propagate only between
    adjacent layers unless an explicit bridge (e.g. a telematics gateway)
    links distant layers.
    """
    neighbours = []
    if layer.value > Layer.PHYSICAL.value:
        neighbours.append(Layer(layer.value - 1))
    if layer.value < Layer.COLLABORATION.value:
        neighbours.append(Layer(layer.value + 1))
    return tuple(neighbours)
