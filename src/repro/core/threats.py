"""Threat taxonomy: attacks, defenses, and security properties.

This module gives every per-layer simulator in the reproduction a common
vocabulary, so the cross-layer analyzer (:mod:`repro.core.analysis`) can
reason about heterogeneous attacks — a UWB distance-reduction attack and
a cloud heap-dump exfiltration are both :class:`Attack` records with a
layer, violated security properties, and prerequisites.

The taxonomy follows the paper's framing:

* security *properties* are the classic CIA triad extended with
  authenticity and freshness (the properties SECOC/MACsec provide) and
  availability (DoS in §VI-B);
* an *attack* names the property it violates, the layer it lives on, and
  the access it needs (remote/adjacent/physical — mirroring how §III
  distinguishes bus access from remote Bluetooth entry);
* a *defense* names the attacks it mitigates and the layer it operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.layers import Layer

__all__ = [
    "SecurityProperty",
    "AccessLevel",
    "Attack",
    "Defense",
    "ThreatCatalog",
    "default_catalog",
]


class SecurityProperty(Enum):
    """Security properties an attack can violate / a defense can protect."""

    CONFIDENTIALITY = "confidentiality"
    INTEGRITY = "integrity"
    AVAILABILITY = "availability"
    AUTHENTICITY = "authenticity"
    FRESHNESS = "freshness"
    PRIVACY = "privacy"


class AccessLevel(Enum):
    """Attacker position required to mount an attack (ordered by difficulty)."""

    REMOTE = "remote"          # Internet / cloud access only
    ADJACENT = "adjacent"      # wireless proximity (V2X, UWB, Bluetooth range)
    LOCAL_BUS = "local_bus"    # access to an in-vehicle network segment
    PHYSICAL = "physical"      # hands on the hardware
    INSIDER = "insider"        # legitimate credentials (paper §VII-B)

    @property
    def difficulty(self) -> int:
        """Rough ordering: higher is harder for an attacker to obtain."""
        order = {
            AccessLevel.REMOTE: 0,
            AccessLevel.ADJACENT: 1,
            AccessLevel.LOCAL_BUS: 2,
            AccessLevel.PHYSICAL: 3,
            AccessLevel.INSIDER: 4,
        }
        return order[self]


@dataclass(frozen=True)
class Attack:
    """A named attack technique at a specific architectural layer."""

    name: str
    layer: Layer
    violates: frozenset[SecurityProperty]
    access: AccessLevel
    paper_ref: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not self.violates:
            raise ValueError(f"attack {self.name!r} must violate at least one property")


@dataclass(frozen=True)
class Defense:
    """A named defense and the attack names it mitigates."""

    name: str
    layer: Layer
    protects: frozenset[SecurityProperty]
    mitigates: frozenset[str]
    paper_ref: str = ""
    description: str = ""

    def covers(self, attack: Attack) -> bool:
        """True if this defense mitigates ``attack``.

        A defense covers an attack when it names it explicitly and
        operates on the same layer (the paper's §VIII point: measures at
        different layers do not substitute for one another).
        """
        return attack.name in self.mitigates and attack.layer == self.layer


@dataclass
class ThreatCatalog:
    """A registry of attacks and defenses usable by the analyzer."""

    attacks: dict[str, Attack] = field(default_factory=dict)
    defenses: dict[str, Defense] = field(default_factory=dict)

    def add_attack(self, attack: Attack) -> None:
        if attack.name in self.attacks:
            raise ValueError(f"duplicate attack {attack.name!r}")
        self.attacks[attack.name] = attack

    def add_defense(self, defense: Defense) -> None:
        if defense.name in self.defenses:
            raise ValueError(f"duplicate defense {defense.name!r}")
        unknown = defense.mitigates - self.attacks.keys()
        if unknown:
            raise ValueError(f"defense {defense.name!r} mitigates unknown attacks {sorted(unknown)}")
        self.defenses[defense.name] = defense

    def attacks_on_layer(self, layer: Layer) -> list[Attack]:
        return [a for a in self.attacks.values() if a.layer == layer]

    def defenses_on_layer(self, layer: Layer) -> list[Defense]:
        return [d for d in self.defenses.values() if d.layer == layer]

    def uncovered_attacks(self, enabled_defenses: set[str] | None = None) -> list[Attack]:
        """Attacks not mitigated by any (enabled) defense in the catalog."""
        defenses = [
            d for name, d in self.defenses.items()
            if enabled_defenses is None or name in enabled_defenses
        ]
        return [
            a for a in self.attacks.values()
            if not any(d.covers(a) for d in defenses)
        ]


def default_catalog() -> ThreatCatalog:
    """The paper's attack/defense inventory as a ready-made catalog.

    One entry per attack/defense the paper discusses, tagged with the
    section or reference it comes from. Used by the FIG1 bench and the
    holistic-defense experiment (EXP-R1).
    """
    cat = ThreatCatalog()
    a = cat.add_attack
    d = cat.add_defense

    # --- Physical layer (§II) ---
    a(Attack("pkes-relay", Layer.PHYSICAL,
             frozenset({SecurityProperty.AUTHENTICITY}), AccessLevel.ADJACENT,
             "[1]", "Relay attack on passive keyless entry"))
    a(Attack("uwb-distance-reduction", Layer.PHYSICAL,
             frozenset({SecurityProperty.INTEGRITY}), AccessLevel.ADJACENT,
             "[4],[8]", "Early-peak injection against HRP cross-correlation"))
    a(Attack("uwb-distance-enlargement", Layer.PHYSICAL,
             frozenset({SecurityProperty.INTEGRITY, SecurityProperty.AVAILABILITY}),
             AccessLevel.ADJACENT, "[13],[14]",
             "Signal annihilation/distortion to hide nearby objects"))
    a(Attack("sensor-spoofing", Layer.PHYSICAL,
             frozenset({SecurityProperty.INTEGRITY}), AccessLevel.ADJACENT,
             "[9]-[12]", "LiDAR/radar/camera spoofing or object removal"))
    d(Defense("uwb-secure-ranging", Layer.PHYSICAL,
              frozenset({SecurityProperty.AUTHENTICITY, SecurityProperty.INTEGRITY}),
              frozenset({"pkes-relay", "uwb-distance-reduction"}),
              "[4]-[8]", "Two-way ToF with STS integrity checks / distance bounding"))
    d(Defense("uwb-ed-detector", Layer.PHYSICAL,
              frozenset({SecurityProperty.INTEGRITY}),
              frozenset({"uwb-distance-enlargement"}),
              "[13]", "Distance-enlargement detection via energy/variance analysis"))
    d(Defense("multi-sensor-plausibility", Layer.PHYSICAL,
              frozenset({SecurityProperty.INTEGRITY}),
              frozenset({"sensor-spoofing"}),
              "[12],[13]", "Cross-checking sensors with secure ranging"))

    # --- Network layer (§III) ---
    a(Attack("can-masquerade", Layer.NETWORK,
             frozenset({SecurityProperty.AUTHENTICITY}), AccessLevel.LOCAL_BUS,
             "§III", "Impersonating safety-critical ECUs via legitimate CAN IDs"))
    a(Attack("can-replay", Layer.NETWORK,
             frozenset({SecurityProperty.FRESHNESS}), AccessLevel.LOCAL_BUS,
             "§III-A", "Replaying previously captured authentic frames"))
    a(Attack("remote-wireless-entry", Layer.NETWORK,
             frozenset({SecurityProperty.AUTHENTICITY, SecurityProperty.INTEGRITY}),
             AccessLevel.REMOTE, "[21]-[23]",
             "Remote exploitation via Bluetooth/cellular interfaces"))
    a(Attack("bus-flood-dos", Layer.NETWORK,
             frozenset({SecurityProperty.AVAILABILITY}), AccessLevel.LOCAL_BUS,
             "§VI-B", "Flooding a bus segment with top-priority frames"))
    d(Defense("secoc", Layer.NETWORK,
              frozenset({SecurityProperty.AUTHENTICITY, SecurityProperty.FRESHNESS}),
              frozenset({"can-masquerade", "can-replay"}),
              "[18]", "AUTOSAR Secure Onboard Communication (truncated CMAC + freshness)"))
    d(Defense("macsec", Layer.NETWORK,
              frozenset({SecurityProperty.AUTHENTICITY, SecurityProperty.CONFIDENTIALITY,
                         SecurityProperty.FRESHNESS}),
              frozenset({"can-masquerade", "can-replay", "remote-wireless-entry"}),
              "[20]", "IEEE 802.1AE hop/end-to-end authenticated encryption"))
    d(Defense("network-ids", Layer.NETWORK,
              frozenset({SecurityProperty.AVAILABILITY, SecurityProperty.AUTHENTICITY}),
              frozenset({"bus-flood-dos", "can-masquerade"}),
              "[51]-[53]", "In-vehicle intrusion detection & sender identification"))

    # --- Software & platform layer (§IV) ---
    a(Attack("malicious-software-update", Layer.SOFTWARE_PLATFORM,
             frozenset({SecurityProperty.INTEGRITY, SecurityProperty.AUTHENTICITY}),
             AccessLevel.REMOTE, "§IV-A",
             "Unauthorized software placed during SDV reconfiguration"))
    a(Attack("incompatible-reconfiguration", Layer.SOFTWARE_PLATFORM,
             frozenset({SecurityProperty.INTEGRITY}), AccessLevel.REMOTE,
             "§IV-A", "Software deployed to unapproved hardware"))
    a(Attack("forged-evidence-data", Layer.SOFTWARE_PLATFORM,
             frozenset({SecurityProperty.AUTHENTICITY}), AccessLevel.INSIDER,
             "§IV-B", "Tampered crash reports / scenario data"))
    a(Attack("charging-contract-fraud", Layer.SOFTWARE_PLATFORM,
             frozenset({SecurityProperty.AUTHENTICITY}), AccessLevel.ADJACENT,
             "§IV-C", "Impersonation in plug-and-charge negotiation"))
    d(Defense("ssi-mutual-authentication", Layer.SOFTWARE_PLATFORM,
              frozenset({SecurityProperty.AUTHENTICITY, SecurityProperty.INTEGRITY}),
              frozenset({"malicious-software-update", "incompatible-reconfiguration"}),
              "[29],[30]", "Zero-trust mutual authentication with verifiable credentials"))
    d(Defense("signed-linked-documents", Layer.SOFTWARE_PLATFORM,
              frozenset({SecurityProperty.AUTHENTICITY, SecurityProperty.INTEGRITY}),
              frozenset({"forged-evidence-data"}),
              "§IV-B", "Digitally signed, linked evidence documents"))
    d(Defense("ssi-charging", Layer.SOFTWARE_PLATFORM,
              frozenset({SecurityProperty.AUTHENTICITY}),
              frozenset({"charging-contract-fraud"}),
              "[32]", "SSI-based plug-and-charge authentication"))

    # --- Data layer (§V) ---
    a(Attack("cloud-endpoint-exposure", Layer.DATA,
             frozenset({SecurityProperty.CONFIDENTIALITY}), AccessLevel.REMOTE,
             "§V-A", "Directory enumeration reveals debug endpoints (gobuster)"))
    a(Attack("heap-dump-key-extraction", Layer.DATA,
             frozenset({SecurityProperty.CONFIDENTIALITY}), AccessLevel.REMOTE,
             "§V-A", "Production heap dump leaks cloud master keys"))
    a(Attack("telemetry-mass-exfiltration", Layer.DATA,
             frozenset({SecurityProperty.CONFIDENTIALITY, SecurityProperty.PRIVACY}),
             AccessLevel.REMOTE, "§V-A", "Bulk extraction of geolocation/PII records"))
    d(Defense("attack-surface-minimization", Layer.DATA,
              frozenset({SecurityProperty.CONFIDENTIALITY}),
              frozenset({"cloud-endpoint-exposure", "heap-dump-key-extraction"}),
              "§V-C", "Removing non-essential features/endpoints (simple designs)"))
    d(Defense("data-minimization-and-access-control", Layer.DATA,
              frozenset({SecurityProperty.PRIVACY, SecurityProperty.CONFIDENTIALITY}),
              frozenset({"telemetry-mass-exfiltration"}),
              "[54],[55]", "Owner-controlled access, coarsened/minimized storage"))

    # --- System-of-systems layer (§VI) ---
    a(Attack("subsystem-cascade-breach", Layer.SYSTEM_OF_SYSTEMS,
             frozenset({SecurityProperty.INTEGRITY, SecurityProperty.AVAILABILITY}),
             AccessLevel.REMOTE, "§VI-B",
             "Breach in one subsystem cascading across the SoS"))
    a(Attack("third-party-component-compromise", Layer.SYSTEM_OF_SYSTEMS,
             frozenset({SecurityProperty.INTEGRITY}), AccessLevel.REMOTE,
             "§VI-B", "Vulnerable third-party software/hardware integration"))
    a(Attack("realtime-data-dos", Layer.SYSTEM_OF_SYSTEMS,
             frozenset({SecurityProperty.AVAILABILITY}), AccessLevel.REMOTE,
             "§VI-B", "DoS on real-time data feeds affecting decisions"))
    a(Attack("adversarial-ml", Layer.SYSTEM_OF_SYSTEMS,
             frozenset({SecurityProperty.INTEGRITY}), AccessLevel.ADJACENT,
             "[46]", "Adversarial inputs manipulating AI/ML decision-making"))
    d(Defense("sos-segmentation", Layer.SYSTEM_OF_SYSTEMS,
              frozenset({SecurityProperty.INTEGRITY, SecurityProperty.AVAILABILITY}),
              frozenset({"subsystem-cascade-breach", "third-party-component-compromise"}),
              "§VI-B", "Unified security framework + subsystem isolation"))
    d(Defense("redundant-realtime-feeds", Layer.SYSTEM_OF_SYSTEMS,
              frozenset({SecurityProperty.AVAILABILITY}),
              frozenset({"realtime-data-dos"}),
              "§VI-B", "Redundancy and rate protection for real-time data"))
    d(Defense("ml-robustness-monitoring", Layer.SYSTEM_OF_SYSTEMS,
              frozenset({SecurityProperty.INTEGRITY}),
              frozenset({"adversarial-ml"}),
              "[45],[46]", "Adversarial-robustness checks on ML components"))

    # --- Collaboration layer (§VII) ---
    a(Attack("v2x-external-injection", Layer.COLLABORATION,
             frozenset({SecurityProperty.AUTHENTICITY}), AccessLevel.ADJACENT,
             "§VII-B", "Uncredentialed injection into collaborative channels"))
    a(Attack("collab-internal-fabrication", Layer.COLLABORATION,
             frozenset({SecurityProperty.INTEGRITY}), AccessLevel.INSIDER,
             "[48]", "Credentialed node injecting fabricated perception data"))
    a(Attack("selfish-resource-exploitation", Layer.COLLABORATION,
             frozenset({SecurityProperty.AVAILABILITY}), AccessLevel.INSIDER,
             "§VII-A", "Legal-but-unethical optimization against shared resources"))
    d(Defense("secure-v2x-channel", Layer.COLLABORATION,
              frozenset({SecurityProperty.AUTHENTICITY, SecurityProperty.CONFIDENTIALITY}),
              frozenset({"v2x-external-injection"}),
              "§VII-B", "Authenticated V2X messaging"))
    d(Defense("redundancy-cross-validation", Layer.COLLABORATION,
              frozenset({SecurityProperty.INTEGRITY}),
              frozenset({"collab-internal-fabrication"}),
              "§VII-B", "Intrusion detection via redundant information sources"))
    d(Defense("collaboration-regulation", Layer.COLLABORATION,
              frozenset({SecurityProperty.AVAILABILITY}),
              frozenset({"selfish-resource-exploitation"}),
              "§VII-A", "Common directives / legislation for competing systems"))

    return cat
