"""Domain generality: the framework beyond road vehicles (paper §I).

"We also witness autonomous functionality emerging in many other
domains, from passenger trains and Unmanned Aerial Vehicles to
production systems and robots in Industry 4.0 applications ... All such
challenges equally exist in other application domains."

A :class:`DomainProfile` instantiates the layered architecture for one
domain: representative components per layer and the communication
substrate each uses. :func:`build_domain_model` converts a profile into
the core :class:`~repro.core.entities.SystemModel`, so the same
attack-surface and analyzer machinery runs unchanged on a train, a UAV
fleet, or a production cell — the executable form of §I's generality
claim (asserted by the tests: every cataloged attack layer has a
component to land on in every domain).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer
from repro.core.threats import AccessLevel

__all__ = ["DomainComponent", "DomainProfile", "DOMAIN_PROFILES", "build_domain_model"]


@dataclass(frozen=True)
class DomainComponent:
    """One representative component in a domain profile."""

    name: str
    layer: Layer
    criticality: int
    exposed: bool = False
    connects_to: tuple[str, ...] = ()
    protocol: str = "internal"


@dataclass(frozen=True)
class DomainProfile:
    """A domain instantiation of the Fig. 1 layers."""

    name: str
    components: tuple[DomainComponent, ...]

    def layers_covered(self) -> set[Layer]:
        return {c.layer for c in self.components}


DOMAIN_PROFILES: dict[str, DomainProfile] = {
    "automotive": DomainProfile("automotive", (
        DomainComponent("uwb-anchor", Layer.PHYSICAL, 4,
                        connects_to=("gateway",), protocol="uwb"),
        DomainComponent("lidar", Layer.PHYSICAL, 4,
                        connects_to=("ad-stack",), protocol="sensor"),
        DomainComponent("gateway", Layer.NETWORK, 4,
                        connects_to=("ad-stack",), protocol="ethernet"),
        DomainComponent("telematics", Layer.NETWORK, 2, exposed=True,
                        connects_to=("gateway",), protocol="cellular"),
        DomainComponent("ad-stack", Layer.SOFTWARE_PLATFORM, 5,
                        connects_to=("telemetry-backend",), protocol="telematics"),
        DomainComponent("telemetry-backend", Layer.DATA, 3, exposed=True,
                        protocol="https"),
        DomainComponent("maas-platform", Layer.SYSTEM_OF_SYSTEMS, 3, exposed=True,
                        connects_to=("telemetry-backend",), protocol="api"),
        DomainComponent("v2x-stack", Layer.COLLABORATION, 4,
                        connects_to=("ad-stack",), protocol="v2x"),
    )),
    "rail": DomainProfile("rail", (
        DomainComponent("balise-reader", Layer.PHYSICAL, 5,
                        connects_to=("train-control",), protocol="balise"),
        DomainComponent("obstacle-radar", Layer.PHYSICAL, 5,
                        connects_to=("train-control",), protocol="sensor"),
        DomainComponent("train-bus", Layer.NETWORK, 4,
                        connects_to=("train-control",), protocol="mvb"),
        DomainComponent("gsm-r-modem", Layer.NETWORK, 3, exposed=True,
                        connects_to=("train-bus",), protocol="gsm-r"),
        DomainComponent("train-control", Layer.SOFTWARE_PLATFORM, 5,
                        connects_to=("fleet-backend",), protocol="gsm-r"),
        DomainComponent("fleet-backend", Layer.DATA, 3, exposed=True,
                        protocol="https"),
        DomainComponent("traffic-management", Layer.SYSTEM_OF_SYSTEMS, 4, exposed=True,
                        connects_to=("fleet-backend",), protocol="api"),
        DomainComponent("convoy-coordination", Layer.COLLABORATION, 4,
                        connects_to=("train-control",), protocol="radio"),
    )),
    "uav": DomainProfile("uav", (
        DomainComponent("gnss-receiver", Layer.PHYSICAL, 5,
                        connects_to=("flight-controller",), protocol="gnss"),
        DomainComponent("rc-link", Layer.NETWORK, 4, exposed=True,
                        connects_to=("flight-controller",), protocol="radio"),
        DomainComponent("flight-controller", Layer.SOFTWARE_PLATFORM, 5,
                        connects_to=("ground-station",), protocol="radio"),
        DomainComponent("mission-logs", Layer.DATA, 2, exposed=True,
                        protocol="https"),
        DomainComponent("ground-station", Layer.SYSTEM_OF_SYSTEMS, 4, exposed=True,
                        connects_to=("mission-logs",), protocol="api"),
        DomainComponent("swarm-link", Layer.COLLABORATION, 4,
                        connects_to=("flight-controller",), protocol="mesh"),
    )),
    "industry40": DomainProfile("industry40", (
        DomainComponent("proximity-sensor", Layer.PHYSICAL, 4,
                        connects_to=("plc",), protocol="io-link"),
        DomainComponent("field-bus", Layer.NETWORK, 4,
                        connects_to=("plc",), protocol="profinet"),
        DomainComponent("ot-gateway", Layer.NETWORK, 3, exposed=True,
                        connects_to=("field-bus",), protocol="opc-ua"),
        DomainComponent("plc", Layer.SOFTWARE_PLATFORM, 5,
                        connects_to=("historian",), protocol="opc-ua"),
        DomainComponent("historian", Layer.DATA, 3, exposed=True,
                        protocol="https"),
        DomainComponent("mes", Layer.SYSTEM_OF_SYSTEMS, 3, exposed=True,
                        connects_to=("historian",), protocol="api"),
        DomainComponent("agv-fleet-coordination", Layer.COLLABORATION, 4,
                        connects_to=("plc",), protocol="wifi"),
    )),
}


def build_domain_model(profile: DomainProfile, *,
                       secured: bool = False) -> SystemModel:
    """Instantiate a profile as a SystemModel ready for analysis."""
    model = SystemModel(f"domain:{profile.name}")
    for component in profile.components:
        model.add_component(Component(
            component.name, component.layer, criticality=component.criticality,
            exposed=component.exposed,
        ))
    for component in profile.components:
        for target in component.connects_to:
            model.connect(Interface(component.name, target, component.protocol,
                                    AccessLevel.LOCAL_BUS, authenticated=secured))
            model.connect(Interface(target, component.name, component.protocol,
                                    AccessLevel.LOCAL_BUS, authenticated=secured))
    return model
