"""Probabilistic attack-graph analysis over system models (paper §V-C).

"By taking away features and options that are not strictly needed, we
enable a better understanding of possible misuse and even **the ability
to reason formally about security properties**."

This module provides that formal reasoning over the
:class:`~repro.core.entities.SystemModel` graph:

* every interface gets a per-hop **compromise probability** (derived
  from its authentication state and access level, or supplied
  explicitly);
* :meth:`AttackGraph.most_likely_path` — the maximum-probability attack
  path from any entry point to a target (Dijkstra on -log p);
* :meth:`AttackGraph.compromise_probability` — an upper bound on the
  probability the target falls (noisy-OR over disjoint-ish paths,
  documented approximation);
* :meth:`AttackGraph.minimal_hardening_cut` — the smallest set of
  interfaces whose securing disconnects every entry point from the
  target (a min-vertex/edge-cut via networkx max-flow), i.e. *where to
  spend the hardening budget*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.core.entities import Interface, SystemModel
from repro.core.threats import AccessLevel

__all__ = ["AttackGraph", "AttackPath"]

#: Default per-hop compromise probabilities by interface state.
_P_UNAUTHENTICATED = 0.8
_P_AUTHENTICATED = 0.1
_P_AUTH_ENCRYPTED = 0.03

#: Access-level difficulty scales feasibility further.
_ACCESS_FACTOR = {
    AccessLevel.REMOTE: 1.0,
    AccessLevel.ADJACENT: 0.8,
    AccessLevel.LOCAL_BUS: 0.6,
    AccessLevel.PHYSICAL: 0.3,
    AccessLevel.INSIDER: 0.9,
}


def default_hop_probability(interface: Interface) -> float:
    """Per-hop compromise probability from the interface's properties."""
    if not interface.authenticated:
        base = _P_UNAUTHENTICATED
    elif interface.encrypted:
        base = _P_AUTH_ENCRYPTED
    else:
        base = _P_AUTHENTICATED
    return base * _ACCESS_FACTOR[interface.access]


@dataclass(frozen=True)
class AttackPath:
    """One attack path with its success probability."""

    nodes: tuple[str, ...]
    probability: float

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1


class AttackGraph:
    """Quantitative attack-path reasoning over a system model."""

    def __init__(self, model: SystemModel,
                 hop_probability=default_hop_probability) -> None:
        self.model = model
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(c.name for c in model.components())
        for interface in model.interfaces():
            p = hop_probability(interface)
            if not 0.0 < p <= 1.0:
                raise ValueError(f"hop probability must be in (0, 1], got {p}")
            # Keep the most probable parallel edge.
            existing = self._graph.get_edge_data(interface.source, interface.target)
            if existing is None or existing["p"] < p:
                self._graph.add_edge(interface.source, interface.target,
                                     p=p, weight=-math.log(p))

    def most_likely_path(self, target: str,
                         source: str | None = None) -> AttackPath | None:
        """Highest-probability path from an entry point to ``target``.

        With ``source=None`` all entry points compete. Returns None when
        the target is unreachable.
        """
        sources = ([source] if source is not None
                   else [c.name for c in self.model.entry_points()])
        best: AttackPath | None = None
        for start in sources:
            if start == target:
                return AttackPath((target,), 1.0)
            try:
                nodes = nx.shortest_path(self._graph, start, target, weight="weight")
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            probability = math.exp(-nx.path_weight(self._graph, nodes, "weight"))
            if best is None or probability > best.probability:
                best = AttackPath(tuple(nodes), probability)
        return best

    def top_paths(self, target: str, k: int = 5) -> list[AttackPath]:
        """The ``k`` most probable simple paths from any entry point."""
        paths: list[AttackPath] = []
        for entry in self.model.entry_points():
            if entry.name == target:
                continue
            try:
                generator = nx.shortest_simple_paths(
                    self._graph, entry.name, target, weight="weight")
                for i, nodes in enumerate(generator):
                    if i >= k:
                        break
                    probability = math.exp(
                        -nx.path_weight(self._graph, nodes, "weight"))
                    paths.append(AttackPath(tuple(nodes), probability))
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
        paths.sort(key=lambda p: -p.probability)
        return paths[:k]

    def compromise_probability(self, target: str, *, k_paths: int = 5) -> float:
        """Noisy-OR over the top-k paths: 1 - prod(1 - p_i).

        An upper-bound style estimate (paths share edges, so true joint
        probability is lower); adequate for ranking targets and for
        before/after hardening comparisons.
        """
        paths = self.top_paths(target, k=k_paths)
        survive = 1.0
        for path in paths:
            survive *= 1.0 - path.probability
        return 1.0 - survive

    def minimal_hardening_cut(self, target: str, *,
                              sources: Iterable[str] | None = None) -> set[tuple[str, str]]:
        """Smallest interface set disconnecting all entry points from ``target``.

        Classic min-cut: add a super-source over the entry points, unit
        capacities (we minimize the *count* of interfaces to harden),
        then max-flow/min-cut.  ``sources`` restricts the entry set (the
        flow analyzer passes only the *tainted* sources that actually
        reach the sink); the default is every exposed component.
        """
        known = {c.name for c in self.model.components()}
        if target not in known:
            raise KeyError(f"unknown component {target!r}")
        if sources is None:
            entries = [c.name for c in self.model.entry_points()]
        else:
            entries = list(sources)
            for name in entries:
                if name not in known:
                    raise KeyError(f"unknown source {name!r}")
        flow = nx.DiGraph()
        flow.add_nodes_from(self._graph.nodes)
        for u, v in self._graph.edges:
            flow.add_edge(u, v, capacity=1.0)
        super_source = "__entry__"
        for entry in entries:
            if entry != target:
                flow.add_edge(super_source, entry, capacity=float("inf"))
        if super_source not in flow or flow.out_degree(super_source) == 0:
            return set()
        cut_value, (reachable, _) = nx.minimum_cut(flow, super_source, target)
        if math.isinf(cut_value):
            return set()
        return {
            (u, v) for u, v in self._graph.edges
            if u in reachable and v not in reachable
        }
