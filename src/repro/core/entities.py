"""Component/interface system model shared by the analysis layers.

A :class:`SystemModel` is a directed graph of :class:`Component` nodes
joined by :class:`Interface` edges.  The data-layer kill chain
(:mod:`repro.datalayer`), the attack-surface metrics, and the
system-of-systems cascade analysis (:mod:`repro.sos`) all operate on this
representation, which is what lets a breach modeled at one layer be traced
into another — the paper's core "holistic, multi-layered" argument (§VIII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import networkx as nx

from repro.core.layers import Layer
from repro.core.threats import AccessLevel

__all__ = ["Component", "Interface", "SystemModel"]


@dataclass(frozen=True)
class Component:
    """A system element: an ECU, a cloud service, a sensor, a stakeholder system."""

    name: str
    layer: Layer
    criticality: int = 1  # 1 (low) .. 5 (safety-critical)
    exposed: bool = False  # reachable by an external attacker without a foothold
    description: str = ""

    def __post_init__(self) -> None:
        if not 1 <= self.criticality <= 5:
            raise ValueError(f"criticality must be in 1..5, got {self.criticality}")


@dataclass(frozen=True)
class Interface:
    """A directed communication/trust edge between two components."""

    source: str
    target: str
    protocol: str
    access: AccessLevel = AccessLevel.LOCAL_BUS
    authenticated: bool = False
    encrypted: bool = False

    @property
    def secured(self) -> bool:
        """An interface counts as secured when it is at least authenticated."""
        return self.authenticated


class SystemModel:
    """A directed component/interface graph with security annotations."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._components: dict[str, Component] = {}

    # -- construction ------------------------------------------------------

    def add_component(self, component: Component) -> Component:
        if component.name in self._components:
            raise ValueError(f"duplicate component {component.name!r}")
        self._components[component.name] = component
        self._graph.add_node(component.name)
        return component

    def connect(self, interface: Interface) -> Interface:
        for end in (interface.source, interface.target):
            if end not in self._components:
                raise KeyError(f"unknown component {end!r}")
        self._graph.add_edge(interface.source, interface.target, interface=interface)
        return interface

    # -- queries -----------------------------------------------------------

    def component(self, name: str) -> Component:
        return self._components[name]

    def components(self, layer: Layer | None = None) -> list[Component]:
        items = list(self._components.values())
        if layer is not None:
            items = [c for c in items if c.layer == layer]
        return items

    def interfaces(self) -> Iterator[Interface]:
        for _, _, data in self._graph.edges(data=True):
            yield data["interface"]

    def interfaces_of(self, name: str) -> list[Interface]:
        """All interfaces (in or out) touching a component."""
        out = [d["interface"] for _, _, d in self._graph.out_edges(name, data=True)]
        inc = [d["interface"] for _, _, d in self._graph.in_edges(name, data=True)]
        return out + inc

    def entry_points(self) -> list[Component]:
        """Components an external attacker can reach directly."""
        return [c for c in self._components.values() if c.exposed]

    # -- reachability / attack paths ----------------------------------------

    def reachable_from(self, start: str, *, only_unsecured: bool = False) -> set[str]:
        """Components reachable from ``start`` following interface direction.

        With ``only_unsecured`` the traversal uses only unauthenticated
        interfaces — i.e. the set an attacker can reach without breaking
        any cryptographic protection.
        """
        if start not in self._components:
            raise KeyError(f"unknown component {start!r}")
        if not only_unsecured:
            return set(nx.descendants(self._graph, start)) | {start}
        sub = nx.DiGraph()
        sub.add_nodes_from(self._graph.nodes)
        for u, v, data in self._graph.edges(data=True):
            if not data["interface"].secured:
                sub.add_edge(u, v)
        return set(nx.descendants(sub, start)) | {start}

    def attack_paths(self, source: str, target: str, max_paths: int = 100) -> list[list[str]]:
        """Simple attack paths from ``source`` to ``target`` (bounded count)."""
        if source not in self._components or target not in self._components:
            raise KeyError("unknown component")
        paths = []
        for path in nx.all_simple_paths(self._graph, source, target):
            paths.append(path)
            if len(paths) >= max_paths:
                break
        return paths

    def exposure_of(self, target: str) -> int:
        """Number of entry points from which ``target`` is reachable."""
        return sum(1 for entry in self.entry_points()
                   if target in self.reachable_from(entry.name))

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying graph for custom analysis."""
        return self._graph.copy()
