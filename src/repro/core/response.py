"""Intrusion response engine (paper §VIII, modeled after REACT [56]).

The paper closes by requiring systems that "detect attacks at their
earliest stages and respond effectively across the multiple levels of the
system of systems".  This module implements that loop:

1. per-layer detectors raise :class:`SecurityAlert` records;
2. the :class:`ResponseEngine` classifies each alert against a response
   policy and selects the least-disruptive adequate response;
3. escalation: repeated alerts for the same component escalate the
   response level (isolate → degrade → safe-stop), mirroring how an
   autonomous vehicle must stay *safe* while under attack (no human
   fallback, §I).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Callable

from repro.core.layers import Layer

# NOTE: repro.obs is imported lazily inside the handlers — repro.core's
# package __init__ pulls this module in, and repro.obs itself depends on
# repro.core.layers, so a module-level import would be circular.

__all__ = ["Severity", "ResponseAction", "SecurityAlert", "ResponseDecision", "ResponseEngine"]


class Severity(IntEnum):
    """Alert severity, ordered."""

    INFO = 1
    WARNING = 2
    CRITICAL = 3


class ResponseAction(IntEnum):
    """Responses ordered by how disruptive they are to the mission."""

    LOG_ONLY = 0
    RATE_LIMIT = 1
    REKEY = 2
    ISOLATE_COMPONENT = 3
    DEGRADE_FUNCTION = 4
    SAFE_STOP = 5


@dataclass(frozen=True)
class SecurityAlert:
    """An alert emitted by a per-layer detector."""

    time: float
    layer: Layer
    component: str
    attack_name: str
    severity: Severity
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")


@dataclass(frozen=True)
class ResponseDecision:
    """The engine's decision for one alert."""

    alert: SecurityAlert
    action: ResponseAction
    escalation_level: int
    rationale: str


@dataclass
class _ComponentState:
    alert_count: int = 0
    last_action: ResponseAction = ResponseAction.LOG_ONLY


class ResponseEngine:
    """Stateful multi-layer intrusion response.

    The base policy maps (severity, safety-criticality) to a response;
    repeat offenses against the same component escalate one level per
    ``escalation_threshold`` alerts, capped at SAFE_STOP.
    """

    #: Default mapping severity -> base action for non-critical components.
    BASE_POLICY = {
        Severity.INFO: ResponseAction.LOG_ONLY,
        Severity.WARNING: ResponseAction.RATE_LIMIT,
        Severity.CRITICAL: ResponseAction.ISOLATE_COMPONENT,
    }

    def __init__(self, *, escalation_threshold: int = 3,
                 critical_components: set[str] | None = None,
                 min_confidence: float = 0.5) -> None:
        if escalation_threshold < 1:
            raise ValueError("escalation_threshold must be >= 1")
        self.escalation_threshold = escalation_threshold
        self.critical_components = critical_components or set()
        self.min_confidence = min_confidence
        self._state: dict[str, _ComponentState] = {}
        self.decisions: list[ResponseDecision] = []
        self._listeners: list[Callable[[ResponseDecision], None]] = []

    def subscribe(self, listener: Callable[[ResponseDecision], None]) -> None:
        """Register a callback invoked for every recorded decision.

        This is how the degradation manager (:mod:`repro.faults`) hears
        about escalations without the response engine depending on it.
        """
        self._listeners.append(listener)

    def handle(self, alert: SecurityAlert) -> ResponseDecision:
        """Process one alert and return (and record) the response decision.

        Alerts and decisions are reported through :mod:`repro.obs` — the
        repo-wide instrumentation idiom — rather than any ad-hoc logger,
        so they land on the same cross-layer timeline as the simulator
        events that triggered them.
        """
        state = self._state.setdefault(alert.component, _ComponentState())
        from repro.obs.events import EventKind
        from repro.obs.runtime import OBS

        if OBS.enabled:
            OBS.count("core.response.alerts")
            OBS.emit(EventKind.IDS_ALERT, alert.layer, alert.component,
                     f"{alert.attack_name} ({alert.severity.name.lower()}, "
                     f"confidence {alert.confidence:.2f})", t=alert.time,
                     attack=alert.attack_name, severity=alert.severity.name,
                     confidence=alert.confidence)

        if alert.confidence < self.min_confidence:
            decision = ResponseDecision(
                alert, ResponseAction.LOG_ONLY, 0,
                f"confidence {alert.confidence:.2f} below threshold; logging only",
            )
            return self._record(decision)

        state.alert_count += 1
        base = self.BASE_POLICY[alert.severity]
        # Safety-critical components respond one level harder (the vehicle
        # cannot rely on a human to compensate, paper §I).
        if alert.component in self.critical_components and base < ResponseAction.SAFE_STOP:
            base = ResponseAction(base + 1)

        escalation = (state.alert_count - 1) // self.escalation_threshold
        action_value = min(int(base) + escalation, int(ResponseAction.SAFE_STOP))
        action = ResponseAction(action_value)
        # Never de-escalate below a previously taken action for this component.
        if action < state.last_action:
            action = state.last_action
        state.last_action = action

        decision = ResponseDecision(
            alert, action, escalation,
            f"severity={alert.severity.name}, repeat={state.alert_count}, "
            f"critical={alert.component in self.critical_components}",
        )
        return self._record(decision)

    def _record(self, decision: ResponseDecision) -> ResponseDecision:
        """Keep the decision and report it to the observability layer."""
        self.decisions.append(decision)
        from repro.obs.events import EventKind
        from repro.obs.runtime import OBS

        if OBS.enabled:
            OBS.count("core.response.decisions")
            OBS.emit(EventKind.RESPONSE_ACTION, decision.alert.layer,
                     decision.alert.component,
                     f"{decision.action.name.lower()} ({decision.rationale})",
                     t=decision.alert.time, action=decision.action.name,
                     escalation=decision.escalation_level)
        for listener in self._listeners:
            listener(decision)
        return decision

    def component_status(self, component: str) -> ResponseAction:
        """The strongest action currently applied to ``component``."""
        state = self._state.get(component)
        return state.last_action if state else ResponseAction.LOG_ONLY

    def isolated_components(self) -> set[str]:
        """Components currently isolated or stronger."""
        return {
            name for name, state in self._state.items()
            if state.last_action >= ResponseAction.ISOLATE_COMPONENT
        }

    def reset(self, component: str) -> None:
        """Clear state for a component (e.g. after forensic clearance)."""
        self._state.pop(component, None)
