"""Static attack-campaign planner with differential analyzer cross-checks.

The paper's central claim — compromises of autonomous systems are
multi-stage and cross-layer (§VIII) — is made executable here as the
third static analyzer of the repo: a typed per-layer attack library
(:mod:`repro.redteam.attacks`) searched by a deterministic best-first
planner (:mod:`repro.redteam.planner`) into ranked end-to-end
:class:`~repro.redteam.planner.Campaign` objects, hop by hop with the
defense that would break each step.  No simulation runs: attacks are
evaluated against the :class:`~repro.lint.target.AnalysisTarget` model
and the flow-graph protection lattice, so planning a whole scenario
costs milliseconds (BENCH-REDTEAM pins it).

Campaigns surface three ways: lint-family rules RT001–RT004
(:mod:`repro.redteam.rules`, joined into ``full_catalog()``), a
schema-validated JSON/SARIF report (:mod:`repro.redteam.report`), and
``python -m repro redteam``.  The differential layer
(:mod:`repro.redteam.differential`) then asserts the three analyzers
agree — flow witnesses imply campaigns, path-clean targets are
defeated, first hops are independently flagged — turning analyzer
disagreement into a CI-failing bug class.
"""

from repro.redteam.attacks import TECHNIQUES, Attack, build_attack_library
from repro.redteam.capability import Capability, control, disrupt
from repro.redteam.differential import differential_violations, run_differential
from repro.redteam.planner import Campaign, PlanResult, plan, plan_scenario
from repro.redteam.report import (
    campaign_to_dict,
    render_campaigns,
    render_summary,
    run_redteam_campaign,
    validate_redteam_dict,
)
from repro.redteam.rules import RT_RULES

__all__ = [
    "Attack",
    "Campaign",
    "Capability",
    "PlanResult",
    "RT_RULES",
    "TECHNIQUES",
    "build_attack_library",
    "campaign_to_dict",
    "control",
    "differential_violations",
    "disrupt",
    "plan",
    "plan_scenario",
    "render_campaigns",
    "render_summary",
    "run_differential",
    "run_redteam_campaign",
    "validate_redteam_dict",
]
