"""The typed attack library: every per-layer attack, made composable.

Each :class:`Attack` is a *concrete instantiation* of one of the
techniques the paper (and the seed simulators) describe — a PKES relay
against *this* fob, a SecOC downgrade across *this* CAN link — with
typed preconditions (:class:`~repro.redteam.capability.Capability`
objects the attacker must already hold), effects (capabilities the
attack grants), an abstract cost in attacker-effort units, and the
**defense that would break the step**.  Nothing here simulates; the
library is evaluated purely against the
:class:`~repro.lint.target.AnalysisTarget` and the flow-graph
protection lattice, so building it is as cheap and as deterministic as
a lint pass.

Two template families populate the library:

* **entry attacks** (no preconditions) — conditioned on the *configured
  subsystems*: a relay only exists where a PKES system trusts LF/RSSI
  proximity, Cicada/ED-LC jamming only where an HRP receiver skips the
  integrity check, DID spoofing only where an actor is unresolvable;
* **movement attacks** (require ``control`` of the hop's source) — one
  per *open* edge of the :class:`~repro.flow.graph.FlowGraph`, with the
  technique chosen from the edge's kind, protection, and recorded
  weakness (an open SECOC edge is a downgrade/replay, an open MACsec
  edge is rekey abuse, a filtered gateway edge is forwarding abuse);
  plus the CAN availability attacks (bus-off, babbling idiot) that
  grant ``disrupt`` rather than ``control``.

Costs are relative effort, not CVSS: they only need a consistent
ordering so the planner's "cheapest campaign" ranking is meaningful and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.layers import Layer
from repro.flow.graph import FlowEdge, FlowGraph, Protection
from repro.flow.taint import FlowResult

from repro.redteam.capability import Capability, control, disrupt

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.lint.target import AnalysisTarget

__all__ = ["Attack", "build_attack_library", "TECHNIQUES"]

#: CAN-family protocols: links where frame injection and the classic
#: error-frame availability attacks (bus-off, babbling idiot) apply.
_CAN_PROTOCOLS = {"can", "canfd", "lin"}

#: technique id -> (display name, paper ref) for the whole library.
TECHNIQUES: dict[str, tuple[str, str]] = {
    "pkes-relay": ("PKES relay (LF/RSSI proximity abuse)", "§II-A"),
    "uwb-jamming": ("UWB Cicada / ED-LC jamming of the first path", "§II-A"),
    "foothold": ("foothold on an exposed component", "Fig. 1"),
    "endpoint-abuse": ("unauthenticated endpoint abuse", "§V / Fig. 8"),
    "did-spoof": ("DID spoofing of an unresolvable actor", "§IV"),
    "registry-outage": ("verifiable-data-registry outage", "§IV"),
    "insider-fabrication": ("insider fabrication on an unsigned V2X channel",
                            "§VII"),
    "link-injection": ("frame/packet injection on an unprotected link",
                       "§III / Table I"),
    "secoc-replay": ("SecOC downgrade / replay through a weak profile",
                     "§III / Fig. 5"),
    "macsec-rekey-abuse": ("MACsec PN-exhaustion rekey abuse", "§III"),
    "gateway-abuse": ("gateway-forwarding abuse through a wide whitelist",
                      "§III / Fig. 3"),
    "killchain-recon": ("kill-chain recon: traffic analysis and "
                        "directory enumeration", "§V / Fig. 8"),
    "heap-dump-theft": ("credential theft via heap dump (kill-chain "
                        "steps 4-6)", "§V / Fig. 8"),
    "credential-forgery": ("forgery through an unverifiable credential",
                           "§IV"),
    "v2x-spoof": ("V2X message spoofing into the consumer", "§VII"),
    "bus-off": ("CAN bus-off via induced error frames", "§III"),
    "babbling-idiot": ("babbling-idiot flood of a shared segment", "§III"),
}

#: Abstract attacker-effort cost per technique (relative, not CVSS).
_COSTS: dict[str, float] = {
    "pkes-relay": 2.0,
    "uwb-jamming": 3.0,
    "foothold": 5.0,
    "endpoint-abuse": 1.0,
    "did-spoof": 2.0,
    "registry-outage": 3.0,
    "insider-fabrication": 2.0,
    "link-injection": 1.0,
    "secoc-replay": 2.5,
    "macsec-rekey-abuse": 3.0,
    "gateway-abuse": 1.5,
    "killchain-recon": 1.0,
    "heap-dump-theft": 2.0,
    "credential-forgery": 2.0,
    "v2x-spoof": 1.0,
    "bus-off": 1.0,
    "babbling-idiot": 1.5,
}


@dataclass(frozen=True)
class Attack:
    """One concrete attack step: typed preconditions, effects, cost."""

    attack_id: str                       # "<technique>@<subject>", unique
    technique: str                       # key into TECHNIQUES
    name: str
    layer: Layer
    paper_ref: str
    requires: frozenset[Capability]
    grants: frozenset[Capability]
    cost: float
    defense: str                         # what would break this step
    detail: str = ""

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise ValueError(f"{self.attack_id}: cost must be positive")
        if not self.grants:
            raise ValueError(f"{self.attack_id}: attack must grant something")

    @property
    def is_entry(self) -> bool:
        return not self.requires

    @property
    def primary_grant(self) -> Capability:
        """The first granted capability in sorted order (for labels)."""
        return min(self.grants)

    def describe(self) -> str:
        granted = ", ".join(c.label for c in sorted(self.grants))
        return f"{self.name} -> {granted} (defeated by: {self.defense})"


class _LibraryBuilder:
    """Accumulates attacks, guaranteeing unique ids and sorted output."""

    def __init__(self) -> None:
        self._attacks: dict[str, Attack] = {}

    def add(self, technique: str, subject: str, *, layer: Layer,
            requires: frozenset[Capability] = frozenset(),
            grants: frozenset[Capability],
            defense: str, detail: str = "",
            cost: float | None = None) -> None:
        name, paper_ref = TECHNIQUES[technique]
        attack_id = f"{technique}@{subject}"
        if attack_id in self._attacks:
            return  # first instantiation wins (builders iterate sorted)
        self._attacks[attack_id] = Attack(
            attack_id=attack_id, technique=technique, name=name,
            layer=layer, paper_ref=paper_ref, requires=requires,
            grants=grants, cost=cost if cost is not None else _COSTS[technique],
            defense=defense, detail=detail)

    def build(self) -> tuple[Attack, ...]:
        return tuple(self._attacks[key] for key in sorted(self._attacks))


# --------------------------------------------------------------------------
# entry templates: conditioned on configured subsystems
# --------------------------------------------------------------------------

def _phy_entry_attacks(builder: _LibraryBuilder, target: "AnalysisTarget",
                       graph: FlowGraph) -> None:
    """PKES relay and UWB jamming against exposed physical components."""
    phy_sources = [n for n in graph.nodes()
                   if n.kind == "component" and n.source
                   and n.layer == Layer.PHYSICAL]
    if not phy_sources:
        return
    relay_vulnerable = any(p.policy == "lf-rssi" for p in target.pkes_systems)
    jam_vulnerable = any(not r.integrity_check for r in target.hrp_receivers)
    for node in sorted(phy_sources, key=lambda n: n.name):
        if relay_vulnerable:
            builder.add(
                "pkes-relay", node.name, layer=Layer.PHYSICAL,
                grants=frozenset({control(node.name)}),
                defense="UWB time-of-flight ranging (HRP with integrity "
                        "check, or LRP distance bounding) instead of "
                        "LF/RSSI proximity",
                detail=f"two-radio relay reaches {node.name!r} from "
                       f"parking-lot distance")
        if jam_vulnerable:
            builder.add(
                "uwb-jamming", node.name, layer=Layer.PHYSICAL,
                grants=frozenset({control(node.name)}),
                defense="enable the normalized-correlation first-path "
                        "integrity check on the HRP receiver",
                detail=f"Cicada/ED-LC pulses move the measured first path "
                       f"of {node.name!r}")


def _surface_entry_attacks(builder: _LibraryBuilder,
                           graph: FlowGraph) -> None:
    """Generic foothold on every exposed component the flow graph names.

    This is the completeness backstop for the differential gates: every
    taint *source* of the flow analyzer must admit at least one entry
    attack, or the two analyzers would disagree by construction.  The
    specialized templates above are strictly cheaper where they apply.
    """
    for node in sorted(graph.nodes(), key=lambda n: n.name):
        if not node.source:
            continue
        if node.kind == "component":
            builder.add(
                "foothold", node.name, layer=node.layer,
                grants=frozenset({control(node.name)}),
                defense="remove the exposure or authenticate every "
                        "interface of the component",
                detail=f"{node.name!r} is remotely/adjacently reachable "
                       f"({node.note or 'exposed'})")
        elif node.kind == "endpoint":
            builder.add(
                "endpoint-abuse", node.name, layer=Layer.DATA,
                grants=frozenset({control(node.name)}),
                defense="require credentials on the endpoint (or disable "
                        "it in production)",
                detail=f"{node.note} answers unauthenticated requests")
        elif node.kind == "actor":
            builder.add(
                "did-spoof", node.name, layer=Layer.SOFTWARE_PLATFORM,
                grants=frozenset({control(node.name)}),
                defense="anchor the DID in the verifiable data registry",
                detail=f"{node.name!r} cannot be resolved; anyone can "
                       f"claim it")
        elif node.kind == "channel":
            builder.add(
                "insider-fabrication", node.name, layer=Layer.COLLABORATION,
                grants=frozenset({control(node.name)}),
                defense="sign V2X messages (1609.2 certificates / "
                        "verifiable credentials) and run consistency-based "
                        "internal-attacker detection",
                detail=f"{node.note or 'unsigned channel'}; a fabricated "
                       f"participant is indistinguishable")


def _registry_entry_attacks(builder: _LibraryBuilder,
                            target: "AnalysisTarget",
                            graph: FlowGraph) -> None:
    """No registry deployed: every SSI actor can be denied resolution."""
    if target.registry is not None:
        return
    actors = [n for n in graph.nodes() if n.kind == "actor"]
    for node in sorted(actors, key=lambda n: n.name):
        builder.add(
            "registry-outage", node.name, layer=Layer.SOFTWARE_PLATFORM,
            grants=frozenset({disrupt(node.name)}),
            defense="deploy a verifiable data registry with a stale-cache "
                    "resolver (last-known-good DID documents)",
            detail=f"no registry backs {node.name!r}; resolution is a "
                   f"single point of denial")


# --------------------------------------------------------------------------
# movement templates: one attack per open flow edge
# --------------------------------------------------------------------------

def _movement_technique(edge: FlowEdge) -> tuple[str, str]:
    """Choose (technique, defense) for one open edge of the lattice."""
    if edge.kind == "interface":
        if edge.protection == Protection.SECOC and edge.weakness:
            return ("secoc-replay",
                    f"fix the profile ({edge.weakness}); deploy >=64-bit "
                    f"MACs with a nonzero freshness counter")
        if edge.protection == Protection.MACSEC and edge.weakness:
            return ("macsec-rekey-abuse",
                    f"rekey well before PN exhaustion ({edge.weakness})")
        return ("link-injection",
                "authenticate the link (SECOC/MACsec/TLS as appropriate)")
    if edge.kind == "gateway":
        return ("gateway-abuse",
                "tighten the forwarding whitelist to the ids the zone "
                "actually needs")
    if edge.kind == "http":
        return ("killchain-recon",
                "require credentials, disable debug endpoints, rate-limit "
                "enumeration")
    if edge.kind == "iam":
        return ("heap-dump-theft",
                "hold secrets in an HSM/KMS (never process memory) and "
                "strip escalation scopes")
    if edge.kind in ("credential", "provisioning"):
        return ("credential-forgery",
                "anchor issuer and subject in the registry and re-issue "
                "within a valid window")
    if edge.kind == "v2x":
        return ("v2x-spoof",
                "verify V2X signatures before fusing remote perception")
    return ("link-injection", "add an authenticated boundary on this hop")


#: movement-edge kinds mapped to the Fig. 1 layer of the *technique*;
#: plain interfaces take the layer of the node they reach.
_EDGE_LAYERS: dict[str, Layer] = {
    "gateway": Layer.NETWORK,
    "http": Layer.DATA,
    "iam": Layer.DATA,
    "credential": Layer.SOFTWARE_PLATFORM,
    "provisioning": Layer.SOFTWARE_PLATFORM,
    "v2x": Layer.COLLABORATION,
}


def _movement_attacks(builder: _LibraryBuilder, graph: FlowGraph) -> None:
    edges = sorted(graph.open_edges(), key=lambda e: (e.src, e.dst, e.kind))
    for edge in edges:
        technique, defense = _movement_technique(edge)
        layer = _EDGE_LAYERS.get(edge.kind) or graph.node(edge.dst).layer
        builder.add(
            technique, f"{edge.src}->{edge.dst}", layer=layer,
            requires=frozenset({control(edge.src)}),
            grants=frozenset({control(edge.dst)}),
            defense=defense,
            detail=edge.missing_boundary)


def _availability_attacks(builder: _LibraryBuilder, graph: FlowGraph,
                          protocols: dict[tuple[str, str], str]) -> None:
    """Bus-off / babbling idiot on open CAN-family links.

    Modeled on the seed simulators (:mod:`repro.ivn.busoff`): from a
    node with transmit access to an unprotected CAN/LIN segment, error
    frames force a peer bus-off, and a babbling flood starves *every*
    peer on the segment.  A secured link (SECOC without a recorded
    weakness, CANsec, MACsec) pairs with the IDS/bus-guardian machinery
    in this model, so only open edges qualify.
    """
    by_source: dict[str, list[FlowEdge]] = {}
    for edge in sorted(graph.open_edges(),
                       key=lambda e: (e.src, e.dst, e.kind)):
        if edge.kind != "interface":
            continue
        if protocols.get((edge.src, edge.dst), "").lower() not in _CAN_PROTOCOLS:
            continue
        builder.add(
            "bus-off", f"{edge.src}->{edge.dst}", layer=Layer.NETWORK,
            requires=frozenset({control(edge.src)}),
            grants=frozenset({disrupt(edge.dst)}),
            defense="authenticate the segment and pair it with a bus "
                    "guardian / IDS isolation response",
            detail=f"error-frame abuse from {edge.src!r} drives "
                   f"{edge.dst!r} into bus-off")
        by_source.setdefault(edge.src, []).append(edge)
    for src in sorted(by_source):
        peers = sorted({e.dst for e in by_source[src]})
        if len(peers) < 2:
            continue
        builder.add(
            "babbling-idiot", src, layer=Layer.NETWORK,
            requires=frozenset({control(src)}),
            grants=frozenset(disrupt(p) for p in peers),
            defense="rate-police transmissions (bus guardian) and "
                    "segment mixed-criticality ECUs",
            detail=f"a babbling {src!r} starves {len(peers)} peer(s) on "
                   f"the shared segment")


def _interface_protocols(
        target: "AnalysisTarget") -> dict[tuple[str, str], str]:
    if target.model is None:
        return {}
    return {(i.source, i.target): i.protocol
            for i in target.model.interfaces()}


def build_attack_library(target: "AnalysisTarget",
                         result: FlowResult) -> tuple[Attack, ...]:
    """Instantiate every applicable attack against one analyzed target.

    ``result`` is the flow analysis of the same target (the planner's
    seed): movement attacks are derived from its open edges so that the
    two static analyzers share one protection lattice — disagreement
    between them is then a *bug*, which the differential gates turn
    into a CI failure.
    """
    graph = result.graph
    builder = _LibraryBuilder()
    _phy_entry_attacks(builder, target, graph)
    _surface_entry_attacks(builder, graph)
    _registry_entry_attacks(builder, target, graph)
    _movement_attacks(builder, graph)
    _availability_attacks(builder, graph, _interface_protocols(target))
    return builder.build()
