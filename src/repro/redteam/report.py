"""Red-team campaign reports: renderers and a schema-validated document.

The JSON schema (version ``1.0``) mirrors the conventions of the other
static analyzers (:mod:`repro.lint.report`, flow's SARIF-lite)::

    {
      "version": "1.0",
      "tool": {"name": "repro-redteam", "version": "<package version>"},
      "baseSeed": <int>,
      "scenarios": [
        {
          "scenario": "<name>",
          "library": {"attacks": <int>, "entry": <int>,
                      "techniques": ["<technique>", ...]},
          "defeated": <bool>,
          "campaigns": [
            {"rank", "sink", "sinkKind", "entry", "totalCost",
             "multiStage", "layers",
             "steps": [{"attackId", "technique", "name", "layer",
                        "paperRef", "cost", "defense", "detail",
                        "grants"}]}
          ],
          "disruptions": [ <same shape as campaigns> ]
        }
      ],
      "summary": {"scenarioCount", "campaignCount",
                  "defeatedScenarios", "cheapest"}
    }

``baseSeed`` is carried verbatim: the planner is purely static, so the
seed never perturbs the output — BENCH-REDTEAM pins exactly that
(byte-identical documents per (scenario, base seed)).

:func:`validate_redteam_dict` checks a parsed document against the
schema and raises :class:`~repro.lint.report.SchemaError` on any
violation, the same contract the CI gates rely on for lint and runner
reports.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.layers import Layer
from repro.lint.report import SchemaError

from repro.redteam.planner import Campaign, PlanResult, plan_scenario

__all__ = ["REDTEAM_SCHEMA_VERSION", "REDTEAM_TOOL_NAME",
           "campaign_to_dict", "run_redteam_campaign",
           "validate_redteam_dict", "render_summary", "render_campaigns"]

REDTEAM_SCHEMA_VERSION = "1.0"
REDTEAM_TOOL_NAME = "repro-redteam"


# --------------------------------------------------------------------------
# document construction
# --------------------------------------------------------------------------

def campaign_to_dict(campaign: Campaign, result: PlanResult,
                     rank: int) -> dict:
    """One ranked campaign as a JSON-ready object."""
    return {
        "rank": rank,
        "sink": campaign.sink,
        "sinkKind": result.graph.node(campaign.sink).kind,
        "entry": campaign.entry_node,
        "totalCost": campaign.total_cost,
        "multiStage": campaign.multi_stage,
        "layers": list(campaign.layers),
        "steps": [
            {
                "attackId": step.attack_id,
                "technique": step.technique,
                "name": step.name,
                "layer": step.layer.name.lower(),
                "paperRef": step.paper_ref,
                "cost": step.cost,
                "defense": step.defense,
                "detail": step.detail,
                "grants": [c.label for c in sorted(step.grants)],
            }
            for step in campaign.steps
        ],
    }


def _scenario_to_dict(result: PlanResult) -> dict:
    return {
        "scenario": result.scenario,
        "library": {
            "attacks": len(result.library),
            "entry": sum(1 for a in result.library if a.is_entry),
            "techniques": sorted({a.technique for a in result.library}),
        },
        "defeated": result.defeated,
        "campaigns": [campaign_to_dict(c, result, rank)
                      for rank, c in enumerate(result.campaigns, start=1)],
        "disruptions": [campaign_to_dict(c, result, rank)
                        for rank, c in enumerate(result.disruptions, start=1)],
    }


def run_redteam_campaign(names: Sequence[str], *,
                         base_seed: int = 0) -> dict:
    """Plan every named scenario and build the full campaign document."""
    from repro import __version__

    results = [plan_scenario(name) for name in names]
    campaign_count = sum(len(r.campaigns) for r in results)
    cheapest: dict | None = None
    for result in results:
        for campaign in result.campaigns:
            if cheapest is None or ((campaign.total_cost, result.scenario,
                                     campaign.sink)
                                    < (cheapest["totalCost"],
                                       cheapest["scenario"],
                                       cheapest["sink"])):
                cheapest = {"scenario": result.scenario,
                            "sink": campaign.sink,
                            "totalCost": campaign.total_cost}
    return {
        "version": REDTEAM_SCHEMA_VERSION,
        "tool": {"name": REDTEAM_TOOL_NAME, "version": __version__},
        "baseSeed": base_seed,
        "scenarios": [_scenario_to_dict(r) for r in results],
        "summary": {
            "scenarioCount": len(results),
            "campaignCount": campaign_count,
            "defeatedScenarios": sorted(r.scenario for r in results
                                        if r.defeated),
            "cheapest": cheapest,
        },
    }


# --------------------------------------------------------------------------
# plain-text renderers (CLI output)
# --------------------------------------------------------------------------

def render_summary(result: PlanResult) -> str:
    """One-paragraph overview: library size, verdict, cheapest campaign."""
    entry = sum(1 for a in result.library if a.is_entry)
    lines = [
        f"red-team plan for {result.scenario!r}:",
        f"  attack library: {len(result.library)} attack(s) "
        f"({entry} entry), "
        f"{len({a.technique for a in result.library})} technique(s)",
        f"  capabilities acquired: {len(result.acquired)}",
    ]
    if result.defeated:
        lines.append("  verdict: DEFEATED — no campaign reaches any sink")
    else:
        best = result.campaigns[0]
        lines.append(f"  verdict: {len(result.campaigns)} campaign(s), "
                     f"{len(result.disruptions)} disruption(s)")
        lines.append(f"  cheapest: {best.entry_node} => {best.sink} "
                     f"({len(best.steps)} step(s), cost {best.total_cost:g})")
    return "\n".join(lines)


def render_campaigns(result: PlanResult, *, top: int | None = None) -> str:
    """Every ranked campaign, hop by hop with the breaking defense."""
    if result.defeated and not result.disruptions:
        return (f"{result.scenario}: defeated — the full attack library "
                f"yields no campaign")
    blocks = []
    campaigns = result.campaigns if top is None else result.campaigns[:top]
    for rank, campaign in enumerate(campaigns, start=1):
        lines = [f"#{rank} {campaign.entry_node} => {campaign.sink} "
                 f"(cost {campaign.total_cost:g}, "
                 f"{len(campaign.steps)} step(s), "
                 f"layers: {', '.join(campaign.layers)})"]
        lines += [f"  {line}" for line in campaign.describe()]
        blocks.append("\n".join(lines))
    disruptions = (result.disruptions if top is None
                   else result.disruptions[:top])
    for rank, campaign in enumerate(disruptions, start=1):
        lines = [f"D{rank} {campaign.entry_node} =/> {campaign.sink} "
                 f"(availability, cost {campaign.total_cost:g})"]
        lines += [f"  {line}" for line in campaign.describe()]
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


# --------------------------------------------------------------------------
# schema validation
# --------------------------------------------------------------------------

_LAYER_NAMES = {layer.name.lower() for layer in Layer}
_NODE_KINDS = {"component", "service", "endpoint", "datastore", "actor",
               "channel"}
_STEP_KEYS = {"attackId", "technique", "name", "layer", "paperRef",
              "cost", "defense", "detail", "grants"}
_CAMPAIGN_KEYS = {"rank", "sink", "sinkKind", "entry", "totalCost",
                  "multiStage", "layers", "steps"}
_SCENARIO_KEYS = {"scenario", "library", "defeated", "campaigns",
                  "disruptions"}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_step(step: dict, where: str) -> None:
    _require(isinstance(step, dict), f"{where}: step must be an object")
    _require(set(step) == _STEP_KEYS,
             f"{where}: keys {sorted(step)} != {sorted(_STEP_KEYS)}")
    for key in ("attackId", "technique", "name", "paperRef", "defense",
                "detail"):
        _require(isinstance(step[key], str), f"{where}: {key} must be a string")
    _require(step["layer"] in _LAYER_NAMES,
             f"{where}: bad layer {step['layer']!r}")
    _require(_is_number(step["cost"]) and step["cost"] > 0,
             f"{where}: cost must be a positive number")
    grants = step["grants"]
    _require(isinstance(grants, list) and grants,
             f"{where}: grants must be a non-empty list")
    for grant in grants:
        _require(isinstance(grant, str) and ":" in grant,
                 f"{where}: grant {grant!r} must look like 'kind:node'")


def _validate_campaign(entry: dict, where: str, rank: int) -> None:
    _require(isinstance(entry, dict), f"{where}: campaign must be an object")
    _require(set(entry) == _CAMPAIGN_KEYS,
             f"{where}: keys {sorted(entry)} != {sorted(_CAMPAIGN_KEYS)}")
    _require(entry["rank"] == rank, f"{where}: rank must be {rank}")
    for key in ("sink", "entry"):
        _require(isinstance(entry[key], str) and entry[key],
                 f"{where}: {key} must be a non-empty string")
    _require(entry["sinkKind"] in _NODE_KINDS,
             f"{where}: bad sinkKind {entry['sinkKind']!r}")
    _require(_is_number(entry["totalCost"]) and entry["totalCost"] > 0,
             f"{where}: totalCost must be a positive number")
    _require(isinstance(entry["multiStage"], bool),
             f"{where}: multiStage must be a bool")
    layers = entry["layers"]
    _require(isinstance(layers, list) and layers,
             f"{where}: layers must be a non-empty list")
    for layer in layers:
        _require(layer in _LAYER_NAMES, f"{where}: bad layer {layer!r}")
    steps = entry["steps"]
    _require(isinstance(steps, list) and steps,
             f"{where}: steps must be a non-empty list")
    for index, step in enumerate(steps):
        _validate_step(step, f"{where}.steps[{index}]")
    _require(entry["multiStage"] == (len(steps) > 1),
             f"{where}: multiStage inconsistent with len(steps)")
    total = sum(step["cost"] for step in steps)
    _require(abs(total - entry["totalCost"]) < 1e-9,
             f"{where}: totalCost must equal the sum of step costs")


def _validate_scenario(entry: dict, where: str) -> None:
    _require(isinstance(entry, dict), f"{where}: scenario must be an object")
    _require(set(entry) == _SCENARIO_KEYS,
             f"{where}: keys {sorted(entry)} != {sorted(_SCENARIO_KEYS)}")
    _require(isinstance(entry["scenario"], str) and entry["scenario"],
             f"{where}: scenario must be a non-empty string")
    library = entry["library"]
    _require(isinstance(library, dict)
             and set(library) == {"attacks", "entry", "techniques"},
             f"{where}: library must be {{attacks, entry, techniques}}")
    for key in ("attacks", "entry"):
        _require(isinstance(library[key], int) and library[key] >= 0,
                 f"{where}: library.{key} must be a non-negative int")
    _require(isinstance(library["techniques"], list),
             f"{where}: library.techniques must be a list")
    _require(isinstance(entry["defeated"], bool),
             f"{where}: defeated must be a bool")
    _require(entry["defeated"] == (not entry["campaigns"]),
             f"{where}: defeated inconsistent with campaigns")
    for section in ("campaigns", "disruptions"):
        _require(isinstance(entry[section], list),
                 f"{where}: {section} must be a list")
        for index, campaign in enumerate(entry[section]):
            _validate_campaign(campaign, f"{where}.{section}[{index}]",
                               index + 1)


def validate_redteam_dict(document: dict) -> None:
    """Raise :class:`SchemaError` unless ``document`` matches the schema."""
    _require(isinstance(document, dict), "report must be an object")
    required = {"version", "tool", "baseSeed", "scenarios", "summary"}
    _require(set(document) == required,
             f"top-level keys {sorted(document)} != {sorted(required)}")
    _require(document["version"] == REDTEAM_SCHEMA_VERSION,
             f"unsupported schema version {document['version']!r}")
    tool = document["tool"]
    _require(isinstance(tool, dict) and set(tool) == {"name", "version"},
             "tool must be {name, version}")
    _require(tool["name"] == REDTEAM_TOOL_NAME,
             f"unexpected tool name {tool['name']!r}")
    _require(isinstance(document["baseSeed"], int),
             "baseSeed must be an int")
    scenarios = document["scenarios"]
    _require(isinstance(scenarios, list) and scenarios,
             "scenarios must be a non-empty list")
    for index, entry in enumerate(scenarios):
        _validate_scenario(entry, f"scenarios[{index}]")

    summary = document["summary"]
    summary_keys = {"scenarioCount", "campaignCount", "defeatedScenarios",
                    "cheapest"}
    _require(isinstance(summary, dict) and set(summary) == summary_keys,
             f"summary keys must be {sorted(summary_keys)}")
    _require(summary["scenarioCount"] == len(scenarios),
             "summary.scenarioCount must equal len(scenarios)")
    campaign_count = sum(len(s["campaigns"]) for s in scenarios)
    _require(summary["campaignCount"] == campaign_count,
             "summary.campaignCount must equal the total campaign count")
    defeated = summary["defeatedScenarios"]
    _require(isinstance(defeated, list), "defeatedScenarios must be a list")
    expected = sorted(s["scenario"] for s in scenarios if s["defeated"])
    _require(defeated == expected,
             "defeatedScenarios must list the defeated scenarios, sorted")
    cheapest = summary["cheapest"]
    if campaign_count == 0:
        _require(cheapest is None, "cheapest must be null with no campaigns")
    else:
        _require(isinstance(cheapest, dict)
                 and set(cheapest) == {"scenario", "sink", "totalCost"},
                 "cheapest must be {scenario, sink, totalCost}")
        _require(_is_number(cheapest["totalCost"]),
                 "cheapest.totalCost must be a number")
