"""Deterministic best-first campaign planning over capability states.

The planner answers the paper's multi-stage question statically: *which
concrete sequence of attacks, at what total cost, carries an attacker
from outside the system to each safety-critical sink?*  It runs a
Dijkstra-style search over **capabilities** (not graph nodes): an
attack becomes enabled once every capability it requires has been
acquired, and then offers its grants at

    cost(attack) + sum(cost of each required capability)

— a documented approximation (prerequisites are priced independently;
a shared prerequisite is paid once per consumer during the search but
**counted once** in the reconstructed campaign, whose total is the sum
of its unique steps).  All tie-breaking is lexicographic, so identical
inputs always produce byte-identical campaign rankings — the property
BENCH-REDTEAM pins.

Goals come from the flow analyzer: every sink of the unified flow
graph, with the path witnesses of :func:`repro.flow.taint.analyze`
seeding the expectation that each witnessed sink must be planner-
reachable (the first differential gate).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.flow.graph import SINK_CRITICALITY, FlowGraph
from repro.flow.taint import FlowResult, analyze
from repro.lint.target import AnalysisTarget

from repro.redteam.attacks import Attack, build_attack_library
from repro.redteam.capability import Capability, control, disrupt

__all__ = ["Campaign", "PlanResult", "plan", "plan_scenario"]


@dataclass(frozen=True)
class Campaign:
    """One ranked end-to-end compromise: hop-by-hop attacks to a goal."""

    scenario: str
    goal: Capability
    steps: tuple[Attack, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a campaign needs at least one step")

    @property
    def sink(self) -> str:
        return self.goal.node

    @property
    def total_cost(self) -> float:
        return sum(step.cost for step in self.steps)

    @property
    def entry(self) -> Attack:
        return self.steps[0]

    @property
    def entry_node(self) -> str:
        return self.entry.primary_grant.node

    @property
    def multi_stage(self) -> bool:
        return len(self.steps) > 1

    @property
    def layers(self) -> tuple[str, ...]:
        """Distinct Fig. 1 layers the campaign crosses, in stack order."""
        seen = sorted({step.layer for step in self.steps})
        return tuple(layer.name.lower() for layer in seen)

    def describe(self) -> list[str]:
        """Human-readable hop lines with the per-step breaking defense."""
        lines = []
        for index, step in enumerate(self.steps, start=1):
            granted = ", ".join(c.label for c in sorted(step.grants))
            lines.append(f"[{index}] {step.name} ({step.paper_ref}, "
                         f"cost {step.cost:g}) => {granted}")
            lines.append(f"    defeated by: {step.defense}")
        return lines


@dataclass
class PlanResult:
    """Everything the planner proved about one scenario."""

    scenario: str
    flow: FlowResult
    library: tuple[Attack, ...]
    #: capability -> cheapest acquisition cost found by the search.
    acquired: dict[Capability, float] = field(default_factory=dict)
    #: capability -> the attack through which it was (first) acquired.
    parents: dict[Capability, Attack] = field(default_factory=dict)
    #: ranked compromises: one per reachable control-sink, cheapest first.
    campaigns: list[Campaign] = field(default_factory=list)
    #: availability attacks: one per disruptable safety-critical sink.
    disruptions: list[Campaign] = field(default_factory=list)

    @property
    def graph(self) -> FlowGraph:
        return self.flow.graph

    @property
    def defeated(self) -> bool:
        """True when the full library yields no campaign to any sink."""
        return not self.campaigns

    def campaign_for(self, sink: str) -> Campaign | None:
        for campaign in self.campaigns:
            if campaign.sink == sink:
                return campaign
        return None

    def campaign_sinks(self) -> set[str]:
        return {campaign.sink for campaign in self.campaigns}


def _search(library: tuple[Attack, ...]) -> tuple[
        dict[Capability, float], dict[Capability, Attack]]:
    """Best-first acquisition: cheapest cost per capability + parents."""
    acquired: dict[Capability, float] = {}
    parents: dict[Capability, Attack] = {}
    #: how many requirements each attack still waits on
    waiting = {attack.attack_id: len(attack.requires) for attack in library}
    by_requirement: dict[Capability, list[Attack]] = {}
    for attack in library:
        for requirement in sorted(attack.requires):
            by_requirement.setdefault(requirement, []).append(attack)

    best: dict[Capability, tuple[float, str]] = {}
    heap: list[tuple[float, Capability]] = []

    def offer(capability: Capability, cost: float, attack: Attack) -> None:
        known = best.get(capability)
        if known is not None and (known[0], known[1]) <= (cost, attack.attack_id):
            return
        best[capability] = (cost, attack.attack_id)
        parents[capability] = attack
        heapq.heappush(heap, (cost, capability))

    def enable(attack: Attack) -> None:
        cost = attack.cost + sum(acquired[r] for r in attack.requires)
        for capability in sorted(attack.grants):
            offer(capability, cost, attack)

    for attack in library:
        if attack.is_entry:
            enable(attack)

    while heap:
        cost, capability = heapq.heappop(heap)
        if capability in acquired:
            continue
        if best[capability][0] < cost:
            continue  # stale entry; a cheaper offer superseded it
        acquired[capability] = cost
        for attack in by_requirement.get(capability, ()):
            waiting[attack.attack_id] -= 1
            if waiting[attack.attack_id] == 0:
                enable(attack)
    return acquired, parents


def _reconstruct(scenario: str, goal: Capability,
                 acquired: dict[Capability, float],
                 parents: dict[Capability, Attack]) -> Campaign | None:
    """Walk parent pointers back from ``goal`` into an ordered campaign.

    The closure may share prerequisites between steps; each attack
    appears once, ordered by the acquisition cost of the capability it
    was used to obtain (entry attacks first), with lexicographic
    tie-breaks for determinism.
    """
    if goal not in acquired:
        return None
    ordered: dict[str, tuple[float, Attack]] = {}
    stack = [goal]
    while stack:
        capability = stack.pop()
        attack = parents[capability]
        known = ordered.get(attack.attack_id)
        rank = acquired[capability]
        if known is None or rank < known[0]:
            ordered[attack.attack_id] = (rank, attack)
            stack.extend(sorted(attack.requires))
    steps = tuple(attack for _, attack in sorted(
        ordered.values(), key=lambda pair: (pair[0], pair[1].attack_id)))
    return Campaign(scenario=scenario, goal=goal, steps=steps)


def plan(target: AnalysisTarget, *,
         result: FlowResult | None = None) -> PlanResult:
    """Full pipeline: flow-seed, library, search, ranked campaigns."""
    flow_result = analyze(target) if result is None else result
    library = build_attack_library(target, flow_result)
    acquired, parents = _search(library)
    plan_result = PlanResult(scenario=target.name, flow=flow_result,
                             library=library, acquired=acquired,
                             parents=parents)

    graph = flow_result.graph
    sinks = sorted(graph.sinks(), key=lambda n: n.name)
    for node in sinks:
        campaign = _reconstruct(target.name, control(node.name),
                                acquired, parents)
        if campaign is not None:
            plan_result.campaigns.append(campaign)
    plan_result.campaigns.sort(key=lambda c: (c.total_cost, c.sink))

    for node in sinks:
        if node.kind != "component" or node.criticality < SINK_CRITICALITY:
            continue
        disruption = _reconstruct(target.name, disrupt(node.name),
                                  acquired, parents)
        if disruption is not None:
            plan_result.disruptions.append(disruption)
    plan_result.disruptions.sort(key=lambda c: (c.total_cost, c.sink))
    return plan_result


def plan_scenario(name: str) -> PlanResult:
    """Plan one of the shipped lint scenarios by name."""
    from repro.lint.scenarios import build_scenario

    return plan(build_scenario(name))
