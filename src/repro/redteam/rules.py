"""The RT rule family: planner findings surfaced through the linter.

Each rule plans the whole attack campaign for the target
(:func:`repro.redteam.planner.plan`) and reports through the ordinary
lint machinery, so RT findings baseline, fingerprint, gate, and
serialize exactly like every other rule family.  Subjects are stable
``entry=>sink`` labels; messages carry the ranked hop-by-hop campaign
with the defense that would break each step, because a campaign finding
without its chain is unactionable.

``repro.lint.rules`` extends these into the shared ``CATALOG`` through
the lazy ``full_catalog()``; this module must therefore never import
``repro.lint.rules`` (only the engine and target adapters) or the
catalog would cycle.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.core.layers import Layer
from repro.flow.graph import SINK_CRITICALITY
from repro.lint.engine import Rule, Severity
from repro.lint.target import AnalysisTarget

from repro.redteam.planner import Campaign, plan

__all__ = ["RT_RULES"]

RT_RULES: list[Rule] = []

_CheckFn = Callable[[AnalysisTarget], Iterable[tuple[str, str]]]


def _rule(rule_id: str, title: str, *, layer: Layer, severity: Severity,
          paper_ref: str, remediation: str) -> Callable[[_CheckFn], _CheckFn]:
    def decorator(check: _CheckFn) -> _CheckFn:
        RT_RULES.append(Rule(rule_id, title, layer, severity,
                             paper_ref, remediation, check))
        return check

    return decorator


def _campaign_message(campaign: Campaign, *, verb: str) -> str:
    lines = [f"ranked campaign {verb} {campaign.sink!r} in "
             f"{len(campaign.steps)} step(s), total cost "
             f"{campaign.total_cost:g}"]
    lines += [f"  {line}" for line in campaign.describe()]
    return "\n".join(lines)


def _subject(campaign: Campaign) -> str:
    return f"{campaign.entry_node}=>{campaign.sink}"


@_rule("RT001", "attack campaign compromises safety-critical component",
       layer=Layer.NETWORK, severity=Severity.CRITICAL,
       paper_ref="§III / §VIII",
       remediation="break the cheapest step: every hop lists the defense "
                   "that defeats it; deploying any one severs the chain")
def rt_campaign_reaches_critical(
        target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    result = plan(target)
    for campaign in result.campaigns:
        node = result.graph.node(campaign.sink)
        if node.kind != "component" or node.criticality < SINK_CRITICALITY:
            continue
        yield _subject(campaign), _campaign_message(campaign,
                                                    verb="compromises")


@_rule("RT002", "attack campaign reaches personal-data store",
       layer=Layer.DATA, severity=Severity.HIGH,
       paper_ref="§V / Fig. 8",
       remediation="require authentication on the entry endpoint and move "
                   "bucket-unlocking secrets out of process memory")
def rt_campaign_reaches_datastore(
        target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    result = plan(target)
    for campaign in result.campaigns:
        node = result.graph.node(campaign.sink)
        if node.kind != "datastore":
            continue
        yield _subject(campaign), _campaign_message(campaign,
                                                    verb="exfiltrates")


@_rule("RT003", "safety-critical ECU can be forced off the bus",
       layer=Layer.NETWORK, severity=Severity.MEDIUM,
       paper_ref="§III",
       remediation="authenticate the shared segment and deploy a bus "
                   "guardian / IDS isolation response for error-frame abuse")
def rt_sink_disruptable(
        target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    result = plan(target)
    for campaign in result.disruptions:
        yield _subject(campaign), _campaign_message(campaign, verb="disrupts")


@_rule("RT004", "multi-stage campaign crosses architecture layers",
       layer=Layer.SYSTEM_OF_SYSTEMS, severity=Severity.MEDIUM,
       paper_ref="§VIII",
       remediation="defend in depth: a single-layer defense cannot break a "
                   "chain that hops layers; harden one step at each layer "
                   "the campaign crosses")
def rt_cross_layer_campaign(
        target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    result = plan(target)
    for campaign in result.campaigns:
        if not campaign.multi_stage or len(campaign.layers) < 2:
            continue
        yield (_subject(campaign),
               f"campaign to {campaign.sink!r} crosses "
               f"{len(campaign.layers)} layers "
               f"({', '.join(campaign.layers)}) in "
               f"{len(campaign.steps)} steps — "
               + _campaign_message(campaign, verb="compromises"))
