"""Capabilities: the typed currency of the attack-campaign planner.

A campaign is not a path through a graph — it is a sequence of attacks,
each of which *requires* capabilities the attacker has already acquired
and *grants* new ones.  Two kinds suffice for every attack the paper
describes:

* ``control`` — the attacker executes or injects traffic at a node of
  the unified flow graph (a compromised ECU, an abused endpoint, a
  spoofed DID, a fabricated V2X participant);
* ``disrupt`` — the attacker can deny the node's service without
  controlling it (bus-off, babbling idiot, registry outage).

Capabilities are frozen and totally ordered so every planner structure
(heaps, dicts, reconstruction) iterates deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CONTROL", "DISRUPT", "Capability", "control", "disrupt"]

#: Capability kinds, ordered: control subsumes nothing automatically —
#: an attack that needs bus *control* cannot run from mere disruption.
CONTROL = "control"
DISRUPT = "disrupt"


@dataclass(frozen=True, order=True)
class Capability:
    """One attacker capability over one flow-graph node."""

    kind: str   # CONTROL | DISRUPT
    node: str   # flow-graph node name

    def __post_init__(self) -> None:
        if self.kind not in (CONTROL, DISRUPT):
            raise ValueError(f"unknown capability kind {self.kind!r}")

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.node}"


def control(node: str) -> Capability:
    return Capability(CONTROL, node)


def disrupt(node: str) -> Capability:
    return Capability(DISRUPT, node)
