"""Differential gates: the three static analyzers must agree.

The repo now carries three independent static views of the same target:
rule checks (:mod:`repro.lint`), taint witnesses (:mod:`repro.flow`),
and planned campaigns (:mod:`repro.redteam`).  Each can be wrong alone;
together they cross-check.  This module turns *disagreement between
analyzers* into a first-class, CI-failing bug class via three
properties:

1. **witness ⇒ campaign** — every flow path witness implies at least
   one planner-reachable campaign to the same sink (the planner's
   movement attacks are built from the same open edges the taint walks,
   so a witnessed sink the planner cannot reach means the attack
   library has a hole);
2. **clean ⇔ defeated** — a path-clean target admits zero campaigns,
   and conversely every campaign's sink is either flow-witnessed or is
   itself an untrusted flow source (a sink that doubles as a source
   needs no path, so flow legitimately emits no witness for it);
3. **first hop flagged** — every campaign's entry node is already
   flagged by the *other* analyzers: it is a flow-graph source, or it
   is named by a lint finding from the non-RT catalog.  (RT rules are
   deliberately excluded: including them would make the check
   self-satisfying.)

:func:`differential_violations` evaluates all three for one target and
returns human-readable violation strings (empty == analyzers agree);
:func:`run_differential` sweeps scenarios for the CLI/CI gate.
"""

from __future__ import annotations

from typing import Sequence

from repro.flow.taint import FlowResult, analyze
from repro.lint.engine import Linter
from repro.lint.target import AnalysisTarget

from repro.redteam.planner import PlanResult, plan

__all__ = ["differential_violations", "run_differential"]


def _non_rt_linter() -> Linter:
    """The lint view *without* the RT family (no self-satisfaction)."""
    from repro.flow.rules import FLOW_RULES
    from repro.lint.rules import CATALOG

    return Linter(list(CATALOG) + list(FLOW_RULES))


def _witness_implies_campaign(flow: FlowResult,
                              planned: PlanResult) -> list[str]:
    violations = []
    reachable = planned.campaign_sinks()
    for sink in sorted({w.sink for w in flow.witnesses}):
        if sink not in reachable:
            violations.append(
                f"witness=>campaign: flow proves a path to {sink!r} but "
                f"the planner finds no campaign reaching it")
    return violations


def _clean_iff_defeated(flow: FlowResult, planned: PlanResult) -> list[str]:
    violations = []
    if flow.path_clean and not planned.defeated:
        sinks = ", ".join(sorted(planned.campaign_sinks()))
        violations.append(
            f"clean<=>defeated: flow says PATH-CLEAN but the planner "
            f"reaches: {sinks}")
    witnessed = {w.sink for w in flow.witnesses}
    source_names = {n.name for n in flow.graph.sources()}
    for campaign in planned.campaigns:
        if campaign.sink in witnessed or campaign.sink in source_names:
            continue
        violations.append(
            f"clean<=>defeated: campaign reaches {campaign.sink!r} but "
            f"flow has no witness for it and the sink is not itself an "
            f"untrusted source")
    return violations


def _first_hop_flagged(target: AnalysisTarget, flow: FlowResult,
                       planned: PlanResult) -> list[str]:
    if not planned.campaigns:
        return []
    source_names = {n.name for n in flow.graph.sources()}
    report = _non_rt_linter().run(target)
    flagged_text = [f"{f.subject} {f.message}" for f in report.findings]
    violations = []
    for campaign in planned.campaigns:
        entry = campaign.entry_node
        if entry in source_names:
            continue
        if any(entry in text for text in flagged_text):
            continue
        violations.append(
            f"first-hop-flagged: campaign to {campaign.sink!r} enters at "
            f"{entry!r}, which neither flow (not a source) nor lint "
            f"(no finding names it) flags")
    return violations


def differential_violations(target: AnalysisTarget, *,
                            flow_result: FlowResult | None = None,
                            plan_result: PlanResult | None = None,
                            ) -> list[str]:
    """All analyzer disagreements for one target (empty == agreement)."""
    flow = analyze(target) if flow_result is None else flow_result
    planned = plan(target, result=flow) if plan_result is None else plan_result
    violations = _witness_implies_campaign(flow, planned)
    violations += _clean_iff_defeated(flow, planned)
    violations += _first_hop_flagged(target, flow, planned)
    return violations


def run_differential(names: Sequence[str]) -> dict[str, list[str]]:
    """Scenario name -> violations, for the CLI/CI differential gate."""
    from repro.lint.scenarios import build_scenario

    return {name: differential_violations(build_scenario(name))
            for name in names}
