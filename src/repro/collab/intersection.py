"""Competing collaborative systems at an intersection (paper §VII-A).

"Assuming these systems will 'honestly' collaborate is overly
simplistic ... they will also compete for resources, as each system is
programmed to optimize resource usage ... Such a situation would require
strict national and international legislation."

The model is a four-way intersection as a shared resource: vehicles
arrive on four approaches, and per time step the intersection grants
crossing to one approach. Vehicle *policies*:

* ``cooperative`` — yields per the first-come-first-served norm;
* ``selfish`` — claims priority whenever possible (legal-but-unethical
  nosing in), preempting cooperative traffic;
* ``deadlock-prone`` — over-polite: yields even when it has right of
  way, which with four such vehicles at once reproduces the paper's
  "different cars stuck at an intersection, each waiting for the other".

A ``regulated`` flag imposes the common-directive arbiter (strict FCFS
with anti-starvation), modeling the legislation the paper calls for.
The EXP-C1 bench compares throughput, fairness (per-approach wait), and
deadlock occurrence across policy mixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rng import python_rng

__all__ = ["Arrival", "IntersectionResult", "IntersectionSim"]

_POLICIES = ("cooperative", "selfish", "deadlock-prone")


@dataclass(frozen=True)
class Arrival:
    """One vehicle arriving at the intersection."""

    time: int
    approach: int          # 0..3
    policy: str

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        if not 0 <= self.approach <= 3:
            raise ValueError("approach must be 0..3")


@dataclass(frozen=True)
class IntersectionResult:
    """Aggregate outcome of one simulation."""

    crossed: int
    mean_wait: float
    max_wait: int
    waits_by_policy: dict
    deadlock_steps: int
    preemptions: int

    @property
    def deadlocked(self) -> bool:
        return self.deadlock_steps > 0


@dataclass
class IntersectionSim:
    """Discrete-time four-way intersection simulation.

    Args:
        regulated: impose the common-directive arbiter (strict FCFS +
            anti-starvation); without it, selfish vehicles preempt and
            over-polite clusters can deadlock.
        crossing_time: steps one crossing occupies the box.
    """

    regulated: bool = False
    crossing_time: int = 2
    seed_label: str = "intersection"
    _rng: object = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = python_rng(self.seed_label)

    def generate_arrivals(self, n_vehicles: int, *, horizon: int = 200,
                          policy_mix: dict | None = None) -> list[Arrival]:
        """Random arrivals with the given policy mix (fractions sum to 1)."""
        mix = policy_mix or {"cooperative": 1.0}
        if abs(sum(mix.values()) - 1.0) > 1e-9:
            raise ValueError("policy mix must sum to 1")
        policies = list(mix)
        weights = [mix[p] for p in policies]
        arrivals = []
        for _ in range(n_vehicles):
            policy = self._rng.choices(policies, weights=weights)[0]
            arrivals.append(Arrival(
                time=self._rng.randrange(horizon),
                approach=self._rng.randrange(4),
                policy=policy,
            ))
        return sorted(arrivals, key=lambda a: (a.time, a.approach))

    def run(self, arrivals: list[Arrival], *, max_steps: int = 10_000) -> IntersectionResult:
        """Simulate until everyone crossed or ``max_steps`` elapse."""
        queues: list[list[Arrival]] = [[], [], [], []]
        pending = sorted(arrivals, key=lambda a: a.time)
        waits: list[tuple[str, int]] = []
        box_free_at = 0
        deadlock_steps = 0
        preemptions = 0
        crossed = 0
        step = 0
        idx = 0
        while step < max_steps and (idx < len(pending) or any(queues)):
            while idx < len(pending) and pending[idx].time <= step:
                queues[pending[idx].approach].append(pending[idx])
                idx += 1
            if step >= box_free_at:
                heads = [(q[0], approach) for approach, q in enumerate(queues) if q]
                if heads:
                    chosen = self._arbitrate(heads)
                    if chosen is None:
                        deadlock_steps += 1
                    else:
                        vehicle, approach = chosen
                        fcfs = min(heads, key=lambda h: (h[0].time, h[1]))
                        if (vehicle, approach) != fcfs:
                            preemptions += 1
                        queues[approach].pop(0)
                        waits.append((vehicle.policy, step - vehicle.time))
                        crossed += 1
                        box_free_at = step + self.crossing_time
            step += 1

        by_policy: dict[str, list[int]] = {}
        for policy, wait in waits:
            by_policy.setdefault(policy, []).append(wait)
        return IntersectionResult(
            crossed=crossed,
            mean_wait=sum(w for _, w in waits) / len(waits) if waits else 0.0,
            max_wait=max((w for _, w in waits), default=0),
            waits_by_policy={
                policy: sum(ws) / len(ws) for policy, ws in by_policy.items()
            },
            deadlock_steps=deadlock_steps,
            preemptions=preemptions,
        )

    def _arbitrate(self, heads: list[tuple[Arrival, int]]) -> tuple[Arrival, int] | None:
        """Decide who crosses this step; None models a deadlock step."""
        if self.regulated:
            # Common directive: strict FCFS, ties by approach index.
            return min(heads, key=lambda h: (h[0].time, h[1]))
        selfish = [h for h in heads if h[0].policy == "selfish"]
        if selfish:
            # A selfish vehicle noses in ahead of the FCFS order.
            return min(selfish, key=lambda h: (h[0].time, h[1]))
        assertive = [h for h in heads if h[0].policy != "deadlock-prone"]
        if assertive:
            return min(assertive, key=lambda h: (h[0].time, h[1]))
        # Everyone is over-polite: if several deadlock-prone vehicles
        # face each other, they all wait (the paper's stuck intersection).
        if len(heads) >= 2:
            return None
        return heads[0]
