"""Collaborative perception world and V2V sharing (paper §VII, ref [47]).

"Sensor data (e.g., from cameras and LiDAR) collected by one autonomous
vehicle can be shared with other autonomous vehicles to achieve
collaborative perception, enhancing overall efficiency and safety."

The model is a 2-D world with point objects and vehicles that each see
objects within sensing range (noisy, with occasional misses), broadcast
their detections, and fuse everyone's shares.  The security layer —
credentials, attackers, and detection — builds on top in
:mod:`repro.collab.attacks` and :mod:`repro.collab.detection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rng import numpy_rng

__all__ = ["WorldObject", "SharedDetection", "CollabVehicle", "PerceptionWorld"]


@dataclass(frozen=True)
class WorldObject:
    """A ground-truth object (pedestrian, vehicle, obstacle)."""

    object_id: int
    x: float
    y: float


@dataclass(frozen=True)
class SharedDetection:
    """One detection as broadcast over V2V."""

    reporter: str
    x: float
    y: float


@dataclass
class CollabVehicle:
    """A vehicle with local sensing that shares detections.

    Args:
        name: vehicle identity (its V2V credential subject).
        x, y: position.
        sensing_range_m: local perception radius.
        noise_sigma_m: position noise of local detections.
        miss_prob: probability a true in-range object is missed locally.
    """

    name: str
    x: float
    y: float
    sensing_range_m: float = 60.0
    noise_sigma_m: float = 0.5
    miss_prob: float = 0.05
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = numpy_rng(f"collab-vehicle:{self.name}")

    def sense(self, objects: list[WorldObject]) -> list[SharedDetection]:
        """Locally detect in-range objects (noisy, with misses)."""
        detections = []
        for obj in objects:
            distance = float(np.hypot(obj.x - self.x, obj.y - self.y))
            if distance > self.sensing_range_m:
                continue
            if self._rng.random() < self.miss_prob:
                continue
            detections.append(SharedDetection(
                self.name,
                obj.x + float(self._rng.normal(0.0, self.noise_sigma_m)),
                obj.y + float(self._rng.normal(0.0, self.noise_sigma_m)),
            ))
        return detections


class PerceptionWorld:
    """Ground truth + a fleet of collaborating vehicles."""

    def __init__(self, objects: list[WorldObject],
                 vehicles: list[CollabVehicle]) -> None:
        ids = [o.object_id for o in objects]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate object ids")
        names = [v.name for v in vehicles]
        if len(names) != len(set(names)):
            raise ValueError("duplicate vehicle names")
        self.objects = list(objects)
        self.vehicles = list(vehicles)

    def collect_shares(self) -> list[SharedDetection]:
        """One perception round: every vehicle senses and broadcasts."""
        shares: list[SharedDetection] = []
        for vehicle in self.vehicles:
            shares.extend(vehicle.sense(self.objects))
        return shares

    def coverage_of(self, obj: WorldObject) -> int:
        """How many vehicles have the object in sensing range (redundancy)."""
        return sum(
            1 for v in self.vehicles
            if np.hypot(obj.x - v.x, obj.y - v.y) <= v.sensing_range_m
        )
