"""Cryptographically authenticated V2V sharing (paper §VII-B + §IV).

Ties the SSI layer into collaborative perception: each vehicle holds an
SSI wallet (:mod:`repro.ssi.wallet`), signs every broadcast detection
with its Ed25519 key, and receivers verify against the DID registry.
This replaces the membership-list abstraction of
:class:`repro.collab.detection.SecureCollabFusion` with real signatures,
so the §VII-B dichotomy is enforced by mathematics:

* the **external injector** has no registered DID — its messages fail
  signature verification;
* the **internal fabricator** signs its lies correctly — they verify,
  and only redundancy cross-validation catches them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.collab.perception import SharedDetection
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.wallet import Wallet

__all__ = ["SignedShare", "V2vChannel"]


@dataclass(frozen=True)
class SignedShare:
    """A detection share with its sender's signature."""

    reporter_did: str
    x: float
    y: float
    round_index: int
    signature: bytes

    def signing_input(self) -> bytes:
        body = {"r": self.reporter_did, "x": round(self.x, 6),
                "y": round(self.y, 6), "i": self.round_index}
        return json.dumps(body, sort_keys=True).encode()


class V2vChannel:
    """Sign-and-verify layer over shared detections."""

    def __init__(self, registry: VerifiableDataRegistry) -> None:
        self.registry = registry
        self.stats = {"verified": 0, "rejected": 0}

    @staticmethod
    def sign(wallet: Wallet, detection: SharedDetection,
             round_index: int) -> SignedShare:
        draft = SignedShare(str(wallet.did), detection.x, detection.y,
                            round_index, b"")
        return SignedShare(draft.reporter_did, draft.x, draft.y,
                           round_index, wallet.keypair.sign(draft.signing_input()))

    def verify(self, share: SignedShare) -> SharedDetection | None:
        """Registry-backed verification; returns the plain detection."""
        try:
            document = self.registry.resolve(share.reporter_did)
        except KeyError:
            self.stats["rejected"] += 1
            return None
        if not document.verify(share.signing_input(), share.signature):
            self.stats["rejected"] += 1
            return None
        self.stats["verified"] += 1
        return SharedDetection(share.reporter_did, share.x, share.y)

    def verify_batch(self, shares: list[SignedShare]) -> list[SharedDetection]:
        detections = []
        for share in shares:
            detection = self.verify(share)
            if detection is not None:
                detections.append(detection)
        return detections
