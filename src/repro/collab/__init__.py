"""Collaboration layer (paper §VII): collaborative perception security and
resource competition.

* :mod:`repro.collab.perception` — ground-truth world, local sensing,
  V2V detection sharing ([47]).
* :mod:`repro.collab.attacks` — external injector vs credentialed
  internal fabricator ([48]).
* :mod:`repro.collab.detection` — authentication, redundancy
  cross-validation, trust scoring (§VII-B).
* :mod:`repro.collab.intersection` — competing-policy intersection game
  with optional regulation (§VII-A).
"""

from repro.collab.attacks import ExternalInjector, InternalFabricator, PositionOffsetAttacker
from repro.collab.detection import (
    CollabFusionReport,
    member_bias_estimates,
    FusedObject,
    FusionConfig,
    SecureCollabFusion,
    TrustManager,
)
from repro.collab.intersection import Arrival, IntersectionResult, IntersectionSim
from repro.collab.v2v import SignedShare, V2vChannel
from repro.collab.perception import (
    CollabVehicle,
    PerceptionWorld,
    SharedDetection,
    WorldObject,
)

__all__ = [
    "WorldObject",
    "SharedDetection",
    "CollabVehicle",
    "PerceptionWorld",
    "ExternalInjector",
    "InternalFabricator",
    "FusionConfig",
    "FusedObject",
    "CollabFusionReport",
    "SecureCollabFusion",
    "TrustManager",
    "Arrival",
    "IntersectionResult",
    "IntersectionSim",
    "SignedShare",
    "V2vChannel",
    "PositionOffsetAttacker",
    "member_bias_estimates",
]
