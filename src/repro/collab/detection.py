"""Fusion with authentication, consistency checking, and trust scoring
(paper §VII-B).

The defense pipeline mirrors the paper's argument structure:

1. **channel authentication** — shares from non-members are dropped
   (defeats the external injector, :class:`repro.collab.attacks.ExternalInjector`);
2. **redundancy cross-validation** — a credentialed share that no other
   member corroborates is *suspicious*; "addressing this threat requires
   more comprehensive intrusion detection methods, which rely on
   redundant sources of information to validate received data";
3. **trust scoring** — members accumulate penalties for uncorroborated
   claims and for missing objects everyone else sees; below a threshold
   a member's shares are excluded.

The paper's caveat — "such redundancy may not always be available,
making detection and mitigation even more challenging" — is exactly the
EXP-C2 bench: detection quality as a function of how many honest
vehicles cover the contested spot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collab.perception import PerceptionWorld, SharedDetection
from repro.core.layers import Layer
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["FusionConfig", "FusedObject", "CollabFusionReport",
           "SecureCollabFusion", "TrustManager", "member_bias_estimates"]


def member_bias_estimates(shares_by_round: list[list[SharedDetection]],
                          gate_m: float = 3.0) -> dict[str, tuple[float, float]]:
    """Per-member mean residual against the per-cluster consensus.

    For every round, detections are clustered (greedy, ``gate_m``); a
    member's residual at a cluster is its detection minus the mean of
    the *other* members' detections.  Honest members' residuals average
    near zero; a :class:`~repro.collab.attacks.PositionOffsetAttacker`
    shows its offset.  Returns ``{member: (bias_x, bias_y)}`` for
    members with at least one multi-reporter cluster.
    """
    residuals: dict[str, list[tuple[float, float]]] = {}
    for shares in shares_by_round:
        clusters: list[list[SharedDetection]] = []
        for share in sorted(shares, key=lambda s: (s.x, s.y)):
            for cluster in clusters:
                cx = float(np.mean([s.x for s in cluster]))
                cy = float(np.mean([s.y for s in cluster]))
                if np.hypot(share.x - cx, share.y - cy) <= 2 * gate_m:
                    cluster.append(share)
                    break
            else:
                clusters.append([share])
        for cluster in clusters:
            if len({s.reporter for s in cluster}) < 2:
                continue
            for share in cluster:
                others = [s for s in cluster if s.reporter != share.reporter]
                if not others:
                    continue
                ox = float(np.mean([s.x for s in others]))
                oy = float(np.mean([s.y for s in others]))
                residuals.setdefault(share.reporter, []).append(
                    (share.x - ox, share.y - oy))
    return {
        member: (float(np.mean([r[0] for r in rs])),
                 float(np.mean([r[1] for r in rs])))
        for member, rs in residuals.items()
    }


@dataclass(frozen=True)
class FusionConfig:
    """Fusion and detection parameters."""

    gate_m: float = 3.0              # association gate for clustering
    quorum: int = 2                  # reporters needed to confirm a cluster
    authenticate: bool = True        # drop non-member shares
    cross_validate: bool = True      # flag uncorroborated member claims
    trust_threshold: float = 0.3     # members below are excluded

    def __post_init__(self) -> None:
        if self.quorum < 1 or self.gate_m <= 0:
            raise ValueError("invalid fusion parameters")


@dataclass(frozen=True)
class FusedObject:
    """A confirmed fused object."""

    x: float
    y: float
    reporters: tuple[str, ...]


@dataclass(frozen=True)
class CollabFusionReport:
    """One fusion round's outcome vs ground truth."""

    confirmed: tuple[FusedObject, ...]
    dropped_unauthenticated: int
    flagged_shares: int
    ghosts_accepted: int
    objects_missed: int


class TrustManager:
    """Per-member trust scores in [0, 1]."""

    def __init__(self, members: list[str], *, penalty: float = 0.2,
                 reward: float = 0.05) -> None:
        self._scores = {m: 1.0 for m in members}
        self.penalty = penalty
        self.reward = reward

    def score(self, member: str) -> float:
        return self._scores.get(member, 0.0)

    def penalize(self, member: str) -> None:
        if member in self._scores:
            before = self._scores[member]
            self._scores[member] = max(0.0, before - self.penalty)
            if OBS.enabled and self._scores[member] != before:
                OBS.count("collab.trust.penalties")
                OBS.emit(EventKind.TRUST_UPDATE, Layer.COLLABORATION, member,
                         f"penalized {before:.2f} -> {self._scores[member]:.2f}",
                         score=self._scores[member], delta=-self.penalty)

    def reward_member(self, member: str) -> None:
        if member in self._scores:
            before = self._scores[member]
            self._scores[member] = min(1.0, before + self.reward)
            if OBS.enabled and self._scores[member] != before:
                OBS.count("collab.trust.rewards")
                OBS.emit(EventKind.TRUST_UPDATE, Layer.COLLABORATION, member,
                         f"rewarded {before:.2f} -> {self._scores[member]:.2f}",
                         score=self._scores[member], delta=self.reward)

    def trusted_members(self, threshold: float) -> set[str]:
        return {m for m, s in self._scores.items() if s >= threshold}


class SecureCollabFusion:
    """The fused perception pipeline with the three defense stages."""

    def __init__(self, world: PerceptionWorld,
                 config: FusionConfig | None = None) -> None:
        self.world = world
        self.config = config or FusionConfig()
        self.members = {v.name for v in world.vehicles}
        self.trust = TrustManager(sorted(self.members))

    def _cluster(self, shares: list[SharedDetection]) -> list[list[SharedDetection]]:
        """Greedy 2-D clustering with the association gate."""
        clusters: list[list[SharedDetection]] = []
        for share in shares:
            placed = False
            for cluster in clusters:
                cx = float(np.mean([s.x for s in cluster]))
                cy = float(np.mean([s.y for s in cluster]))
                if np.hypot(share.x - cx, share.y - cy) <= self.config.gate_m:
                    cluster.append(share)
                    placed = True
                    break
            if not placed:
                clusters.append([share])
        return clusters

    def fuse(self, shares: list[SharedDetection]) -> CollabFusionReport:
        """Run one fusion round over the given broadcast set."""
        config = self.config

        dropped = 0
        if config.authenticate:
            authenticated = [s for s in shares if s.reporter in self.members]
            dropped = len(shares) - len(authenticated)
        else:
            authenticated = list(shares)
        if OBS.enabled and dropped:
            OBS.count("collab.fusion.dropped_unauthenticated", dropped)
            OBS.emit(EventKind.DETECTION, Layer.COLLABORATION, "fusion",
                     f"dropped {dropped} unauthenticated share(s)",
                     dropped=dropped)

        trusted = self.trust.trusted_members(config.trust_threshold)
        # Trust scores exist only for members; with authentication off,
        # non-member shares slipped past the gate and cannot be filtered
        # by (nonexistent) trust state — they count as usable.
        usable = [
            s for s in authenticated
            if s.reporter in trusted or s.reporter not in self.members
        ]
        # Probation: excluded members' shares are withheld from fusion
        # but kept aside — if they corroborate what the trusted fleet
        # confirms, the member slowly earns its way back (rehabilitation
        # after a false accusation or a cleaned compromise).
        probation = [
            s for s in authenticated
            if s.reporter in self.members and s.reporter not in trusted
        ]

        clusters = self._cluster(usable)
        confirmed: list[FusedObject] = []
        flagged = 0
        for cluster in clusters:
            reporters = {s.reporter for s in cluster}
            cx = float(np.mean([s.x for s in cluster]))
            cy = float(np.mean([s.y for s in cluster]))
            # Redundancy available at this spot: how many trusted members
            # could have seen it.
            coverage = sum(
                1 for v in self.world.vehicles
                if v.name in trusted
                and np.hypot(cx - v.x, cy - v.y) <= v.sensing_range_m
            )
            required = min(config.quorum, max(coverage, 1))
            if len(reporters) >= required:
                confirmed.append(FusedObject(cx, cy, tuple(sorted(reporters))))
                for reporter in reporters:
                    self.trust.reward_member(reporter)
            elif config.cross_validate and coverage >= 2:
                # Claim contradicted by available redundancy: flag it.
                flagged += len(cluster)
                if OBS.enabled:
                    OBS.count("collab.fusion.flagged_shares", len(cluster))
                    OBS.emit(EventKind.DETECTION, Layer.COLLABORATION, "fusion",
                             f"uncorroborated cluster at ({cx:.1f}, {cy:.1f}) "
                             f"flagged (coverage {coverage})",
                             x=cx, y=cy, reporters=len(reporters),
                             coverage=coverage)
                for reporter in reporters:
                    self.trust.penalize(reporter)
            else:
                # No redundancy to judge with — the paper's hard case:
                # accept provisionally.
                confirmed.append(FusedObject(cx, cy, tuple(sorted(reporters))))

        for share in probation:
            if any(np.hypot(share.x - fused.x, share.y - fused.y) <= config.gate_m
                   for fused in confirmed):
                self.trust.reward_member(share.reporter)

        ghosts = sum(
            1 for fused in confirmed
            if not any(np.hypot(fused.x - o.x, fused.y - o.y) <= config.gate_m
                       for o in self.world.objects)
        )
        missed = sum(
            1 for obj in self.world.objects
            if self.world.coverage_of(obj) > 0
            and not any(np.hypot(obj.x - f.x, obj.y - f.y) <= config.gate_m
                        for f in confirmed)
        )
        return CollabFusionReport(
            confirmed=tuple(confirmed),
            dropped_unauthenticated=dropped,
            flagged_shares=flagged,
            ghosts_accepted=ghosts,
            objects_missed=missed,
        )

    def run_rounds(self, n_rounds: int,
                   malicious_shares_fn=None) -> list[CollabFusionReport]:
        """Repeated rounds (trust accumulates).

        ``malicious_shares_fn(objects) -> list[SharedDetection]`` replaces
        the compromised members' honest broadcasts; honest members'
        shares are generated by the world each round.
        """
        reports = []
        for _ in range(n_rounds):
            shares = self.world.collect_shares()
            if malicious_shares_fn is not None:
                malicious = malicious_shares_fn(self.world.objects)
                bad_reporters = {s.reporter for s in malicious}
                shares = [s for s in shares if s.reporter not in bad_reporters]
                shares.extend(malicious)
            reports.append(self.fuse(shares))
        return reports
