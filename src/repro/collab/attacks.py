"""Collaboration-layer attackers: external injection and internal
fabrication (paper §VII-B, ref [48]).

Two adversaries with fundamentally different power:

* :class:`ExternalInjector` — no credentials. Its messages fail channel
  authentication and never reach fusion when a secure V2V channel is
  deployed ("addressing this issue might seem straightforward by
  implementing secure communication protocols").
* :class:`InternalFabricator` — a *credentialed* member vehicle that
  lies: injects ghost objects, suppresses real ones, or both.  "Secure
  communication alone is insufficient, as the malicious node may possess
  legitimate credentials" — this is the adversary the redundancy-based
  detector in :mod:`repro.collab.detection` exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rng import numpy_rng
from repro.collab.perception import CollabVehicle, SharedDetection, WorldObject

__all__ = ["ExternalInjector", "InternalFabricator", "PositionOffsetAttacker"]


@dataclass
class ExternalInjector:
    """Uncredentialed attacker injecting forged shares over the air."""

    name: str = "external-attacker"
    n_ghosts: int = 3
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_ghosts < 1:
            raise ValueError("n_ghosts must be positive")
        self._rng = numpy_rng(f"external:{self.name}")

    def forge_shares(self, area: float = 100.0) -> list[SharedDetection]:
        """Forged detections claiming to come from a fake reporter."""
        return [
            SharedDetection(self.name,
                            float(self._rng.uniform(-area, area)),
                            float(self._rng.uniform(-area, area)))
            for _ in range(self.n_ghosts)
        ]


@dataclass
class PositionOffsetAttacker:
    """A *subtle* credentialed insider: shifts reported positions.

    Instead of inventing or hiding objects (which redundancy catches
    quickly), this attacker biases its honest detections by a constant
    offset — enough to corrupt fused positions toward, e.g., a lane
    shift, while staying inside or near the association gate.  The
    countermeasure is residual-bias analysis
    (:func:`repro.collab.detection.member_bias_estimates`): an honest
    member's detections scatter around the fused consensus with zero
    mean, the offset attacker's do not.
    """

    vehicle: CollabVehicle
    offset_x: float = 0.0
    offset_y: float = 0.0

    def malicious_shares(self, objects: list[WorldObject]) -> list[SharedDetection]:
        return [
            SharedDetection(d.reporter, d.x + self.offset_x, d.y + self.offset_y)
            for d in self.vehicle.sense(objects)
        ]


@dataclass
class InternalFabricator:
    """A credentialed member that fabricates its *own* shares.

    Args:
        vehicle: the compromised member (its credentials are valid).
        ghost_positions: fake objects to inject.
        suppress_radius_m: real objects within this radius of a
            suppression target are omitted from the vehicle's shares.
        suppress_targets: positions whose surroundings to hide.
    """

    vehicle: CollabVehicle
    ghost_positions: tuple[tuple[float, float], ...] = ()
    suppress_radius_m: float = 5.0
    suppress_targets: tuple[tuple[float, float], ...] = ()

    def malicious_shares(self, objects: list[WorldObject]) -> list[SharedDetection]:
        """The compromised vehicle's dishonest broadcast."""
        honest = self.vehicle.sense(objects)
        kept = [
            d for d in honest
            if not any(
                np.hypot(d.x - tx, d.y - ty) <= self.suppress_radius_m
                for tx, ty in self.suppress_targets
            )
        ]
        ghosts = [
            SharedDetection(self.vehicle.name, gx, gy)
            for gx, gy in self.ghost_positions
        ]
        return kept + ghosts
