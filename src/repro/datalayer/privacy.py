"""Geolocation privacy analysis: re-identification from leaked traces
(paper §V-A: "most problematic geolocation data going back several
months in time").

The analysis makes the breach's privacy damage quantitative:

* :func:`infer_home_locations` — the classic attack: a vehicle's most
  frequent night-time location is its owner's home;
* :func:`reidentification_rate` — with a public directory of (person,
  home address) pairs, what fraction of *anonymized* traces can be
  re-linked to a person via the inferred home?
* :func:`location_k_anonymity` — how many vehicles share each coarsened
  home cell; the coarsening ablation shows the privacy/utility knob
  (§V's data-minimization lesson).
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from repro.datalayer.telemetry import TelemetryRecord, VehicleProfile

__all__ = [
    "infer_home_locations",
    "reidentification_rate",
    "location_k_anonymity",
    "trajectory_uniqueness",
    "geo_indistinguishable",
    "utility_loss_m",
]

_NIGHT_START_H = 20.0
_NIGHT_END_H = 7.0


def _is_night(timestamp: float) -> bool:
    hour = (timestamp % 86_400.0) / 3600.0
    return hour >= _NIGHT_START_H or hour < _NIGHT_END_H


def infer_home_locations(records: list[TelemetryRecord], *,
                         cell_decimals: int = 3) -> dict[str, tuple[float, float]]:
    """Infer each VIN's home as its modal night-time location cell.

    ``cell_decimals`` controls the grid (3 decimals ~ 110 m cells).
    Returns vin -> (lat, lon) cell centre.
    """
    night_cells: dict[str, Counter] = defaultdict(Counter)
    for record in records:
        if _is_night(record.timestamp):
            cell = (round(record.lat, cell_decimals), round(record.lon, cell_decimals))
            night_cells[record.vin][cell] += 1
    return {
        vin: cells.most_common(1)[0][0]
        for vin, cells in night_cells.items() if cells
    }


def reidentification_rate(anonymized: list[TelemetryRecord],
                          directory: list[VehicleProfile], *,
                          match_radius_deg: float = 0.002,
                          cell_decimals: int = 3) -> float:
    """Fraction of anonymized VINs re-linked to a unique directory entry.

    The attacker infers homes from the anonymized traces and matches
    each against the public directory of home addresses; a link counts
    only when exactly one person lives within ``match_radius_deg``.
    """
    if not directory:
        raise ValueError("directory must not be empty")
    homes = infer_home_locations(anonymized, cell_decimals=cell_decimals)
    if not homes:
        return 0.0
    linked = 0
    for inferred in homes.values():
        matches = [
            profile for profile in directory
            if (abs(profile.home[0] - inferred[0]) <= match_radius_deg
                and abs(profile.home[1] - inferred[1]) <= match_radius_deg)
        ]
        if len(matches) == 1:
            linked += 1
    return linked / len(homes)


def geo_indistinguishable(records: list[TelemetryRecord], *,
                          epsilon_per_km: float = 2.0,
                          seed: int = 0) -> list[TelemetryRecord]:
    """Planar-Laplace location perturbation (geo-indistinguishability).

    The principled alternative to grid coarsening: each point is moved
    by 2-D Laplace noise with privacy parameter ``epsilon_per_km``
    (smaller = noisier = more private). The noise radius follows a
    Gamma(2, 1/eps) distribution; the angle is uniform — the standard
    planar Laplace mechanism. Degrees are converted at ~111 km/degree.
    """
    if epsilon_per_km <= 0:
        raise ValueError("epsilon must be positive")
    from repro.core.rng import numpy_rng

    rng = numpy_rng(f"geo-ind:{seed}")
    km_per_degree = 111.0
    noisy = []
    for record in records:
        radius_km = float(rng.gamma(2.0, 1.0 / epsilon_per_km))
        angle = float(rng.uniform(0.0, 2.0 * np.pi))
        dlat = radius_km * np.cos(angle) / km_per_degree
        dlon = radius_km * np.sin(angle) / km_per_degree
        noisy.append(TelemetryRecord(
            vin=record.vin, owner_name=record.owner_name,
            owner_email=record.owner_email, timestamp=record.timestamp,
            lat=record.lat + dlat, lon=record.lon + dlon,
        ))
    return noisy


def utility_loss_m(original: list[TelemetryRecord],
                   perturbed: list[TelemetryRecord]) -> float:
    """Mean displacement between matched records (metres) — the utility
    side of the privacy/utility trade-off."""
    if len(original) != len(perturbed):
        raise ValueError("record lists must be parallel")
    if not original:
        return 0.0
    metres_per_degree = 111_000.0
    total = 0.0
    for a, b in zip(original, perturbed):
        total += float(np.hypot(a.lat - b.lat, a.lon - b.lon)) * metres_per_degree
    return total / len(original)


def trajectory_uniqueness(records: list[TelemetryRecord], *,
                          n_points: int = 4,
                          cell_decimals: int = 2,
                          time_bin_s: float = 3600.0,
                          trials_per_vehicle: int = 10,
                          seed: int = 0) -> float:
    """Fraction of vehicles uniquely identified by ``n_points`` random
    spatio-temporal points of their trace.

    The de-Montjoye-style mobility-uniqueness measurement, applied to
    the leaked telemetry: an adversary holding a handful of coarse
    (cell, hour) observations of a target checks how many vehicles in
    the corpus are consistent with all of them. High uniqueness means
    the "anonymized" corpus deanonymizes from minimal side knowledge —
    the §V-A national-security concern in quantitative form.
    """
    if n_points < 1 or trials_per_vehicle < 1:
        raise ValueError("need at least one point and one trial")
    from repro.core.rng import python_rng

    def key(record: TelemetryRecord) -> tuple:
        return (round(record.lat, cell_decimals),
                round(record.lon, cell_decimals),
                int(record.timestamp // time_bin_s))

    by_vehicle: dict[str, set[tuple]] = defaultdict(set)
    for record in records:
        by_vehicle[record.vin].add(key(record))
    if not by_vehicle:
        return 0.0

    rng = python_rng(f"traj-uniq:{seed}")
    unique_hits = 0
    total = 0
    for vin, cells in by_vehicle.items():
        pool = sorted(cells)
        for _ in range(trials_per_vehicle):
            sample = set(rng.sample(pool, min(n_points, len(pool))))
            matches = sum(1 for other_cells in by_vehicle.values()
                          if sample <= other_cells)
            unique_hits += matches == 1
            total += 1
    return unique_hits / total


def location_k_anonymity(records: list[TelemetryRecord], *,
                         cell_decimals: int = 2) -> dict:
    """k-anonymity of inferred homes on a coarsened grid.

    Returns ``{"min_k": ..., "median_k": ..., "fraction_k1": ...}`` —
    ``fraction_k1`` is the share of vehicles that are alone in their
    cell (fully identifiable). Larger cells (< decimals) raise k.
    """
    homes = infer_home_locations(records, cell_decimals=cell_decimals)
    if not homes:
        return {"min_k": 0, "median_k": 0.0, "fraction_k1": 0.0}
    cell_counts = Counter(homes.values())
    ks = [cell_counts[cell] for cell in homes.values()]
    return {
        "min_k": int(min(ks)),
        "median_k": float(np.median(ks)),
        "fraction_k1": sum(1 for k in ks if k == 1) / len(ks),
    }
