"""Fleet telemetry generation (paper §V-A).

The breached data was "9.5 terabytes of vehicle telemetry ... personal
information (name, email), information about the vehicle, and most
problematic geolocation data going back several months".  This module
generates a synthetic fleet with exactly that structure — each vehicle
has an owner (PII), a home and a work location, and produces daily
commute traces — so the privacy analysis (:mod:`repro.datalayer.privacy`)
can quantify what leaking it means.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import numpy_rng

__all__ = ["VehicleProfile", "TelemetryRecord", "FleetTelemetryGenerator"]


@dataclass(frozen=True)
class VehicleProfile:
    """A vehicle and its owner's PII + routine locations."""

    vin: str
    owner_name: str
    owner_email: str
    home: tuple[float, float]      # (lat, lon)
    work: tuple[float, float]
    sensitive: bool = False        # e.g. intelligence-linked per the incident


@dataclass(frozen=True)
class TelemetryRecord:
    """One geolocation sample as stored in the backend."""

    vin: str
    owner_name: str
    owner_email: str
    timestamp: float               # epoch seconds
    lat: float
    lon: float

    def anonymized(self) -> "TelemetryRecord":
        """PII stripped (the naive mitigation the privacy bench defeats)."""
        return TelemetryRecord(
            vin=f"anon-{hash(self.vin) & 0xFFFF:04x}",
            owner_name="", owner_email="",
            timestamp=self.timestamp, lat=self.lat, lon=self.lon,
        )

    def coarsened(self, decimals: int) -> "TelemetryRecord":
        """Location precision reduced to ``decimals`` decimal degrees."""
        return TelemetryRecord(
            vin=self.vin, owner_name=self.owner_name, owner_email=self.owner_email,
            timestamp=self.timestamp,
            lat=round(self.lat, decimals), lon=round(self.lon, decimals),
        )


class FleetTelemetryGenerator:
    """Deterministic synthetic fleet.

    Geography: a ~0.5° x 0.5° metro area; homes and workplaces are drawn
    uniformly; each day produces samples parked at home (night), at work
    (day), and in transit.
    """

    DAY_S = 86_400.0

    def __init__(self, n_vehicles: int = 50, *, seed_label: str = "fleet",
                 sensitive_fraction: float = 0.05) -> None:
        if n_vehicles < 1:
            raise ValueError("need at least one vehicle")
        if not 0.0 <= sensitive_fraction <= 1.0:
            raise ValueError("sensitive_fraction must be in [0, 1]")
        self._rng = numpy_rng(seed_label)
        self.vehicles = [
            self._make_vehicle(i, sensitive_fraction) for i in range(n_vehicles)
        ]

    def _make_vehicle(self, index: int, sensitive_fraction: float) -> VehicleProfile:
        base_lat, base_lon = 48.10, 11.50  # a Munich-like metro
        home = (base_lat + self._rng.uniform(0, 0.5), base_lon + self._rng.uniform(0, 0.5))
        work = (base_lat + self._rng.uniform(0, 0.5), base_lon + self._rng.uniform(0, 0.5))
        return VehicleProfile(
            vin=f"WVW{index:08d}",
            owner_name=f"owner-{index}",
            owner_email=f"owner{index}@example.org",
            home=home,
            work=work,
            sensitive=self._rng.random() < sensitive_fraction,
        )

    def generate(self, days: int = 30, samples_per_day: int = 8,
                 start_time: float = 1_735_000_000.0) -> list[TelemetryRecord]:
        """Telemetry for the whole fleet over ``days`` days."""
        if days < 1 or samples_per_day < 3:
            raise ValueError("need >= 1 day and >= 3 samples per day")
        records: list[TelemetryRecord] = []
        for vehicle in self.vehicles:
            for day in range(days):
                day_start = start_time + day * self.DAY_S
                for sample in range(samples_per_day):
                    hour = 24.0 * sample / samples_per_day
                    timestamp = day_start + hour * 3600.0
                    if hour < 7 or hour >= 20:
                        lat, lon = vehicle.home
                    elif 9 <= hour < 17:
                        lat, lon = vehicle.work
                    else:  # commuting: a point between home and work
                        t = self._rng.uniform(0.2, 0.8)
                        lat = vehicle.home[0] * (1 - t) + vehicle.work[0] * t
                        lon = vehicle.home[1] * (1 - t) + vehicle.work[1] * t
                    noise = self._rng.normal(0.0, 1e-4, size=2)  # GPS jitter ~10 m
                    records.append(TelemetryRecord(
                        vin=vehicle.vin,
                        owner_name=vehicle.owner_name,
                        owner_email=vehicle.owner_email,
                        timestamp=timestamp,
                        lat=lat + noise[0],
                        lon=lon + noise[1],
                    ))
        return records
