"""Kill-chain engine (paper Fig. 8).

Fig. 8 decomposes the CARIAD data extraction into six stages::

    traffic analysis → directory enumeration → supply-chain
    identification → heap dump → key extraction → data extraction

The engine is generic: a :class:`KillChain` is an ordered list of
:class:`Stage` objects, each of which attempts to advance an
:class:`AttackContext` against a :class:`CloudService`.  A stage can be
blocked by a **mitigation** (named after §V's lessons: disable debug
endpoints, scrub secrets from memory, scope keys minimally, rate-limit
enumeration).  The FIG8 bench runs the chain under every mitigation
subset to show where the chain snaps — the quantitative version of
"the issue is that it is only trivial once you know about it".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.layers import Layer
from repro.datalayer.cloud import AccessDenied, CloudError, CloudService, Secret
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["AttackContext", "StageResult", "Stage", "KillChain",
           "MITIGATIONS", "cariad_stages"]

#: Mitigations the §V discussion implies, keyed by the stage they break.
MITIGATIONS = {
    "rate-limit-enumeration": "throttle unauthenticated path probing",
    "disable-debug-endpoints": "no actuator/heap-dump endpoints in production",
    "scrub-secrets-from-memory": "keys held in an HSM/KMS, not process heap",
    "least-privilege-keys": "no key can mint broader access",
    "encrypt-at-rest-per-user": "bulk reads yield ciphertext only",
}


@dataclass
class AttackContext:
    """What the attacker knows/holds as the chain progresses."""

    discovered_paths: list[str] = field(default_factory=list)
    identified_framework: str | None = None
    dumped_secrets: list[Secret] = field(default_factory=list)
    working_keys: list[Secret] = field(default_factory=list)
    exfiltrated_records: list[dict] = field(default_factory=list)


@dataclass(frozen=True)
class StageResult:
    """Outcome of one stage attempt."""

    stage: str
    succeeded: bool
    detail: str


@dataclass(frozen=True)
class Stage:
    """A named kill-chain stage.

    ``blocked_by`` names the mitigations (any one suffices) that defeat
    it; ``attempt`` is implemented by the stage callables registered in
    :func:`cariad_stages`.
    """

    name: str
    blocked_by: tuple[str, ...]
    attempt: "callable"

    def run(self, service: CloudService, context: AttackContext,
            mitigations: set[str]) -> StageResult:
        blockers = set(self.blocked_by) & mitigations
        if blockers:
            return StageResult(self.name, False,
                               f"blocked by mitigation {sorted(blockers)[0]!r}")
        return self.attempt(service, context)


class KillChain:
    """Ordered stages; execution stops at the first failure."""

    def __init__(self, stages: list[Stage]) -> None:
        if not stages:
            raise ValueError("a kill chain needs at least one stage")
        self.stages = list(stages)

    def run(self, service: CloudService, *,
            mitigations: set[str] | None = None) -> list[StageResult]:
        """Run the chain; returns results up to and including the first failure."""
        mitigations = mitigations or set()
        unknown = mitigations - MITIGATIONS.keys()
        if unknown:
            raise ValueError(f"unknown mitigations {sorted(unknown)}")
        context = AttackContext()
        self.last_context = context
        results: list[StageResult] = []
        with OBS.span("datalayer.killchain", stages=len(self.stages),
                      mitigations=len(mitigations)):
            for index, stage in enumerate(self.stages):
                result = stage.run(service, context, mitigations)
                results.append(result)
                if OBS.enabled:
                    verdict = "succeeded" if result.succeeded else "blocked"
                    OBS.count(f"datalayer.killchain.stages_{verdict}")
                    OBS.emit(EventKind.ATTACK_STEP, Layer.DATA, result.stage,
                             f"{verdict}: {result.detail}", t=float(index),
                             stage_index=index, succeeded=result.succeeded)
                if not result.succeeded:
                    break
        return results

    def depth_reached(self, results: list[StageResult]) -> int:
        """Number of successful stages."""
        return sum(1 for r in results if r.succeeded)


# --- the six Fig. 8 stages ----------------------------------------------------

def _traffic_analysis(service: CloudService, context: AttackContext) -> StageResult:
    """Observe the telemetry interface exists (the whistleblower hint)."""
    if not service.active_endpoints():
        return StageResult("traffic-analysis", False, "no reachable service")
    return StageResult("traffic-analysis", True,
                       f"telemetry API at {service.name!r} identified")


def _directory_enumeration(service: CloudService, context: AttackContext) -> StageResult:
    """gobuster-style probing over a wordlist of common paths."""
    wordlist = ["/api", "/api/v1", "/actuator", "/actuator/heapdump",
                "/admin", "/metrics", "/health", "/login", "/debug"]
    found = [p for p in wordlist if service.probe(p)]
    context.discovered_paths = found
    if not found:
        return StageResult("directory-enumeration", False, "no paths discovered")
    return StageResult("directory-enumeration", True, f"found {found}")


def _supply_chain_identification(service: CloudService, context: AttackContext) -> StageResult:
    """Infer the web framework from the discovered structure."""
    if any("/actuator" in p for p in context.discovered_paths):
        context.identified_framework = service.framework
        return StageResult("supply-chain-id", True,
                           f"framework identified: {service.framework}")
    return StageResult("supply-chain-id", False, "framework not identifiable")


def _heap_dump(service: CloudService, context: AttackContext) -> StageResult:
    """Fetch the unauthenticated heap-dump endpoint."""
    try:
        response = service.fetch("/actuator/heapdump")
    except CloudError as exc:
        return StageResult("heap-dump", False, f"heap dump not retrievable ({exc})")
    if response != "heapdump":
        return StageResult("heap-dump", False, "heap dump not retrievable")
    context.dumped_secrets = service.heap_dump_contents()
    return StageResult("heap-dump", True,
                       f"dump contains {len(context.dumped_secrets)} secrets")


def _key_extraction(service: CloudService, context: AttackContext) -> StageResult:
    """Extract master keys from the dump and mint data-access keys."""
    masters = [s for s in context.dumped_secrets if s.allows("iam:mint")]
    if not masters:
        return StageResult("key-extraction", False, "no usable keys in dump")
    try:
        key = service.mint_access_key(masters[0], "telemetry:read")
    except AccessDenied as exc:
        return StageResult("key-extraction", False, str(exc))
    context.working_keys.append(key)
    return StageResult("key-extraction", True, f"minted {key.key_id}")


def _data_extraction(service: CloudService, context: AttackContext) -> StageResult:
    """Bulk-read every telemetry bucket with the minted key."""
    if not context.working_keys:
        return StageResult("data-extraction", False, "no working keys")
    key = context.working_keys[0]
    total = 0
    for bucket in service.buckets.values():
        try:
            records = service.read_bucket(bucket.name, key)
        except AccessDenied:
            continue
        if any(r.get("encrypted") for r in records):
            continue  # ciphertext-only: the encrypt-at-rest mitigation
        context.exfiltrated_records.extend(records)
        total += len(records)
    if total == 0:
        return StageResult("data-extraction", False, "no readable records")
    return StageResult("data-extraction", True, f"exfiltrated {total} records")


def cariad_stages() -> list[Stage]:
    """The Fig. 8 chain with its per-stage mitigations."""
    return [
        Stage("traffic-analysis", (), _traffic_analysis),
        Stage("directory-enumeration", ("rate-limit-enumeration",), _directory_enumeration),
        Stage("supply-chain-id", ("disable-debug-endpoints",), _supply_chain_identification),
        Stage("heap-dump", ("disable-debug-endpoints",), _heap_dump),
        Stage("key-extraction", ("scrub-secrets-from-memory",), _key_extraction),
        Stage("data-extraction",
              ("least-privilege-keys", "encrypt-at-rest-per-user"),
              _data_extraction),
    ]
