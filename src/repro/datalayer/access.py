"""Owner-controlled data access with trust delegation (paper §VIII, [54], [55]).

"The widespread distribution of data within such systems necessitates
controlled access mechanisms that allow data owners to retain the rights
to grant or restrict access. Achieving such access control is
particularly challenging in ecosystems involving multiple owners and
stakeholders."

The design follows the paper's reference [54] (SeEMQTT: secret sharing
and trust delegation for end-to-end mobile-IoT data):

* a data owner encrypts each record set under a fresh content key
  (AES-GCM) and **splits the key across independent key trustees**
  (Shamir, :mod:`repro.crypto.shamir`) — no broker or single trustee can
  read the data;
* the owner publishes a **grant** (consumer, dataset, expiry) to the
  trustees; a consumer collects key shares from ``threshold`` trustees,
  each of which independently checks the grant;
* the owner can **revoke** a grant at any time; trustees that learned of
  the revocation refuse their share, so a consumer that cannot reach a
  threshold of honest trustees loses access — even though the ciphertext
  is already in its hands the *key* never materializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rng import python_rng
from repro.crypto.modes import AuthenticationError, Gcm
from repro.crypto.shamir import Share, reconstruct_secret, split_secret

__all__ = ["AccessGrant", "KeyTrustee", "ProtectedDataset", "DataOwner", "DataConsumer"]


@dataclass(frozen=True)
class AccessGrant:
    """An owner's authorization for one consumer on one dataset."""

    grant_id: str
    dataset: str
    consumer: str
    expires_at: float


@dataclass
class KeyTrustee:
    """An independent share holder enforcing grants.

    Trustees are the delegation targets of [54]: the owner trusts each
    with only a share, and each enforces the owner's grant/revocation
    state as it knows it.
    """

    name: str
    _shares: dict[str, Share] = field(default_factory=dict)
    _grants: dict[str, AccessGrant] = field(default_factory=dict)
    _revoked: set[str] = field(default_factory=set)

    def hold_share(self, dataset: str, share: Share) -> None:
        self._shares[dataset] = share

    def register_grant(self, grant: AccessGrant) -> None:
        self._grants[grant.grant_id] = grant

    def revoke(self, grant_id: str) -> None:
        self._revoked.add(grant_id)

    def request_share(self, grant_id: str, consumer: str, dataset: str, *,
                      now: float) -> Share | None:
        """Release this trustee's share iff the grant checks out."""
        grant = self._grants.get(grant_id)
        if grant is None or grant_id in self._revoked:
            return None
        if grant.consumer != consumer or grant.dataset != dataset:
            return None
        if now > grant.expires_at:
            return None
        return self._shares.get(dataset)


@dataclass(frozen=True)
class ProtectedDataset:
    """Ciphertext + AEAD metadata as distributed (e.g. via a broker)."""

    name: str
    nonce: bytes
    ciphertext: bytes
    tag: bytes


class DataOwner:
    """The data owner: encrypts, distributes shares, grants, revokes."""

    def __init__(self, name: str, trustees: list[KeyTrustee], *,
                 threshold: int) -> None:
        if threshold < 1 or threshold > len(trustees):
            raise ValueError("threshold must be in 1..len(trustees)")
        self.name = name
        self.trustees = list(trustees)
        self.threshold = threshold
        self._rng = python_rng(f"owner:{name}")
        self._grant_counter = 0

    def publish(self, dataset: str, plaintext: bytes) -> ProtectedDataset:
        """Encrypt a dataset and distribute key shares to the trustees."""
        key = self._rng.randbytes(16)
        nonce = self._rng.randbytes(12)
        ciphertext, tag = Gcm(key).encrypt(nonce, plaintext,
                                           aad=dataset.encode())
        shares = split_secret(key, threshold=self.threshold,
                              n_shares=len(self.trustees),
                              seed_label=f"{self.name}:{dataset}")
        for trustee, share in zip(self.trustees, shares):
            trustee.hold_share(dataset, share)
        return ProtectedDataset(dataset, nonce, ciphertext, tag)

    def grant(self, consumer: str, dataset: str, *, now: float,
              validity_s: float = 3600.0) -> AccessGrant:
        """Authorize ``consumer`` and inform every trustee."""
        self._grant_counter += 1
        grant = AccessGrant(
            grant_id=f"{self.name}-g{self._grant_counter}",
            dataset=dataset,
            consumer=consumer,
            expires_at=now + validity_s,
        )
        for trustee in self.trustees:
            trustee.register_grant(grant)
        return grant

    def revoke(self, grant: AccessGrant,
               reachable_trustees: list[KeyTrustee] | None = None) -> None:
        """Revoke a grant at the (reachable) trustees.

        ``reachable_trustees`` models partial revocation propagation —
        the multi-stakeholder reality of [55]: access survives only if
        the consumer can still assemble a threshold from *unaware*
        trustees.
        """
        targets = self.trustees if reachable_trustees is None else reachable_trustees
        for trustee in targets:
            trustee.revoke(grant.grant_id)


class DataConsumer:
    """A consumer assembling shares and decrypting."""

    def __init__(self, name: str) -> None:
        self.name = name

    def access(self, protected: ProtectedDataset, grant: AccessGrant,
               trustees: list[KeyTrustee], *, threshold: int,
               now: float) -> bytes | None:
        """Collect shares, reconstruct the key, decrypt. None on failure."""
        shares: list[Share] = []
        for trustee in trustees:
            share = trustee.request_share(grant.grant_id, self.name,
                                          protected.name, now=now)
            if share is not None:
                shares.append(share)
            if len(shares) >= threshold:
                break
        if len(shares) < threshold:
            return None
        key = reconstruct_secret(shares)
        try:
            return Gcm(key).decrypt(protected.nonce, protected.ciphertext,
                                    protected.tag, aad=protected.name.encode())
        except AuthenticationError:
            return None
