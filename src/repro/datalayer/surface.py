"""Attack-surface minimization analysis (paper §V-C).

"The answer is to reduce attack surfaces. That is, instead of creating
more and more complexity and then adding increasingly complex defense
mechanisms, we need to start aiming for simple designs. By taking away
features and options that are not strictly needed, we enable a better
understanding of possible misuse and even the ability to reason formally
about security properties."

:class:`FeatureSurfaceAnalyzer` makes that paragraph executable: each
service *feature* enables endpoints; the analyzer measures, for any
feature subset, (a) exposed endpoint count, (b) unauthenticated endpoint
count, and (c) whether the Fig. 8 kill chain is still *viable* — the
formal-reasoning flavour: the chain is provably dead once no enabled
feature exposes the heap-dump dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.datalayer.cloud import CloudService
from repro.datalayer.killchain import KillChain, cariad_stages

__all__ = ["SurfaceReport", "FeatureSurfaceAnalyzer"]


@dataclass(frozen=True)
class SurfaceReport:
    """Surface metrics for one feature subset."""

    features: tuple[str, ...]
    exposed_endpoints: int
    unauthenticated_endpoints: int
    debug_endpoints: int
    kill_chain_viable: bool
    kill_chain_depth: int


class FeatureSurfaceAnalyzer:
    """Sweeps feature subsets of a service and reports surface metrics."""

    def __init__(self, service: CloudService) -> None:
        self.service = service
        self._all_features = sorted({e.feature for e in service.endpoints.values()})

    @property
    def all_features(self) -> list[str]:
        return list(self._all_features)

    def analyze(self, features: set[str]) -> SurfaceReport:
        """Measure the surface with exactly ``features`` enabled."""
        unknown = features - set(self._all_features)
        if unknown:
            raise ValueError(f"unknown features {sorted(unknown)}")
        original = set(self.service.enabled_features)
        try:
            self.service.enabled_features = set(features)
            active = self.service.active_endpoints()
            chain = KillChain(cariad_stages())
            results = chain.run(self.service)
            depth = chain.depth_reached(results)
            return SurfaceReport(
                features=tuple(sorted(features)),
                exposed_endpoints=len(active),
                unauthenticated_endpoints=sum(1 for e in active if not e.auth_required),
                debug_endpoints=sum(1 for e in active if e.debug),
                kill_chain_viable=depth == len(chain.stages),
                kill_chain_depth=depth,
            )
        finally:
            self.service.enabled_features = original

    def sweep(self, *, max_subset_size: int | None = None) -> list[SurfaceReport]:
        """Analyze every feature subset (ordered by size).

        The ABL-3 bench uses this to show the monotone relationship
        between enabled features and both surface size and kill-chain
        viability.
        """
        features = self._all_features
        limit = len(features) if max_subset_size is None else max_subset_size
        reports = []
        for size in range(0, limit + 1):
            for subset in combinations(features, size):
                reports.append(self.analyze(set(subset)))
        return reports

    def minimal_safe_surface(self, required_features: set[str]) -> SurfaceReport | None:
        """Smallest superset of ``required_features`` with a dead kill chain.

        Returns None if even the required set leaves the chain viable.
        """
        optional = [f for f in self._all_features if f not in required_features]
        for size in range(0, len(optional) + 1):
            for extra in combinations(optional, size):
                report = self.analyze(required_features | set(extra))
                if not report.kill_chain_viable:
                    return report
        return None
