"""The CARIAD-style breach scenario, end to end (paper §V-A/B).

Wires a telemetry backend configured like the incident (Spring-style
framework, unauthenticated heap-dump actuator, master keys resident in
heap, mintable per-user access keys, months of fleet geolocation in a
bucket) and runs the Fig. 8 kill chain against it.

:func:`run_breach` returns a :class:`BreachReport` with stage-by-stage
results, the exfiltrated record count, and how many *sensitive* vehicles
(the incident's intelligence-linked drivers) are among the victims —
quantifying the paper's "clear national security implications" remark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalayer.cloud import CloudService, Endpoint, Secret, StorageBucket
from repro.datalayer.killchain import KillChain, StageResult, cariad_stages
from repro.datalayer.telemetry import FleetTelemetryGenerator, TelemetryRecord

__all__ = ["BreachReport", "build_cariad_service", "run_breach"]


@dataclass(frozen=True)
class BreachReport:
    """Outcome of one kill-chain run against the scenario."""

    stage_results: tuple[StageResult, ...]
    stages_completed: int
    total_stages: int
    records_exfiltrated: int
    sensitive_vehicles_exposed: int
    distinct_vehicles_exposed: int

    @property
    def chain_completed(self) -> bool:
        return self.stages_completed == self.total_stages


def build_cariad_service(*, n_vehicles: int = 40, days: int = 30,
                         mitigations: set[str] | None = None,
                         seed_label: str = "cariad") -> tuple[CloudService, list[TelemetryRecord]]:
    """Construct the telemetry backend with incident-faithful misconfig.

    ``mitigations`` that change the *deployment* (rather than blocking a
    stage at run time) are applied here: ``encrypt-at-rest-per-user``
    stores ciphertext records, ``disable-debug-endpoints`` removes the
    actuator feature, ``scrub-secrets-from-memory`` keeps the master key
    out of heap, ``least-privilege-keys`` strips the mint scope.
    """
    mitigations = mitigations or set()
    fleet = FleetTelemetryGenerator(n_vehicles, seed_label=seed_label)
    records = fleet.generate(days=days)

    service = CloudService("telemetry-backend", framework="spring")
    service.enabled_features = {"core", "metrics"}
    if "disable-debug-endpoints" not in mitigations:
        service.enabled_features.add("debug")

    service.add_endpoint(Endpoint("/api", response_tag="api-root", feature="core"))
    service.add_endpoint(Endpoint("/api/v1", response_tag="api-v1", feature="core"))
    service.add_endpoint(Endpoint("/health", auth_required=False,
                                  response_tag="ok", feature="core"))
    service.add_endpoint(Endpoint("/metrics", response_tag="metrics", feature="metrics"))
    service.add_endpoint(Endpoint("/actuator", auth_required=False, debug=True,
                                  response_tag="actuator-index", feature="debug"))
    service.add_endpoint(Endpoint("/actuator/heapdump", auth_required=False, debug=True,
                                  response_tag="heapdump", feature="debug"))

    master_scopes = {"iam:mint"} if "least-privilege-keys" not in mitigations else {"logs:read"}
    service.add_secret(Secret(
        "aws-master", frozenset(master_scopes),
        in_process_memory="scrub-secrets-from-memory" not in mitigations,
    ))

    encrypted = "encrypt-at-rest-per-user" in mitigations
    bucket = StorageBucket("telemetry-records", required_scope="telemetry:read")
    for record in records:
        bucket.records.append({
            "vin": record.vin,
            "owner": record.owner_name,
            "email": record.owner_email,
            "ts": record.timestamp,
            "lat": record.lat,
            "lon": record.lon,
            "encrypted": encrypted,
        })
    service.add_bucket(bucket)
    return service, records


def run_breach(*, mitigations: set[str] | None = None,
               n_vehicles: int = 40, days: int = 30,
               seed_label: str = "cariad") -> BreachReport:
    """Run the Fig. 8 chain against the scenario and report the damage."""
    mitigations = mitigations or set()
    service, _ = build_cariad_service(
        n_vehicles=n_vehicles, days=days,
        mitigations=mitigations, seed_label=seed_label,
    )
    fleet = FleetTelemetryGenerator(n_vehicles, seed_label=seed_label)
    sensitive_vins = {v.vin for v in fleet.vehicles if v.sensitive}

    chain = KillChain(cariad_stages())
    results = chain.run(service, mitigations=mitigations)
    exfiltrated = chain.last_context.exfiltrated_records
    vins = {r["vin"] for r in exfiltrated}
    return BreachReport(
        stage_results=tuple(results),
        stages_completed=chain.depth_reached(results),
        total_stages=len(chain.stages),
        records_exfiltrated=len(exfiltrated),
        sensitive_vehicles_exposed=len(vins & sensitive_vins),
        distinct_vehicles_exposed=len(vins),
    )
