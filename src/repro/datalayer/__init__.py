"""Data layer (paper §V, Fig. 8): cloud telemetry security and privacy.

* :mod:`repro.datalayer.cloud` — cloud service model (endpoints,
  secrets, IAM, buckets).
* :mod:`repro.datalayer.telemetry` — synthetic fleet geolocation data.
* :mod:`repro.datalayer.killchain` — the generic kill-chain engine and
  the six Fig. 8 stages with per-stage mitigations.
* :mod:`repro.datalayer.breach` — the CARIAD-style scenario end to end.
* :mod:`repro.datalayer.privacy` — home inference, re-identification,
  k-anonymity of the leaked traces.
* :mod:`repro.datalayer.surface` — §V-C attack-surface minimization.
"""

from repro.datalayer.access import (
    AccessGrant,
    DataConsumer,
    DataOwner,
    KeyTrustee,
    ProtectedDataset,
)
from repro.datalayer.breach import BreachReport, build_cariad_service, run_breach
from repro.datalayer.cloud import (
    AccessDenied,
    CloudError,
    CloudService,
    CloudTimeout,
    Endpoint,
    EndpointDisabled,
    EndpointNotFound,
    Secret,
    ServiceUnavailable,
    StorageBucket,
    TransientCloudError,
)
from repro.datalayer.killchain import (
    MITIGATIONS,
    AttackContext,
    KillChain,
    Stage,
    StageResult,
    cariad_stages,
)
from repro.datalayer.privacy import (
    infer_home_locations,
    location_k_anonymity,
    reidentification_rate,
    trajectory_uniqueness,
)
from repro.datalayer.surface import FeatureSurfaceAnalyzer, SurfaceReport
from repro.datalayer.telemetry import (
    FleetTelemetryGenerator,
    TelemetryRecord,
    VehicleProfile,
)

__all__ = [
    "CloudService",
    "Endpoint",
    "Secret",
    "StorageBucket",
    "AccessDenied",
    "CloudError",
    "EndpointNotFound",
    "EndpointDisabled",
    "TransientCloudError",
    "CloudTimeout",
    "ServiceUnavailable",
    "FleetTelemetryGenerator",
    "TelemetryRecord",
    "VehicleProfile",
    "KillChain",
    "Stage",
    "StageResult",
    "AttackContext",
    "MITIGATIONS",
    "cariad_stages",
    "BreachReport",
    "build_cariad_service",
    "run_breach",
    "infer_home_locations",
    "reidentification_rate",
    "location_k_anonymity",
    "trajectory_uniqueness",
    "DataOwner",
    "DataConsumer",
    "KeyTrustee",
    "AccessGrant",
    "ProtectedDataset",
    "FeatureSurfaceAnalyzer",
    "SurfaceReport",
]
