"""Cloud service model: endpoints, secrets, storage, IAM (paper §V-A).

The CARIAD breach ran entirely against a cloud telemetry backend: a web
API whose directory structure leaked a debug endpoint, whose heap dump
contained AWS master keys, and whose IAM then minted access to the data
store.  This module models exactly those moving parts:

* :class:`Endpoint` — a URL path with auth requirements and optional
  *debug* status (the Spring heap-dump actuator class of problem);
* :class:`Secret` — a key with IAM scopes; secrets can be *resident in
  process memory* (and therefore in a heap dump);
* :class:`StorageBucket` — record storage gated by IAM scope;
* :class:`CloudService` — binds it all together and exposes the
  operations the kill chain drives (probe paths, fetch endpoints, mint
  keys, read buckets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Endpoint", "Secret", "StorageBucket", "CloudService",
           "CloudError", "AccessDenied", "EndpointNotFound", "EndpointDisabled",
           "TransientCloudError", "CloudTimeout", "ServiceUnavailable"]


class CloudError(Exception):
    """Base class for every typed cloud-operation failure.

    The hierarchy splits *permanent* failures (denied, not found,
    disabled — retrying cannot help) from :class:`TransientCloudError`
    (timeouts, outages — the classes resilience machinery is allowed to
    retry).  ``fetch`` raises these instead of collapsing every miss to
    ``None``, so callers and retry policies can tell them apart.
    """


class AccessDenied(CloudError):
    """Raised when an operation lacks the required scope (permanent)."""


class EndpointNotFound(CloudError):
    """The path does not exist on the service (permanent)."""


class EndpointDisabled(CloudError):
    """The path exists but its feature flag is off (permanent)."""


class TransientCloudError(CloudError):
    """Base for failures worth retrying (timeouts, 5xx outages)."""


class CloudTimeout(TransientCloudError):
    """The request exceeded its deadline."""


class ServiceUnavailable(TransientCloudError):
    """The service answered 5xx / was unreachable."""


@dataclass(frozen=True)
class Endpoint:
    """One HTTP endpoint of the service."""

    path: str
    auth_required: bool = True
    debug: bool = False
    response_tag: str = ""      # what a GET returns, symbolically
    feature: str = "core"       # feature flag that enables this endpoint

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ValueError("endpoint paths start with /")


@dataclass(frozen=True)
class Secret:
    """An IAM credential with scopes."""

    key_id: str
    scopes: frozenset[str]
    in_process_memory: bool = False  # ends up in heap dumps

    def allows(self, scope: str) -> bool:
        return scope in self.scopes or "admin" in self.scopes


@dataclass
class StorageBucket:
    """A record store requiring a scope to read."""

    name: str
    required_scope: str
    records: list[dict] = field(default_factory=list)

    def read_all(self, secret: Secret) -> list[dict]:
        if not secret.allows(self.required_scope):
            raise AccessDenied(f"{secret.key_id} lacks scope {self.required_scope!r}")
        return list(self.records)


@dataclass
class CloudService:
    """A deployed cloud application with its (mis)configuration."""

    name: str
    framework: str = "spring"
    endpoints: dict[str, Endpoint] = field(default_factory=dict)
    secrets: dict[str, Secret] = field(default_factory=dict)
    buckets: dict[str, StorageBucket] = field(default_factory=dict)
    enabled_features: set[str] = field(default_factory=lambda: {"core"})
    access_log: list[str] = field(default_factory=list)

    def add_endpoint(self, endpoint: Endpoint) -> None:
        if endpoint.path in self.endpoints:
            raise ValueError(f"duplicate endpoint {endpoint.path!r}")
        self.endpoints[endpoint.path] = endpoint

    def add_secret(self, secret: Secret) -> None:
        self.secrets[secret.key_id] = secret

    def add_bucket(self, bucket: StorageBucket) -> None:
        self.buckets[bucket.name] = bucket

    # -- the operations an external party can drive ---------------------------

    def active_endpoints(self) -> list[Endpoint]:
        """Endpoints reachable given the enabled feature set."""
        return [e for e in self.endpoints.values()
                if e.feature in self.enabled_features]

    def probe(self, path: str) -> bool:
        """Does a request to ``path`` get any response (even 401/403)?

        Directory enumeration tools (gobuster) distinguish existing from
        non-existing paths regardless of auth, which is exactly what
        leaked the CARIAD structure.
        """
        self.access_log.append(f"PROBE {path}")
        endpoint = self.endpoints.get(path)
        return endpoint is not None and endpoint.feature in self.enabled_features

    def fetch(self, path: str, *, secret: Secret | None = None) -> str:
        """GET an endpoint; returns its response tag.

        Failures are *typed*: :class:`EndpointNotFound` for unknown
        paths, :class:`EndpointDisabled` when the feature flag is off,
        :class:`AccessDenied` for missing credentials.  All three are
        permanent — retry machinery must not retry them, unlike the
        :class:`TransientCloudError` classes an unreliable transport
        layers on top.  Unauthenticated fetches succeed only on
        endpoints with ``auth_required=False`` — the heap-dump actuator
        in the incident was exactly such an endpoint in production.
        """
        self.access_log.append(f"GET {path}")
        endpoint = self.endpoints.get(path)
        if endpoint is None:
            raise EndpointNotFound(f"no endpoint at {path!r}")
        if endpoint.feature not in self.enabled_features:
            raise EndpointDisabled(
                f"{path!r} requires disabled feature {endpoint.feature!r}")
        if endpoint.auth_required and secret is None:
            raise AccessDenied(f"{path!r} requires credentials")
        return endpoint.response_tag

    def heap_dump_contents(self) -> list[Secret]:
        """Secrets recoverable from a process memory dump."""
        return [s for s in self.secrets.values() if s.in_process_memory]

    def public_endpoints(self) -> list[Endpoint]:
        """Active endpoints that answer without credentials.

        These are the service's *untrusted entry points* for
        whole-system dataflow analysis: anything the internet can drive
        directly, debug or not.  Sorted by path for determinism.
        """
        return sorted((e for e in self.active_endpoints() if not e.auth_required),
                      key=lambda e: e.path)

    def bucket_access_paths(self, bucket: StorageBucket) -> list[tuple[Secret, str]]:
        """Secrets that statically unlock ``bucket``, with how.

        A secret reaches a bucket either by holding the required scope
        (or ``admin``) outright, or by being able to *mint* a key with
        that scope (``iam:mint`` — the incident's escalation).  Sorted
        by key id for determinism.
        """
        paths: list[tuple[Secret, str]] = []
        for secret in sorted(self.secrets.values(), key=lambda s: s.key_id):
            if secret.allows(bucket.required_scope):
                paths.append((secret, f"holds scope {bucket.required_scope!r}"))
            elif secret.allows("iam:mint"):
                paths.append((secret, f"can mint scope {bucket.required_scope!r}"))
        return paths

    def mint_access_key(self, master: Secret, scope: str) -> Secret:
        """The incident's API: master keys could generate per-user keys."""
        if not master.allows("iam:mint"):
            raise AccessDenied(f"{master.key_id} cannot mint keys")
        minted = Secret(f"minted-{len(self.secrets)}", frozenset({scope}))
        self.add_secret(minted)
        self.access_log.append(f"MINT {minted.key_id} scope={scope}")
        return minted

    def read_bucket(self, name: str, secret: Secret) -> list[dict]:
        self.access_log.append(f"READ {name} key={secret.key_id}")
        return self.buckets[name].read_all(secret)
