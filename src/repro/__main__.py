"""Command-line experiment runner and static analyzer.

Usage::

    python -m repro list                 # enumerate all experiments
    python -m repro run FIG2             # regenerate one figure/table
    python -m repro run all --jobs 4     # the full sweep, parallel + cached
    python -m repro run FIG1 TAB1 --json # a sub-sweep, machine-readable
    python -m repro lint SCENARIO        # static security analysis
    python -m repro lint --rules         # the seclint rule catalog
    python -m repro flow SCENARIO        # taint/reachability analysis
    python -m repro flow SCENARIO --paths --cut   # witnesses + hardening cut
    python -m repro trace SCENARIO       # instrumented simulation trace
    python -m repro chaos SCENARIO       # fault campaign + resilience report
    python -m repro chaos all --plan severe --json   # machine-readable
    python -m repro redteam SCENARIO --campaigns     # ranked attack campaigns
    python -m repro redteam all --differential       # analyzer-agreement gate
    python -m repro sentinel SCENARIO    # streaming detection + trust report
    python -m repro sentinel all --plan severe --gate detect   # detection gate
    python -m repro audit                # self-audit the shipped source tree
    python -m repro audit --gate high --sarif   # CI gate, SARIF output
    python -m repro campaign run --tools chaos,lint --scenarios all
    python -m repro campaign resume <id> # re-execute only unfinished shards
    python -m repro campaign list        # journaled campaigns and their state
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import EXPERIMENTS, find

#: Every registered subcommand with its one-line description.  The
#: ``--help`` listing is generated from this table and a smoke test
#: asserts it stays in sync with the registered subparsers, so adding a
#: subcommand without describing it here fails CI.
SUBCOMMANDS: dict[str, str] = {
    "list": "enumerate experiments",
    "run": "run experiments (parallel, cached sweep)",
    "lint": "static security-configuration analysis",
    "flow": "static cross-layer taint/reachability analysis",
    "trace": "run an instrumented simulation and show its trace",
    "chaos": "run a scenario under an injected fault campaign",
    "redteam": "plan ranked attack campaigns (static red team)",
    "sentinel": "stream a fault campaign into the online alarm engine",
    "audit": "statically self-audit the shipped source tree",
    "campaign": "crash-safe resumable campaigns over the tool fleet",
}


def _cmd_list() -> int:
    width = max(len(e.exp_id) for e in EXPERIMENTS)
    print(f"{'id'.ljust(width)}  artifact   description")
    print(f"{'-' * width}  ---------  {'-' * 50}")
    for experiment in EXPERIMENTS:
        print(f"{experiment.exp_id.ljust(width)}  {experiment.paper_artifact:9s}  "
              f"{experiment.description}")
    return 0


def _render_artifacts(artifacts: list[dict]) -> str:
    sections = []
    for artifact in artifacts:
        sections.append("\n".join([f"=== {artifact['title']} ==="]
                                  + list(artifact["rows"])))
    return "\n\n".join(sections)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.runner import SweepRunner, validate_sweep_dict

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.cache_max_entries < 0:
        print("--cache-max-entries must be >= 0", file=sys.stderr)
        return 2
    if any(exp_id.lower() == "all" for exp_id in args.exp_ids):
        experiments = list(EXPERIMENTS)
    else:
        experiments = []
        for exp_id in args.exp_ids:
            try:
                experiment = find(exp_id)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
            if experiment not in experiments:
                experiments.append(experiment)

    def _stream(result) -> None:
        if args.json:
            return
        header = (f"--- {result.exp_id}: {result.status} "
                  f"({result.duration_s:.2f}s"
                  f"{', cached' if result.cached else ''}) ---")
        print(header)
        if result.cached:
            body = _render_artifacts(result.artifacts)
        else:
            body = result.output_tail.rstrip()
        if body:
            print(body)
        if result.error:
            print(f"error: {result.error}", file=sys.stderr)

    runner = SweepRunner(
        experiments, jobs=args.jobs, use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        cache_max_entries=args.cache_max_entries or None,
        base_seed=args.base_seed,
        timeout_s=args.timeout, on_result=_stream)
    report = runner.run()

    if args.json:
        document = report.to_json_dict()
        validate_sweep_dict(document)
        print(json.dumps(document, indent=2))
    else:
        print()
        print(report.to_table())
        if args.timeline:
            print()
            print(report.render_timeline())
    return report.exit_code()


def _cmd_lint_rules() -> int:
    from repro.lint import full_catalog

    print(f"{'id':8s} {'layer':18s} {'severity':9s} {'paper':16s} title")
    print(f"{'-' * 8} {'-' * 18} {'-' * 9} {'-' * 16} {'-' * 40}")
    for rule in sorted(full_catalog(), key=lambda r: r.rule_id):
        print(f"{rule.rule_id:8s} {rule.layer.name.lower():18s} "
              f"{rule.severity.name.lower():9s} {rule.paper_ref:16s} {rule.title}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (Baseline, Linter, Severity, build_scenario,
                            scenario_names, validate_report_dict)

    if args.rules:
        return _cmd_lint_rules()
    if args.scenario is None:
        print("a scenario name (or 'all') is required; available: "
              + ", ".join(scenario_names()), file=sys.stderr)
        return 2

    names = scenario_names() if args.scenario == "all" else [args.scenario]
    gate = None if args.gate == "none" else Severity.from_name(args.gate)

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2

    linter = Linter()
    if args.disable:
        try:
            linter.disable(*[r.strip() for r in args.disable.split(",")
                             if r.strip()])
        except KeyError as exc:
            print(f"--disable: {exc.args[0]}; see --rules for the catalog",
                  file=sys.stderr)
            return 2

    if args.write_baseline:
        # One baseline file for the whole invocation: findings from every
        # scenario are merged (a per-scenario loop writing to the same
        # path would keep only the last scenario's suppressions).
        combined: Baseline | None = None
        for name in names:
            try:
                target = build_scenario(name)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
            report = linter.run(target, baseline=baseline)
            captured = Baseline.from_report(report,
                                            comment=args.baseline_comment)
            if combined is None:
                combined = captured
            else:
                combined.target = "all"
                combined.entries.update(captured.entries)
        assert combined is not None
        combined.save(args.write_baseline)
        print(f"wrote baseline with {len(combined)} suppression(s) "
              f"from {len(names)} scenario(s) to {args.write_baseline}")
        return 0

    exit_code = 0
    for name in names:
        try:
            target = build_scenario(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        report = linter.run(target, baseline=baseline)
        if args.sarif:
            from repro.lint.sarif import to_sarif_dict, validate_sarif_dict

            document = to_sarif_dict(report, linter.enabled_rules())
            validate_sarif_dict(document)
            print(json.dumps(document, indent=2))
        elif args.json:
            document = report.to_json_dict(linter.enabled_rules())
            validate_report_dict(document)
            print(json.dumps(document, indent=2))
        else:
            print(report.to_table())
        exit_code = max(exit_code, report.exit_code(gate))
    return exit_code


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.flow import (analyze, flow_linter, render_cut, render_summary,
                            render_witnesses)
    from repro.lint import (Baseline, Severity, build_scenario, scenario_names,
                            validate_report_dict)

    if args.scenario is None:
        print("a scenario name (or 'all') is required; available: "
              + ", ".join(scenario_names()), file=sys.stderr)
        return 2
    names = scenario_names() if args.scenario == "all" else [args.scenario]
    gate = None if args.gate == "none" else Severity.from_name(args.gate)

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2

    linter = flow_linter()
    if args.write_baseline:
        # Mirror `lint --write-baseline`: one merged file per invocation.
        combined: Baseline | None = None
        for name in names:
            try:
                target = build_scenario(name)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
            report = linter.run(target, baseline=baseline)
            captured = Baseline.from_report(report)
            if combined is None:
                combined = captured
            else:
                combined.target = "all"
                combined.entries.update(captured.entries)
        assert combined is not None
        combined.save(args.write_baseline)
        print(f"wrote baseline with {len(combined)} suppression(s) "
              f"from {len(names)} scenario(s) to {args.write_baseline}")
        return 0

    exit_code = 0
    for name in names:
        try:
            target = build_scenario(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        report = linter.run(target, baseline=baseline)
        if args.sarif:
            from repro.lint.sarif import to_sarif_dict, validate_sarif_dict

            document = to_sarif_dict(report, linter.enabled_rules())
            validate_sarif_dict(document)
            print(json.dumps(document, indent=2))
        elif args.json:
            document = report.to_json_dict(linter.enabled_rules())
            validate_report_dict(document)
            print(json.dumps(document, indent=2))
        else:
            result = analyze(target)
            print(render_summary(result))
            if args.paths:
                print()
                print(render_witnesses(result))
            if args.cut:
                print()
                print(render_cut(result))
        exit_code = max(exit_code, report.exit_code(gate))
    return exit_code


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (TraceReport, instrumented, render_metrics_table,
                           run_trace_scenario, trace_scenario_names,
                           validate_trace_dict)
    from repro.obs.runtime import OBS
    from repro.obs.timeline import render_timeline

    if args.scenario is None:
        print("a scenario name (or 'all') is required; available: "
              + ", ".join(trace_scenario_names()), file=sys.stderr)
        return 2
    names = (trace_scenario_names() if args.scenario == "all"
             else [args.scenario])

    documents = []
    for name in names:
        try:
            with instrumented(capacity=args.events):
                result = run_trace_scenario(name)
                report = TraceReport.from_instrumentation(name, result=result)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if args.jsonl:
            written = OBS.events.write_jsonl(args.jsonl)
            print(f"wrote {written} event(s) to {args.jsonl}", file=sys.stderr)
        if args.json:
            document = report.to_json_dict()
            validate_trace_dict(document)
            documents.append(document)
            continue
        if args.timeline:
            print(f"=== timeline: {name} ===")
            print(render_timeline(report.events))
        else:
            print(report.to_table())
        if args.metrics:
            print(render_metrics_table(report.metrics))
    if args.json:
        payload = documents[0] if len(documents) == 1 else documents
        print(json.dumps(payload, indent=2))
    return 0


def _render_chaos_scenario(result: dict) -> str:
    """Human-readable block for one chaos scenario result."""
    lines = [f"=== chaos: {result['scenario']} "
             f"({'resilient' if result['resilient'] else 'no resilience'}) ==="]
    window = result["window"]
    lines.append(f"fault window [{window['start']:g}, {window['end']:g}) over "
                 f"{result['durationTicks']} ticks — "
                 f"{result['faults']['injected']} fault(s) injected")
    lines.append(f"{'layer':18s}  {'avail':>6s}  {'in-window':>9s}")
    for entry in result["layers"]:
        lines.append(f"{entry['layer']:18s}  {entry['availability']:6.2%}  "
                     f"{entry['windowAvailability']:9.2%}")
    degradation = result["degradation"]
    ttd, ttr = degradation["timeToDegradeS"], degradation["timeToRecoverS"]
    lines.append(
        f"service level: min={degradation['minLevel']} "
        f"final={degradation['finalLevel']} "
        f"degraded@{'never' if ttd is None else f'{ttd:g}s'} "
        f"recovered@{'never' if ttr is None else f'{ttr:g}s'}")
    retry = result["retry"]
    if retry["calls"]:
        lines.append(f"retries: {retry['retries']} across {retry['calls']} "
                     f"call(s), {retry['recovered']} recovered, "
                     f"{retry['exhausted']} exhausted")
    for breaker in result["breakers"]:
        lines.append(f"breaker {breaker['name']}: {breaker['opens']} open(s), "
                     f"{breaker['rejections']} rejection(s), "
                     f"final {breaker['finalState']}")
    if result["ssi"] is not None:
        ssi = result["ssi"]
        lines.append(f"ssi resolver: {ssi['hits']} fresh, {ssi['staleHits']} "
                     f"stale-cache, {ssi['failures']} failure(s)")
    if result["alerts"]:
        lines.append(f"ids alerts handled: {result['alerts']}")
    return "\n".join(lines)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import (chaos_scenario_names, plan_names,
                              run_chaos_campaign, validate_chaos_dict)

    if args.scenario is None:
        print("a scenario name (or 'all') is required; available: "
              + ", ".join(chaos_scenario_names()), file=sys.stderr)
        return 2
    if args.plan not in plan_names():
        print(f"unknown fault plan {args.plan!r}; available: "
              + ", ".join(plan_names()), file=sys.stderr)
        return 2
    names = (chaos_scenario_names() if args.scenario == "all"
             else [args.scenario])
    try:
        document = run_chaos_campaign(names, args.plan,
                                      base_seed=args.base_seed,
                                      duration=args.duration)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    validate_chaos_dict(document)

    if args.report:
        with open(args.report, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote chaos report to {args.report}", file=sys.stderr)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        blocks = [_render_chaos_scenario(result)
                  for result in document["scenarios"]]
        summary = document["summary"]
        blocks.append(
            f"campaign '{args.plan}': {summary['scenarioCount']} scenario(s), "
            f"{summary['faultsInjected']} fault(s) injected; layers sustained "
            f"in-window: {', '.join(summary['layersSustained']) or 'none'}; "
            f"at minimal-risk or below: "
            f"{', '.join(summary['scenariosAtMinimalRiskOrBelow']) or 'none'}")
        print("\n\n".join(blocks))
    return 0


def _cmd_redteam(args: argparse.Namespace) -> int:
    from repro.lint import Severity, build_scenario, scenario_names
    from repro.lint.engine import Linter
    from repro.redteam import (RT_RULES, plan, render_campaigns,
                               render_summary, run_differential,
                               run_redteam_campaign, validate_redteam_dict)

    if args.scenario is None:
        print("a scenario name (or 'all') is required; available: "
              + ", ".join(scenario_names()), file=sys.stderr)
        return 2
    names = scenario_names() if args.scenario == "all" else [args.scenario]
    for name in names:
        if name not in scenario_names():
            print(f"unknown scenario {name!r}; available: "
                  + ", ".join(scenario_names()), file=sys.stderr)
            return 2
    gate = None if args.gate == "none" else Severity.from_name(args.gate)

    if args.differential:
        violations_by_scenario = run_differential(names)
        failed = False
        for name in names:
            violations = violations_by_scenario[name]
            if violations:
                failed = True
                print(f"{name}: {len(violations)} analyzer "
                      f"disagreement(s)")
                for violation in violations:
                    print(f"  {violation}")
            else:
                print(f"{name}: analyzers agree (lint/flow/redteam)")
        return 1 if failed else 0

    if args.json:
        document = run_redteam_campaign(names, base_seed=args.base_seed)
        validate_redteam_dict(document)
        print(json.dumps(document, indent=2))
        # the gate still applies to machine-readable runs
        exit_code = 0
        for name in names:
            report = Linter(RT_RULES).run(build_scenario(name))
            exit_code = max(exit_code, report.exit_code(gate))
        return exit_code

    exit_code = 0
    for name in names:
        target = build_scenario(name)
        report = Linter(RT_RULES).run(target)
        if args.sarif:
            from repro.lint.sarif import to_sarif_dict, validate_sarif_dict

            document = to_sarif_dict(report, RT_RULES)
            validate_sarif_dict(document)
            print(json.dumps(document, indent=2))
        else:
            result = plan(target)
            print(render_summary(result))
            if args.campaigns:
                print()
                print(render_campaigns(result, top=args.top))
        exit_code = max(exit_code, report.exit_code(gate))
    return exit_code


def _render_sentinel_scenario(result: dict, *, trust: bool = False,
                              alarms: bool = False) -> str:
    """Human-readable block for one sentinel scenario result."""
    sentinel = result["sentinel"]
    detection = result["detection"]
    lines = [f"=== sentinel: {result['scenario']} "
             f"({'resilient' if result['resilient'] else 'no resilience'}) ==="]
    window = result["window"]
    lines.append(f"fault window [{window['start']:g}, {window['end']:g}) over "
                 f"{result['durationTicks']} ticks — "
                 f"{result['faults']['injected']} fault(s) injected, "
                 f"{sentinel['eventsConsumed']} event(s) streamed")
    first = detection["firstAlarmT"]
    safe_stop = detection["safeStopT"]
    lines.append(
        f"first alarm: {'never' if first is None else f't={first:g}'}; "
        f"safe stop: {'never' if safe_stop is None else f't={safe_stop:g}'}; "
        f"lead: " + ("n/a" if detection["leadTicks"] is None
                     else f"{detection['leadTicks']:g} tick(s)"))
    for incident in sentinel["incidents"]:
        closed = incident["closedT"]
        lines.append(
            f"incident #{incident['id']}: opened t={incident['openedT']:g}, "
            f"{'open' if closed is None else f'closed t={closed:g}'}, "
            f"{incident['alarmCount']} alarm(s) across "
            f"{', '.join(incident['sources'])}"
            f"{' [cross-layer]' if incident['crossLayer'] else ''}")
    if detection["trustCollapsed"]:
        lines.append("trust collapsed: " + ", ".join(detection["trustCollapsed"]))
    if result["response"]["isolated"]:
        lines.append("isolated: " + ", ".join(result["response"]["isolated"]))
    degradation = result["degradation"]
    lines.append(f"service level: min={degradation['minLevel']} "
                 f"final={degradation['finalLevel']}")
    if alarms:
        lines.append(f"{'source':18s} {'detector':17s} {'state':8s} "
                     f"{'moves':>5s}  first alarm")
        for machine in sentinel["machines"]:
            first_alarm = machine["firstAlarmT"]
            lines.append(
                f"{machine['source']:18s} {machine['detector']:17s} "
                f"{machine['finalState']:8s} {machine['transitions']:5d}  "
                f"{'-' if first_alarm is None else f't={first_alarm:g}'}")
    if trust:
        lines.append(f"{'source':18s} {'phase':10s} {'score':>6s} "
                     f"{'min':>6s} {'hard':>4s}  collapsed")
        for entry in sentinel["trust"]:
            collapsed_t = entry["collapsedT"]
            lines.append(
                f"{entry['source']:18s} {entry['phase']:10s} "
                f"{entry['score']:6.3f} {entry['minScore']:6.3f} "
                f"{entry['hardHits']:4d}  "
                f"{'-' if collapsed_t is None else f't={collapsed_t:g}'}")
    return "\n".join(lines)


def _sentinel_gate_failures(document: dict, gate: str) -> list[str]:
    """The twin CI gates: 'clean' (no alarms) and 'detect' (alarm in time)."""
    failures = []
    for result in document["scenarios"]:
        name = result["scenario"]
        detection = result["detection"]
        if gate == "clean":
            if detection["alarmIncidents"]:
                failures.append(
                    f"{name}: {detection['alarmIncidents']} ALARM incident(s) "
                    f"on a scenario expected to stay clean")
        elif gate == "detect":
            if not detection["alarmRaised"]:
                failures.append(f"{name}: no ALARM raised")
            elif not detection["detectedBeforeSafeStop"]:
                failures.append(
                    f"{name}: first alarm t={detection['firstAlarmT']:g} "
                    f"missed safe stop t={detection['safeStopT']:g}")
            if not detection["trustCollapsed"]:
                failures.append(f"{name}: no trust score collapsed")
    return failures


def _cmd_sentinel(args: argparse.Namespace) -> int:
    from repro.faults import plan_names
    from repro.sentinel import (run_sentinel_campaign, sentinel_scenario_names,
                                validate_sentinel_dict)

    if args.scenario is None:
        print("a scenario name (or 'all') is required; available: "
              + ", ".join(sentinel_scenario_names()), file=sys.stderr)
        return 2
    if args.plan not in plan_names():
        print(f"unknown fault plan {args.plan!r}; available: "
              + ", ".join(plan_names()), file=sys.stderr)
        return 2
    names = (sentinel_scenario_names() if args.scenario == "all"
             else [args.scenario])
    try:
        document = run_sentinel_campaign(names, args.plan,
                                         base_seed=args.base_seed,
                                         duration=args.duration)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    validate_sentinel_dict(document)

    if args.report:
        with open(args.report, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote sentinel report to {args.report}", file=sys.stderr)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        blocks = [_render_sentinel_scenario(result, trust=args.trust,
                                            alarms=args.alarms)
                  for result in document["scenarios"]]
        summary = document["summary"]
        blocks.append(
            f"campaign '{args.plan}': {summary['scenarioCount']} scenario(s), "
            f"{summary['alarmIncidents']} incident(s); detected: "
            f"{', '.join(summary['scenariosDetected']) or 'none'}; clean: "
            f"{', '.join(summary['scenariosClean']) or 'none'}; trust "
            f"collapsed: {', '.join(summary['trustCollapsed']) or 'none'}")
        print("\n\n".join(blocks))

    if args.gate != "none":
        failures = _sentinel_gate_failures(document, args.gate)
        for failure in failures:
            print(f"gate '{args.gate}' failed — {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


def _cmd_audit_rules() -> int:
    from repro.audit import all_checkers

    print(f"{'id':8s} {'severity':9s} title")
    print(f"{'-' * 8} {'-' * 9} {'-' * 50}")
    for checker in all_checkers():
        print(f"{checker.rule_id:8s} {checker.severity.name.lower():9s} "
              f"{checker.title}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit import (AuditContext, AuditEngine, to_sarif_dict,
                             validate_audit_dict)
    from repro.lint import Baseline, Severity

    if args.rules:
        return _cmd_audit_rules()

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2

    engine = AuditEngine()
    try:
        context = AuditContext.parse(args.root)
    except (OSError, SyntaxError) as exc:
        print(f"cannot parse audit root: {exc}", file=sys.stderr)
        return 2
    report = engine.run(context, baseline=baseline)

    if args.write_baseline:
        captured = Baseline.from_report(
            report, comment="accepted: pre-existing audit finding")
        captured.save(args.write_baseline)
        print(f"wrote baseline with {len(captured)} suppression(s) to "
              f"{args.write_baseline}")
        return 0

    gate = None if args.gate == "none" else Severity.from_name(args.gate)
    if args.sarif:
        from repro.lint.sarif import validate_sarif_dict

        document = to_sarif_dict(report, engine.checkers)
        validate_sarif_dict(document)
        print(json.dumps(document, indent=2))
    elif args.json:
        document = report.to_json_dict(engine.checkers)
        validate_audit_dict(document)
        print(json.dumps(document, indent=2))
    else:
        print(report.to_table())
    return report.exit_code(gate)


def _campaign_spec_from_args(args: argparse.Namespace):
    """Build the shard matrix a ``campaign run`` invocation asks for."""
    from repro.campaign import CampaignSpec, CampaignTool
    from repro.faults import plan_names
    from repro.lint import scenario_names

    tool_values = [t.strip() for t in args.tools.split(",") if t.strip()]
    if any(value == "all" for value in tool_values):
        tool_values = [tool.value for tool in CampaignTool]
    tools = []
    for value in tool_values:
        try:
            tools.append(CampaignTool(value))
        except ValueError:
            known = ", ".join(tool.value for tool in CampaignTool)
            raise ValueError(f"unknown tool {value!r}; available: {known}")
    scenarios = ([s.strip() for s in args.scenarios.split(",") if s.strip()]
                 if args.scenarios != "all" else sorted(scenario_names()))
    for scenario in scenarios:
        if scenario not in scenario_names():
            raise ValueError(f"unknown scenario {scenario!r}; available: "
                             + ", ".join(scenario_names()))
    plans = [p.strip() for p in args.plans.split(",") if p.strip()]
    for plan in plans:
        if plan not in plan_names():
            raise ValueError(f"unknown fault plan {plan!r}; available: "
                             + ", ".join(plan_names()))
    seeds = [int(s) for s in str(args.seeds).split(",") if s.strip()]
    return CampaignSpec.matrix(tools=tools, scenarios=scenarios, plans=plans,
                               seeds=seeds, duration=args.duration,
                               name=args.name)


def _campaign_emit(report, args: argparse.Namespace) -> int:
    from repro.campaign import validate_campaign_dict

    document = report.to_json_dict()
    validate_campaign_dict(document)
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote campaign report to {args.report}", file=sys.stderr)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(report.to_table())
    return report.exit_code()


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (CampaignEngine, CampaignError, JournalCorrupt,
                                list_campaigns, load_campaign)

    if args.campaign_command == "list":
        rows = list_campaigns(args.journal_root)
        if not rows:
            print("no journaled campaigns")
            return 0
        width = max(len(row["id"]) for row in rows)
        print(f"{'id'.ljust(width)}  {'status':12s}  settled")
        for row in rows:
            print(f"{row['id'].ljust(width)}  {row['status']:12s}  "
                  f"{row['settled']}/{row['shards']}")
        return 0

    if args.campaign_command in ("resume", "status"):
        try:
            spec = load_campaign(args.campaign_id, args.journal_root)
        except (CampaignError, JournalCorrupt, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
    else:  # run
        try:
            spec = _campaign_spec_from_args(args)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    engine = CampaignEngine(
        spec, jobs=args.jobs, journal_root=args.journal_root,
        shard_timeout_s=args.timeout,
        install_signal_handlers=args.campaign_command != "status")

    if args.campaign_command == "status":
        from repro.campaign import replay

        state = replay(engine.journal_file)
        settled = sum(1 for shard in spec.shards
                      if state.settled(shard.shard_id))
        status = "complete" if state.ended else (
            "interrupted" if state.interrupts else "incomplete")
        print(f"campaign {engine.campaign_id}: {status}, "
              f"{settled}/{len(spec)} shard(s) settled, "
              f"{len(state.quarantined)} quarantined, "
              f"{state.records} journal record(s)")
        if state.in_flight:
            print("in flight at last crash/interrupt: "
                  + ", ".join(state.in_flight))
        if not state.ended:
            print(f"resume with: {engine.resume_command}")
        return 0

    try:
        report = engine.run(resume=args.campaign_command == "resume")
    except (CampaignError, JournalCorrupt) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    code = _campaign_emit(report, args)
    if report.interrupted:
        print(f"interrupted; resume with: {engine.resume_command}",
              file=sys.stderr)
    return code


def build_parser() -> argparse.ArgumentParser:
    """The full CLI parser; every subcommand comes from SUBCOMMANDS."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's figures and tables.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help=SUBCOMMANDS["list"])
    run_parser = subparsers.add_parser("run", help=SUBCOMMANDS["run"])
    run_parser.add_argument("exp_ids", nargs="+", metavar="EXP_ID",
                            help="experiment id(s) from `list`, or 'all'")
    run_parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                            help="worker processes for the sweep (default 1)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="ignore and don't update the result cache")
    run_parser.add_argument("--json", action="store_true",
                            help="emit the schema-validated sweep document")
    run_parser.add_argument("--timeline", action="store_true",
                            help="append the sweep dispatch/completion "
                                 "timeline")
    run_parser.add_argument("--timeout", type=float, default=900.0,
                            metavar="S",
                            help="per-experiment timeout in seconds "
                                 "(default 900)")
    run_parser.add_argument("--base-seed", type=int, default=0, metavar="N",
                            help="sweep base seed; re-shards every "
                                 "experiment's rng streams (default 0)")
    run_parser.add_argument("--cache-dir", metavar="DIR",
                            help="result-cache directory "
                                 "(default .repro-cache/runner)")
    run_parser.add_argument("--cache-max-entries", type=int, default=512,
                            metavar="N",
                            help="prune the result cache to the N most "
                                 "recently used entries on every write "
                                 "(default 512; 0 disables pruning)")

    lint_parser = subparsers.add_parser("lint", help=SUBCOMMANDS["lint"])
    lint_parser.add_argument("scenario", nargs="?",
                             help="scenario name from repro.lint.SCENARIOS, or 'all'")
    lint_parser.add_argument("--json", action="store_true",
                             help="emit the SARIF-lite JSON report")
    lint_parser.add_argument("--gate", default="low",
                             choices=["info", "low", "medium", "high",
                                      "critical", "none"],
                             help="fail (exit 1) on findings at or above this "
                                  "severity (default: low; 'none' never fails)")
    lint_parser.add_argument("--baseline", metavar="FILE",
                             help="suppress findings pinned in this baseline file")
    lint_parser.add_argument("--write-baseline", metavar="FILE",
                             help="capture current findings as the baseline "
                                  "and exit 0")
    lint_parser.add_argument("--baseline-comment",
                             default="accepted: intentionally insecure scenario",
                             help="comment recorded with --write-baseline entries")
    lint_parser.add_argument("--disable", metavar="IDS",
                             help="comma-separated rule ids to skip")
    lint_parser.add_argument("--rules", action="store_true",
                             help="print the rule catalog and exit")
    lint_parser.add_argument("--sarif", action="store_true",
                             help="emit a SARIF 2.1.0 log instead of a table")

    flow_parser = subparsers.add_parser("flow", help=SUBCOMMANDS["flow"])
    flow_parser.add_argument("scenario", nargs="?",
                             help="scenario name from repro.lint.SCENARIOS, "
                                  "or 'all'")
    flow_parser.add_argument("--paths", action="store_true",
                             help="print every source->sink witness hop by hop")
    flow_parser.add_argument("--cut", action="store_true",
                             help="print the minimal hardening cut per sink")
    flow_parser.add_argument("--json", action="store_true",
                             help="emit the SARIF-lite JSON report "
                                  "(FLOW rules only)")
    flow_parser.add_argument("--sarif", action="store_true",
                             help="emit a SARIF 2.1.0 log (FLOW rules only)")
    flow_parser.add_argument("--gate", default="low",
                             choices=["info", "low", "medium", "high",
                                      "critical", "none"],
                             help="fail (exit 1) on findings at or above this "
                                  "severity (default: low; 'none' never fails)")
    flow_parser.add_argument("--baseline", metavar="FILE",
                             help="suppress findings pinned in this baseline "
                                  "file")
    flow_parser.add_argument("--write-baseline", metavar="FILE",
                             help="capture current flow findings as the "
                                  "baseline and exit 0")

    trace_parser = subparsers.add_parser("trace", help=SUBCOMMANDS["trace"])
    trace_parser.add_argument("scenario", nargs="?",
                              help="scenario name from repro.obs.TRACE_SCENARIOS, "
                                   "or 'all'")
    trace_parser.add_argument("--json", action="store_true",
                              help="emit the schema-validated trace document")
    trace_parser.add_argument("--metrics", action="store_true",
                              help="append the counters/gauges/histograms table")
    trace_parser.add_argument("--timeline", action="store_true",
                              help="print only the cross-layer event timeline")
    trace_parser.add_argument("--events", type=int, default=65536,
                              metavar="N",
                              help="event ring-buffer capacity (default 65536)")
    trace_parser.add_argument("--jsonl", metavar="FILE",
                              help="also export the event log as JSONL")

    chaos_parser = subparsers.add_parser("chaos", help=SUBCOMMANDS["chaos"])
    chaos_parser.add_argument("scenario", nargs="?",
                              help="scenario name from "
                                   "repro.faults.CHAOS_SCENARIOS, or 'all'")
    chaos_parser.add_argument("--plan", default="baseline",
                              metavar="PLAN",
                              help="fault plan to inject "
                                   "(baseline or severe; default baseline)")
    chaos_parser.add_argument("--base-seed", type=int, default=0, metavar="N",
                              help="campaign base seed; identical seed + plan "
                                   "replays the exact fault sequence "
                                   "(default 0)")
    chaos_parser.add_argument("--duration", type=int, default=30, metavar="N",
                              help="campaign length in virtual-clock ticks "
                                   "(default 30)")
    chaos_parser.add_argument("--json", action="store_true",
                              help="emit the schema-validated chaos document")
    chaos_parser.add_argument("--report", metavar="FILE",
                              help="also write the chaos JSON document to FILE")

    redteam_parser = subparsers.add_parser("redteam",
                                           help=SUBCOMMANDS["redteam"])
    redteam_parser.add_argument("scenario", nargs="?",
                                help="scenario name from "
                                     "repro.lint.SCENARIOS, or 'all'")
    redteam_parser.add_argument("--campaigns", action="store_true",
                                help="print every ranked campaign hop by hop "
                                     "with the defense that breaks each step")
    redteam_parser.add_argument("--top", type=int, default=None, metavar="N",
                                help="with --campaigns, show only the N "
                                     "cheapest campaigns")
    redteam_parser.add_argument("--json", action="store_true",
                                help="emit the schema-validated campaign "
                                     "document")
    redteam_parser.add_argument("--sarif", action="store_true",
                                help="emit a SARIF 2.1.0 log (RT rules only)")
    redteam_parser.add_argument("--gate", default="low",
                                choices=["info", "low", "medium", "high",
                                         "critical", "none"],
                                help="fail (exit 1) on RT findings at or "
                                     "above this severity (default: low; "
                                     "'none' never fails)")
    redteam_parser.add_argument("--differential", action="store_true",
                                help="check the three static analyzers "
                                     "agree; exit 1 on any disagreement")
    redteam_parser.add_argument("--base-seed", type=int, default=0,
                                metavar="N",
                                help="recorded in the JSON document; the "
                                     "planner is static, so output is "
                                     "byte-identical per (scenario, seed) "
                                     "(default 0)")

    sentinel_parser = subparsers.add_parser("sentinel",
                                            help=SUBCOMMANDS["sentinel"])
    sentinel_parser.add_argument("scenario", nargs="?",
                                 help="scenario name from "
                                      "repro.faults.CHAOS_SCENARIOS, or 'all'")
    sentinel_parser.add_argument("--plan", default="baseline", metavar="PLAN",
                                 help="fault plan to stream against "
                                      "(baseline or severe; default baseline)")
    sentinel_parser.add_argument("--base-seed", type=int, default=0,
                                 metavar="N",
                                 help="campaign base seed; identical seed + "
                                      "plan replays the exact telemetry and "
                                      "verdicts (default 0)")
    sentinel_parser.add_argument("--duration", type=int, default=30,
                                 metavar="N",
                                 help="campaign length in virtual-clock ticks "
                                      "(default 30)")
    sentinel_parser.add_argument("--trust", action="store_true",
                                 help="append the per-source trust table")
    sentinel_parser.add_argument("--alarms", action="store_true",
                                 help="append the per-machine alarm table")
    sentinel_parser.add_argument("--json", action="store_true",
                                 help="emit the schema-validated sentinel "
                                      "document")
    sentinel_parser.add_argument("--report", metavar="FILE",
                                 help="also write the sentinel JSON document "
                                      "to FILE")
    sentinel_parser.add_argument("--gate", default="none",
                                 choices=["clean", "detect", "none"],
                                 help="fail (exit 1) unless every scenario "
                                      "stays alarm-free ('clean') or raises "
                                      "an ALARM with collapsed trust before "
                                      "SAFE_STOP ('detect'); default none")

    audit_parser = subparsers.add_parser("audit", help=SUBCOMMANDS["audit"])
    audit_parser.add_argument("--root", metavar="DIR", default=None,
                              help="source tree to audit "
                                   "(default: the shipped src/repro)")
    audit_parser.add_argument("--json", action="store_true",
                              help="emit the schema-validated audit document")
    audit_parser.add_argument("--sarif", action="store_true",
                              help="emit a SARIF 2.1.0 log (AUD rules only)")
    audit_parser.add_argument("--gate", nargs="?", const="info",
                              default="none",
                              choices=["info", "low", "medium", "high",
                                       "critical", "none"],
                              help="fail (exit 1) on findings at or above "
                                   "this severity (bare --gate means 'info'; "
                                   "default: never fail)")
    audit_parser.add_argument("--baseline", metavar="FILE",
                              help="suppress findings pinned in this "
                                   "baseline file")
    audit_parser.add_argument("--write-baseline", metavar="FILE",
                              help="capture current findings as the baseline "
                                   "and exit 0")
    audit_parser.add_argument("--rules", action="store_true",
                              help="print the checker catalog and exit")

    campaign_parser = subparsers.add_parser("campaign",
                                            help=SUBCOMMANDS["campaign"])
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command",
                                                  required=True)

    def _campaign_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                       help="supervised worker processes (default 1)")
        p.add_argument("--timeout", type=float, default=120.0, metavar="S",
                       help="per-shard time budget in seconds; retries get "
                            "only what remains (default 120)")
        p.add_argument("--journal-root", metavar="DIR", default=None,
                       help="journal directory "
                            "(default .repro-cache/campaigns)")
        p.add_argument("--json", action="store_true",
                       help="emit the schema-validated campaign document")
        p.add_argument("--report", metavar="FILE",
                       help="also write the campaign JSON document to FILE")

    campaign_run = campaign_sub.add_parser(
        "run", help="journal and execute a new shard matrix")
    campaign_run.add_argument("--tools", default="all", metavar="T,T",
                              help="comma-separated tools "
                                   "(chaos,sentinel,redteam,flow,lint; "
                                   "default all)")
    campaign_run.add_argument("--scenarios", default="all", metavar="S,S",
                              help="comma-separated scenario names "
                                   "(default all)")
    campaign_run.add_argument("--plans", default="baseline", metavar="P,P",
                              help="fault plans for chaos/sentinel shards "
                                   "(default baseline)")
    campaign_run.add_argument("--seeds", default="0", metavar="N,N",
                              help="comma-separated base seeds (default 0)")
    campaign_run.add_argument("--duration", type=int, default=30, metavar="N",
                              help="virtual-clock ticks for chaos/sentinel "
                                   "shards (default 30)")
    campaign_run.add_argument("--name", default="", metavar="NAME",
                              help="campaign id (default: a digest of the "
                                   "shard matrix)")
    _campaign_common(campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="replay a journal and run only unfinished shards")
    campaign_resume.add_argument("campaign_id", metavar="ID",
                                 help="campaign id from `campaign list`")
    _campaign_common(campaign_resume)

    campaign_status = campaign_sub.add_parser(
        "status", help="summarise one campaign's journal without running")
    campaign_status.add_argument("campaign_id", metavar="ID",
                                 help="campaign id from `campaign list`")
    _campaign_common(campaign_status)

    campaign_list = campaign_sub.add_parser(
        "list", help="enumerate journaled campaigns")
    campaign_list.add_argument("--journal-root", metavar="DIR", default=None,
                               help="journal directory "
                                    "(default .repro-cache/campaigns)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "flow":
        return _cmd_flow(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "redteam":
        return _cmd_redteam(args)
    if args.command == "sentinel":
        return _cmd_sentinel(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    return _cmd_run(args)


if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like other
        # well-behaved CLI tools instead of tracebacking.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
