"""Command-line experiment runner and static analyzer.

Usage::

    python -m repro list                 # enumerate all experiments
    python -m repro run FIG2             # regenerate one figure/table
    python -m repro run all              # the full reproduction sweep
    python -m repro lint SCENARIO        # static security analysis
    python -m repro lint --rules         # the seclint rule catalog
    python -m repro trace SCENARIO       # instrumented simulation trace
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

from repro.experiments import EXPERIMENTS, benchmarks_dir, find


def _cmd_list() -> int:
    width = max(len(e.exp_id) for e in EXPERIMENTS)
    print(f"{'id'.ljust(width)}  artifact   description")
    print(f"{'-' * width}  ---------  {'-' * 50}")
    for experiment in EXPERIMENTS:
        print(f"{experiment.exp_id.ljust(width)}  {experiment.paper_artifact:9s}  "
              f"{experiment.description}")
    return 0


def _cmd_run(exp_id: str) -> int:
    directory = benchmarks_dir()
    if exp_id.lower() == "all":
        targets = [str(directory)]
    else:
        try:
            experiment = find(exp_id)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        targets = [str(directory / experiment.bench_file)]
    command = [sys.executable, "-m", "pytest", *targets, "--benchmark-only", "-q"]
    return subprocess.call(command)


def _cmd_lint_rules() -> int:
    from repro.lint import CATALOG

    print(f"{'id':8s} {'layer':18s} {'severity':9s} {'paper':16s} title")
    print(f"{'-' * 8} {'-' * 18} {'-' * 9} {'-' * 16} {'-' * 40}")
    for rule in sorted(CATALOG, key=lambda r: r.rule_id):
        print(f"{rule.rule_id:8s} {rule.layer.name.lower():18s} "
              f"{rule.severity.name.lower():9s} {rule.paper_ref:16s} {rule.title}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (Baseline, Linter, Severity, build_scenario,
                            scenario_names, validate_report_dict)

    if args.rules:
        return _cmd_lint_rules()
    if args.scenario is None:
        print("a scenario name (or 'all') is required; available: "
              + ", ".join(scenario_names()), file=sys.stderr)
        return 2

    names = scenario_names() if args.scenario == "all" else [args.scenario]
    gate = None if args.gate == "none" else Severity.from_name(args.gate)

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2

    linter = Linter()
    if args.disable:
        try:
            linter.disable(*[r.strip() for r in args.disable.split(",")
                             if r.strip()])
        except KeyError as exc:
            print(f"--disable: {exc.args[0]}; see --rules for the catalog",
                  file=sys.stderr)
            return 2

    exit_code = 0
    for name in names:
        try:
            target = build_scenario(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        report = linter.run(target, baseline=baseline)
        if args.write_baseline:
            Baseline.from_report(report, comment=args.baseline_comment).save(
                args.write_baseline)
            print(f"wrote baseline with {len(report.findings)} suppression(s) "
                  f"to {args.write_baseline}")
            continue
        if args.json:
            document = report.to_json_dict(linter.enabled_rules())
            validate_report_dict(document)
            print(json.dumps(document, indent=2))
        else:
            print(report.to_table())
        exit_code = max(exit_code, report.exit_code(gate))
    return exit_code


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (TraceReport, instrumented, render_metrics_table,
                           run_trace_scenario, trace_scenario_names,
                           validate_trace_dict)
    from repro.obs.runtime import OBS
    from repro.obs.timeline import render_timeline

    if args.scenario is None:
        print("a scenario name (or 'all') is required; available: "
              + ", ".join(trace_scenario_names()), file=sys.stderr)
        return 2
    names = (trace_scenario_names() if args.scenario == "all"
             else [args.scenario])

    documents = []
    for name in names:
        try:
            with instrumented(capacity=args.events):
                result = run_trace_scenario(name)
                report = TraceReport.from_instrumentation(name, result=result)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if args.jsonl:
            written = OBS.events.write_jsonl(args.jsonl)
            print(f"wrote {written} event(s) to {args.jsonl}", file=sys.stderr)
        if args.json:
            document = report.to_json_dict()
            validate_trace_dict(document)
            documents.append(document)
            continue
        if args.timeline:
            print(f"=== timeline: {name} ===")
            print(render_timeline(report.events))
        else:
            print(report.to_table())
        if args.metrics:
            print(render_metrics_table(report.metrics))
    if args.json:
        payload = documents[0] if len(documents) == 1 else documents
        print(json.dumps(payload, indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's figures and tables.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="enumerate experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("exp_id", help="experiment id from `list`, or 'all'")

    lint_parser = subparsers.add_parser(
        "lint", help="static security-configuration analysis")
    lint_parser.add_argument("scenario", nargs="?",
                             help="scenario name from repro.lint.SCENARIOS, or 'all'")
    lint_parser.add_argument("--json", action="store_true",
                             help="emit the SARIF-lite JSON report")
    lint_parser.add_argument("--gate", default="low",
                             choices=["info", "low", "medium", "high",
                                      "critical", "none"],
                             help="fail (exit 1) on findings at or above this "
                                  "severity (default: low; 'none' never fails)")
    lint_parser.add_argument("--baseline", metavar="FILE",
                             help="suppress findings pinned in this baseline file")
    lint_parser.add_argument("--write-baseline", metavar="FILE",
                             help="capture current findings as the baseline "
                                  "and exit 0")
    lint_parser.add_argument("--baseline-comment",
                             default="accepted: intentionally insecure scenario",
                             help="comment recorded with --write-baseline entries")
    lint_parser.add_argument("--disable", metavar="IDS",
                             help="comma-separated rule ids to skip")
    lint_parser.add_argument("--rules", action="store_true",
                             help="print the rule catalog and exit")

    trace_parser = subparsers.add_parser(
        "trace", help="run an instrumented simulation and show its trace")
    trace_parser.add_argument("scenario", nargs="?",
                              help="scenario name from repro.obs.TRACE_SCENARIOS, "
                                   "or 'all'")
    trace_parser.add_argument("--json", action="store_true",
                              help="emit the schema-validated trace document")
    trace_parser.add_argument("--metrics", action="store_true",
                              help="append the counters/gauges/histograms table")
    trace_parser.add_argument("--timeline", action="store_true",
                              help="print only the cross-layer event timeline")
    trace_parser.add_argument("--events", type=int, default=65536,
                              metavar="N",
                              help="event ring-buffer capacity (default 65536)")
    trace_parser.add_argument("--jsonl", metavar="FILE",
                              help="also export the event log as JSONL")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return _cmd_run(args.exp_id)


if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like other
        # well-behaved CLI tools instead of tracebacking.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
