"""Command-line experiment runner.

Usage::

    python -m repro list                 # enumerate all experiments
    python -m repro run FIG2             # regenerate one figure/table
    python -m repro run all              # the full reproduction sweep
"""

from __future__ import annotations

import argparse
import subprocess
import sys

from repro.experiments import EXPERIMENTS, benchmarks_dir, find


def _cmd_list() -> int:
    width = max(len(e.exp_id) for e in EXPERIMENTS)
    print(f"{'id'.ljust(width)}  artifact   description")
    print(f"{'-' * width}  ---------  {'-' * 50}")
    for experiment in EXPERIMENTS:
        print(f"{experiment.exp_id.ljust(width)}  {experiment.paper_artifact:9s}  "
              f"{experiment.description}")
    return 0


def _cmd_run(exp_id: str) -> int:
    directory = benchmarks_dir()
    if exp_id.lower() == "all":
        targets = [str(directory)]
    else:
        try:
            experiment = find(exp_id)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        targets = [str(directory / experiment.bench_file)]
    command = [sys.executable, "-m", "pytest", *targets, "--benchmark-only", "-q"]
    return subprocess.call(command)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's figures and tables.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="enumerate experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("exp_id", help="experiment id from `list`, or 'all'")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args.exp_id)


if __name__ == "__main__":
    raise SystemExit(main())
