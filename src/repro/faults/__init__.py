"""Deterministic fault injection and resilience (paper §VIII).

The paper's fail-operational requirement — autonomous systems must
*degrade* under attack and partial failure, never just crash — is only
testable against injected faults.  This package provides:

* :mod:`repro.faults.plan` — the typed fault taxonomy
  (:class:`FaultKind`) and windowed, probabilistic campaign plans
  (``baseline`` and ``severe``);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, per-``(kind,
  target)`` seeded firing decisions with zero ambient randomness;
* :mod:`repro.faults.resilience` — :func:`retry_with_backoff`,
  :class:`CircuitBreaker`, :class:`Watchdog`, :class:`HealthMonitor`,
  all on a :class:`VirtualClock`;
* :mod:`repro.faults.degradation` — the FULL → DEGRADED → MINIMAL_RISK
  → SAFE_STOP ladder with hysteresis, fed by health signals and
  :class:`repro.core.response.ResponseEngine` escalations;
* :mod:`repro.faults.chaos` — the five scenarios run as chaos
  campaigns (``python -m repro chaos``);
* :mod:`repro.faults.report` — the schema-validated chaos JSON.
"""

from repro.faults.chaos import (
    CHAOS_SCENARIOS,
    DEFAULT_DURATION,
    ChaosPosture,
    chaos_scenario_names,
    run_chaos_campaign,
    run_chaos_scenario,
)
from repro.faults.degradation import DegradationManager, LevelChange, ServiceLevel
from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.plan import (
    KIND_LAYER,
    FaultKind,
    FaultPlan,
    FaultSpec,
    baseline_plan,
    get_plan,
    plan_names,
    severe_plan,
)
from repro.faults.report import ChaosSchemaError, validate_chaos_dict
from repro.faults.resilience import (
    BreakerOpen,
    BreakerState,
    CircuitBreaker,
    HealthMonitor,
    RetryBudgetExceeded,
    RetryPolicy,
    RetryStats,
    VirtualClock,
    Watchdog,
    retry_with_backoff,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "KIND_LAYER",
    "baseline_plan",
    "severe_plan",
    "get_plan",
    "plan_names",
    "FaultInjector",
    "InjectionRecord",
    "VirtualClock",
    "RetryPolicy",
    "RetryStats",
    "RetryBudgetExceeded",
    "retry_with_backoff",
    "BreakerState",
    "BreakerOpen",
    "CircuitBreaker",
    "Watchdog",
    "HealthMonitor",
    "ServiceLevel",
    "LevelChange",
    "DegradationManager",
    "ChaosPosture",
    "CHAOS_SCENARIOS",
    "chaos_scenario_names",
    "run_chaos_scenario",
    "run_chaos_campaign",
    "DEFAULT_DURATION",
    "ChaosSchemaError",
    "validate_chaos_dict",
]
