"""The deterministic fault injector.

:class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into per-opportunity firing decisions with **zero ambient randomness**:
every ``(kind, target)`` pair owns a :mod:`repro.core.rng` stream seeded
from ``faults/<plan>/<kind>/<target>`` and the campaign base seed, so an
identical ``(plan, base seed)`` replays the exact same fault sequence —
the property the chaos CLI's byte-identical-report guarantee rests on.

The no-fault fast path matters: simulators consult the injector on hot
paths (per CAN frame, per ranging exchange), so a ``(kind, target)``
pair with no scheduled specs returns ``False`` after one dict probe —
``benchmarks/bench_faults.py`` pins this below 5% of the CAN per-frame
budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.rng import numpy_rng, python_rng
from repro.faults.plan import KIND_LAYER, FaultKind, FaultPlan, FaultSpec
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["InjectionRecord", "FaultInjector"]


@dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired."""

    t: float
    kind: FaultKind
    target: str
    magnitude: float


class FaultInjector:
    """Schedule and fire the faults of one plan, deterministically.

    Args:
        plan: the campaign to execute.
        base_seed: shards every per-``(kind, target)`` stream; ``None``
            uses the ambient ``REPRO_BASE_SEED`` default like the rest
            of :mod:`repro.core.rng`.
    """

    def __init__(self, plan: FaultPlan, *, base_seed: int | None = None) -> None:
        self.plan = plan
        self.base_seed = base_seed
        self.records: list[InjectionRecord] = []
        self._specs: dict[tuple[FaultKind, str], tuple[FaultSpec, ...]] = {}
        for spec in plan.specs:
            key = (spec.kind, spec.target)
            self._specs[key] = self._specs.get(key, ()) + (spec,)
        self._streams: dict[tuple[FaultKind, str], random.Random] = {}
        self._noise: dict[tuple[FaultKind, str], np.random.Generator] = {}

    # -- streams -------------------------------------------------------------

    def _label(self, kind: FaultKind, target: str) -> str:
        return f"faults/{self.plan.name}/{kind.value}/{target}"

    def _stream(self, kind: FaultKind, target: str) -> random.Random:
        key = (kind, target)
        stream = self._streams.get(key)
        if stream is None:
            stream = python_rng(self._label(kind, target), self.base_seed)
            self._streams[key] = stream
        return stream

    def _noise_stream(self, kind: FaultKind, target: str) -> np.random.Generator:
        key = (kind, target)
        stream = self._noise.get(key)
        if stream is None:
            stream = numpy_rng(self._label(kind, target) + "/noise",
                               self.base_seed)
            self._noise[key] = stream
        return stream

    # -- firing decisions ----------------------------------------------------

    def scheduled(self, kind: FaultKind, target: str) -> bool:
        """Does the plan schedule this fault at all (any window)?"""
        return (kind, target) in self._specs

    def active_spec(self, kind: FaultKind, target: str,
                    t: float) -> FaultSpec | None:
        """The first spec armed at ``t`` for ``(kind, target)``, if any."""
        specs = self._specs.get((kind, target))
        if not specs:
            return None
        for spec in specs:
            if spec.active(t):
                return spec
        return None

    def fires(self, kind: FaultKind, target: str, t: float) -> bool:
        """Decide (and record) whether the fault fires at instant ``t``.

        One stream draw per armed opportunity — retrying an operation
        at the same instant re-rolls, which is exactly how a retransmit
        can slip through a probabilistic frame-drop window.
        """
        spec = self.active_spec(kind, target, t)
        if spec is None:
            return False
        if spec.probability < 1.0 and \
                self._stream(kind, target).random() >= spec.probability:
            return False
        self.records.append(InjectionRecord(t, kind, target, spec.magnitude))
        if OBS.enabled:
            OBS.count("faults.injected")
            OBS.count(f"faults.injected.{kind.value}")
            OBS.emit(EventKind.FAULT_INJECTED, KIND_LAYER[kind], target,
                     f"{kind.value} fired (magnitude {spec.magnitude:g})",
                     t=t, kind=kind.value, magnitude=spec.magnitude)
        return True

    def magnitude(self, kind: FaultKind, target: str, t: float) -> float:
        """The armed spec's magnitude at ``t`` (0.0 when disarmed)."""
        spec = self.active_spec(kind, target, t)
        return spec.magnitude if spec is not None else 0.0

    # -- fault payloads ------------------------------------------------------

    def corruption_noise(self, kind: FaultKind, target: str,
                         n: int, magnitude: float) -> np.ndarray:
        """A burst of Gaussian sample noise from the pair's noise stream."""
        return self._noise_stream(kind, target).normal(0.0, magnitude, size=n)

    def worker_crash_hook(self) -> Callable[[dict, int], dict | None]:
        """A :class:`~repro.runner.engine.SweepRunner` ``fault_hook``.

        The hook consults :data:`FaultKind.RUNNER_WORKER_CRASH` with the
        attempt index as the virtual instant, so a spec windowed
        ``[0, 1)`` kills only the first attempt while ``[0, 2)`` kills
        the retry too.  A fired crash consumes ``magnitude`` of the
        attempt's timeout budget — the scheduler must grant the retry
        only what remains.
        """
        def hook(spec: dict, attempt: int) -> dict | None:
            exp_id = str(spec["exp_id"])
            t = float(attempt)
            if not self.fires(FaultKind.RUNNER_WORKER_CRASH, exp_id, t):
                return None
            consumed = self.magnitude(FaultKind.RUNNER_WORKER_CRASH,
                                      exp_id, t) * float(spec["timeout_s"])
            return {
                "id": exp_id,
                "status": "error",
                "exitCode": -1,
                "durationS": consumed,
                "seed": int(spec["seed"]),
                "artifacts": [],
                "outputTail": "",
                "error": f"injected worker crash (attempt {attempt})",
            }

        return hook

    # -- bookkeeping ---------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.records)

    def count_by_kind(self) -> dict[str, int]:
        """Fired-fault totals keyed by kind value (sorted for stability)."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.kind.value] = counts.get(record.kind.value, 0) + 1
        return dict(sorted(counts.items()))
