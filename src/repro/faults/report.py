"""Chaos report JSON: schema documentation and validation.

The chaos document (version ``1.0``) mirrors the ``repro.lint`` /
``repro.obs`` / ``repro.runner`` report conventions — small, flat,
stable::

    {
      "version": "1.0",
      "tool": {"name": "repro-chaos", "version": "<package version>"},
      "plan": {"name", "window": {"start", "end"},
               "faults": [{"kind", "target", "layer", "start", "end",
                           "probability", "magnitude"}]},
      "baseSeed": <int>,
      "scenarios": [
        {"scenario", "description", "resilient", "durationTicks",
         "window": {"start", "end"},
         "layers": [{"layer", "attempts", "successes", "availability",
                     "windowAttempts", "windowSuccesses",
                     "windowAvailability"}],
         "faults": {"injected", "byKind"},
         "retry": {"calls", "attempts", "retries", "recovered", "exhausted"},
         "breakers": [{"name", "opens", "rejections", "finalState"}],
         "ssi": null | {"hits", "staleHits", "failures", "cached"},
         "alerts": <int>,
         "degradation": {"finalLevel", "minLevel",
                         "changes": [{"t", "level", "reason"}],
                         "timeToDegradeS", "timeToRecoverS"}}
      ],
      "summary": {"scenarioCount", "faultsInjected", "layersSustained",
                  "scenariosAtMinimalRiskOrBelow"}
    }

:func:`validate_chaos_dict` checks a parsed document against that
schema and raises :class:`ChaosSchemaError` on any violation — the CI
chaos gate and the round-trip tests both call it.
"""

from __future__ import annotations

from repro.core.layers import Layer
from repro.faults.plan import FaultKind

__all__ = ["ChaosSchemaError", "validate_chaos_dict",
           "SCHEMA_VERSION", "TOOL_NAME"]

SCHEMA_VERSION = "1.0"
TOOL_NAME = "repro-chaos"

_LAYER_NAMES = {layer.name.lower() for layer in Layer}
_KIND_VALUES = {kind.value for kind in FaultKind}
_LEVEL_NAMES = {"full", "degraded", "minimal_risk", "safe_stop"}
_BREAKER_STATES = {"closed", "open", "half-open"}

_SPEC_KEYS = {"kind", "target", "layer", "start", "end",
              "probability", "magnitude"}
_LAYER_KEYS = {"layer", "attempts", "successes", "availability",
               "windowAttempts", "windowSuccesses", "windowAvailability"}
_RETRY_KEYS = {"calls", "attempts", "retries", "recovered", "exhausted"}
_BREAKER_KEYS = {"name", "opens", "rejections", "finalState"}
_SSI_KEYS = {"hits", "staleHits", "failures", "cached"}
_DEGRADATION_KEYS = {"finalLevel", "minLevel", "changes",
                     "timeToDegradeS", "timeToRecoverS"}
_SCENARIO_KEYS = {"scenario", "description", "resilient", "durationTicks",
                  "window", "layers", "faults", "retry", "breakers",
                  "ssi", "alerts", "degradation"}
_SUMMARY_KEYS = {"scenarioCount", "faultsInjected", "layersSustained",
                 "scenariosAtMinimalRiskOrBelow"}


class ChaosSchemaError(ValueError):
    """A chaos JSON document does not match the documented schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosSchemaError(message)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_count(value: object) -> bool:
    return _is_int(value) and value >= 0


def _validate_window(window: object, where: str) -> None:
    _require(isinstance(window, dict) and set(window) == {"start", "end"},
             f"{where}: window must be {{start, end}}")
    _require(_is_number(window["start"]) and _is_number(window["end"]),
             f"{where}: window bounds must be numbers")
    _require(window["start"] <= window["end"],
             f"{where}: window start must not exceed end")


def _validate_plan(plan: object) -> None:
    _require(isinstance(plan, dict)
             and set(plan) == {"name", "window", "faults"},
             "plan must be {name, window, faults}")
    _require(isinstance(plan["name"], str) and plan["name"],
             "plan.name must be a non-empty string")
    _validate_window(plan["window"], "plan")
    _require(isinstance(plan["faults"], list) and plan["faults"],
             "plan.faults must be a non-empty list")
    for index, spec in enumerate(plan["faults"]):
        where = f"plan.faults[{index}]"
        _require(isinstance(spec, dict) and set(spec) == _SPEC_KEYS,
                 f"{where}: keys must be {sorted(_SPEC_KEYS)}")
        _require(spec["kind"] in _KIND_VALUES,
                 f"{where}: unknown fault kind {spec['kind']!r}")
        _require(isinstance(spec["target"], str) and spec["target"],
                 f"{where}: target must be a non-empty string")
        _require(spec["layer"] in _LAYER_NAMES,
                 f"{where}: unknown layer {spec['layer']!r}")
        _require(_is_number(spec["start"]) and _is_number(spec["end"])
                 and spec["start"] < spec["end"],
                 f"{where}: window must satisfy start < end")
        _require(_is_number(spec["probability"])
                 and 0.0 <= spec["probability"] <= 1.0,
                 f"{where}: probability must be in [0, 1]")
        _require(_is_number(spec["magnitude"]) and spec["magnitude"] >= 0,
                 f"{where}: magnitude must be non-negative")


def _validate_layer_entry(entry: object, where: str) -> None:
    _require(isinstance(entry, dict) and set(entry) == _LAYER_KEYS,
             f"{where}: keys must be {sorted(_LAYER_KEYS)}")
    _require(entry["layer"] in _LAYER_NAMES,
             f"{where}: unknown layer {entry['layer']!r}")
    for key in ("attempts", "successes", "windowAttempts", "windowSuccesses"):
        _require(_is_count(entry[key]),
                 f"{where}: {key} must be a non-negative int")
    _require(entry["successes"] <= entry["attempts"],
             f"{where}: successes must not exceed attempts")
    _require(entry["windowSuccesses"] <= entry["windowAttempts"],
             f"{where}: windowSuccesses must not exceed windowAttempts")
    _require(entry["windowAttempts"] <= entry["attempts"],
             f"{where}: windowAttempts must not exceed attempts")
    for key in ("availability", "windowAvailability"):
        _require(_is_number(entry[key]) and 0.0 <= entry[key] <= 1.0,
                 f"{where}: {key} must be in [0, 1]")


def _validate_degradation(entry: object, where: str) -> str:
    _require(isinstance(entry, dict) and set(entry) == _DEGRADATION_KEYS,
             f"{where}: keys must be {sorted(_DEGRADATION_KEYS)}")
    for key in ("finalLevel", "minLevel"):
        _require(entry[key] in _LEVEL_NAMES,
                 f"{where}: {key} must be one of {sorted(_LEVEL_NAMES)}")
    _require(isinstance(entry["changes"], list),
             f"{where}: changes must be a list")
    for index, change in enumerate(entry["changes"]):
        inner = f"{where}.changes[{index}]"
        _require(isinstance(change, dict)
                 and set(change) == {"t", "level", "reason"},
                 f"{inner}: must be {{t, level, reason}}")
        _require(_is_number(change["t"]), f"{inner}: t must be a number")
        _require(change["level"] in _LEVEL_NAMES,
                 f"{inner}: unknown level {change['level']!r}")
        _require(isinstance(change["reason"], str) and change["reason"],
                 f"{inner}: reason must be a non-empty string")
    for key in ("timeToDegradeS", "timeToRecoverS"):
        _require(entry[key] is None or _is_number(entry[key]),
                 f"{where}: {key} must be a number or null")
    return str(entry["minLevel"])


def _validate_scenario(entry: object, where: str) -> dict:
    _require(isinstance(entry, dict) and set(entry) == _SCENARIO_KEYS,
             f"{where}: keys {sorted(entry) if isinstance(entry, dict) else '?'}"
             f" != {sorted(_SCENARIO_KEYS)}")
    _require(isinstance(entry["scenario"], str) and entry["scenario"],
             f"{where}: scenario must be a non-empty string")
    _require(isinstance(entry["description"], str) and entry["description"],
             f"{where}: description must be a non-empty string")
    _require(isinstance(entry["resilient"], bool),
             f"{where}: resilient must be a bool")
    _require(_is_int(entry["durationTicks"]) and entry["durationTicks"] >= 1,
             f"{where}: durationTicks must be an int >= 1")
    _validate_window(entry["window"], where)

    _require(isinstance(entry["layers"], list) and entry["layers"],
             f"{where}: layers must be a non-empty list")
    seen_layers: set[str] = set()
    for index, layer_entry in enumerate(entry["layers"]):
        _validate_layer_entry(layer_entry, f"{where}.layers[{index}]")
        _require(layer_entry["layer"] not in seen_layers,
                 f"{where}.layers[{index}]: duplicate layer")
        seen_layers.add(layer_entry["layer"])

    faults = entry["faults"]
    _require(isinstance(faults, dict) and set(faults) == {"injected", "byKind"},
             f"{where}: faults must be {{injected, byKind}}")
    _require(_is_count(faults["injected"]),
             f"{where}: faults.injected must be a non-negative int")
    _require(isinstance(faults["byKind"], dict),
             f"{where}: faults.byKind must be an object")
    total = 0
    for kind, count in faults["byKind"].items():
        _require(kind in _KIND_VALUES,
                 f"{where}: unknown fault kind {kind!r} in byKind")
        _require(_is_count(count) and count > 0,
                 f"{where}: byKind[{kind!r}] must be a positive int")
        total += count
    _require(total == faults["injected"],
             f"{where}: byKind must sum to faults.injected")

    retry = entry["retry"]
    _require(isinstance(retry, dict) and set(retry) == _RETRY_KEYS,
             f"{where}: retry must be {sorted(_RETRY_KEYS)}")
    for key in sorted(_RETRY_KEYS):
        _require(_is_count(retry[key]),
                 f"{where}: retry.{key} must be a non-negative int")

    _require(isinstance(entry["breakers"], list),
             f"{where}: breakers must be a list")
    for index, breaker in enumerate(entry["breakers"]):
        inner = f"{where}.breakers[{index}]"
        _require(isinstance(breaker, dict) and set(breaker) == _BREAKER_KEYS,
                 f"{inner}: keys must be {sorted(_BREAKER_KEYS)}")
        _require(isinstance(breaker["name"], str) and breaker["name"],
                 f"{inner}: name must be a non-empty string")
        _require(_is_count(breaker["opens"]) and _is_count(breaker["rejections"]),
                 f"{inner}: opens/rejections must be non-negative ints")
        _require(breaker["finalState"] in _BREAKER_STATES,
                 f"{inner}: unknown state {breaker['finalState']!r}")

    ssi = entry["ssi"]
    if ssi is not None:
        _require(isinstance(ssi, dict) and set(ssi) == _SSI_KEYS,
                 f"{where}: ssi must be null or {sorted(_SSI_KEYS)}")
        for key in sorted(_SSI_KEYS):
            _require(_is_count(ssi[key]),
                     f"{where}: ssi.{key} must be a non-negative int")

    _require(_is_count(entry["alerts"]),
             f"{where}: alerts must be a non-negative int")
    _validate_degradation(entry["degradation"], f"{where}.degradation")
    return entry


def validate_chaos_dict(document: dict) -> None:
    """Raise :class:`ChaosSchemaError` unless ``document`` matches."""
    _require(isinstance(document, dict), "chaos report must be an object")
    required = {"version", "tool", "plan", "baseSeed", "scenarios", "summary"}
    _require(set(document) == required,
             f"top-level keys {sorted(document)} != {sorted(required)}")
    _require(document["version"] == SCHEMA_VERSION,
             f"unsupported schema version {document['version']!r}")
    tool = document["tool"]
    _require(isinstance(tool, dict) and set(tool) == {"name", "version"},
             "tool must be {name, version}")
    _require(tool["name"] == TOOL_NAME,
             f"unexpected tool name {tool['name']!r}")
    _require(isinstance(tool["version"], str) and tool["version"],
             "tool.version must be a non-empty string")
    _validate_plan(document["plan"])
    _require(_is_int(document["baseSeed"]), "baseSeed must be an int")

    _require(isinstance(document["scenarios"], list) and document["scenarios"],
             "scenarios must be a non-empty list")
    seen: set[str] = set()
    fault_total = 0
    sustained: set[str] = set()
    at_floor: set[str] = set()
    for index, entry in enumerate(document["scenarios"]):
        scenario = _validate_scenario(entry, f"scenarios[{index}]")
        _require(scenario["scenario"] not in seen,
                 f"scenarios[{index}]: duplicate scenario "
                 f"{scenario['scenario']!r}")
        seen.add(scenario["scenario"])
        fault_total += scenario["faults"]["injected"]
        sustained.update(
            layer_entry["layer"] for layer_entry in scenario["layers"]
            if layer_entry["windowAttempts"] > 0
            and layer_entry["windowAvailability"] > 0.0)
        if scenario["degradation"]["minLevel"] in ("minimal_risk", "safe_stop"):
            at_floor.add(scenario["scenario"])

    summary = document["summary"]
    _require(isinstance(summary, dict) and set(summary) == _SUMMARY_KEYS,
             f"summary must be {sorted(_SUMMARY_KEYS)}")
    _require(summary["scenarioCount"] == len(document["scenarios"]),
             "summary.scenarioCount must equal len(scenarios)")
    _require(summary["faultsInjected"] == fault_total,
             "summary.faultsInjected must sum the per-scenario totals")
    _require(summary["layersSustained"] == sorted(sustained),
             "summary.layersSustained must list layers with in-window "
             "availability > 0, sorted")
    _require(summary["scenariosAtMinimalRiskOrBelow"] == sorted(at_floor),
             "summary.scenariosAtMinimalRiskOrBelow must list scenarios "
             "whose minLevel reached minimal_risk/safe_stop, sorted")
