"""Chaos campaigns: the five scenarios run under injected fault plans.

A *campaign* replays a lint/trace scenario's cross-layer workload on a
virtual clock while a :class:`~repro.faults.injector.FaultInjector`
fires a :class:`~repro.faults.plan.FaultPlan` at it, and measures what
the paper's fail-operational argument (§VIII) actually requires:

* **per-layer availability** — the fraction of per-tick operations each
  layer completed, overall and inside the fault window;
* **time to degrade / recover** — when the
  :class:`~repro.faults.degradation.DegradationManager` first shed
  function and when (if ever) it climbed back to FULL;
* **resilience statistics** — retry recoveries, breaker opens and
  rejections, stale-cache DID resolutions.

Each scenario carries a *posture*: the hardened onboard network retries
transmissions, breaks circuits around the telemetry backend, runs an
IDS whose CRITICAL alert isolates the babbling ECU, and recovers with
hysteresis; the legacy/insecure scenarios run the same workload with no
resilience machinery at all, which is precisely why the severe plan
drives them to MINIMAL_RISK or SAFE_STOP while ``onboard-hardened``
rides the baseline plan out at DEGRADED and returns to FULL.

Everything — firing decisions, retry jitter, backoff — derives from
``(plan, base seed)`` through :mod:`repro.core.rng`, so a campaign's
JSON result is byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.layers import Layer
from repro.core.response import ResponseEngine, SecurityAlert, Severity
from repro.core.rng import python_rng
from repro.datalayer.cloud import (
    CloudService,
    CloudTimeout,
    Endpoint,
    ServiceUnavailable,
    TransientCloudError,
)
from repro.faults.degradation import DegradationManager, ServiceLevel
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, get_plan
from repro.faults.resilience import (
    BreakerOpen,
    CircuitBreaker,
    RetryPolicy,
    RetryStats,
    VirtualClock,
    retry_with_backoff,
)
from repro.ssi.did import Did, DidDocument, KeyPair
from repro.ssi.registry import (
    CachingResolver,
    RegistryUnavailable,
    VerifiableDataRegistry,
)

__all__ = ["ChaosPosture", "CHAOS_SCENARIOS", "chaos_scenario_names",
           "run_chaos_scenario", "run_chaos_campaign", "DEFAULT_DURATION"]

#: Campaign length in virtual-clock ticks (seconds).
DEFAULT_DURATION = 30

#: Subsystem name -> the paper layer its availability is booked under.
_SUBSYSTEM_LAYER = {
    "phy": Layer.PHYSICAL,
    "ivn": Layer.NETWORK,
    "cloud": Layer.DATA,
    "ssi": Layer.SOFTWARE_PLATFORM,
}

#: The fault kinds each subsystem is exposed to (window computation).
_SUBSYSTEM_KINDS = {
    "phy": (FaultKind.PHY_SAMPLE_CORRUPTION, FaultKind.PHY_NLOS_BURST),
    "ivn": (FaultKind.IVN_FRAME_DROP, FaultKind.IVN_BIT_FLIP,
            FaultKind.IVN_BABBLING_IDIOT),
    "cloud": (FaultKind.CLOUD_LATENCY, FaultKind.CLOUD_TIMEOUT,
              FaultKind.CLOUD_OUTAGE),
    "ssi": (FaultKind.SSI_REGISTRY_DOWN,),
}


@dataclass(frozen=True)
class ChaosPosture:
    """One scenario's workload shape and resilience configuration."""

    name: str
    description: str
    subsystems: tuple[str, ...]
    resilient: bool              # retries + breakers + stale-cache fallbacks
    has_ids: bool                # IDS -> ResponseEngine -> isolation
    degrade_threshold: float
    degrade_streak: int
    recovery_streak: int
    allow_recovery: bool


CHAOS_SCENARIOS: dict[str, ChaosPosture] = {
    posture.name: posture for posture in (
        ChaosPosture(
            "pkes-legacy",
            "legacy passive-entry vehicle: UWB ranging and a flat CAN with "
            "no retransmission, IDS, or degradation machinery",
            ("phy", "ivn"), resilient=False, has_ids=False,
            degrade_threshold=0.5, degrade_streak=1, recovery_streak=3,
            allow_recovery=False),
        ChaosPosture(
            "onboard-insecure",
            "flat onboard E/E architecture with a cloud uplink, every layer "
            "single-shot: one dropped frame or timed-out fetch is a failure",
            ("phy", "ivn", "cloud"), resilient=False, has_ids=False,
            degrade_threshold=0.5, degrade_streak=1, recovery_streak=3,
            allow_recovery=False),
        ChaosPosture(
            "onboard-hardened",
            "hardened onboard architecture: retransmission and ranging "
            "retries, circuit breaker on the telemetry backend, cached DID "
            "resolution, IDS isolation of babbling ECUs, hysteretic recovery",
            ("phy", "ivn", "cloud", "ssi"), resilient=True, has_ids=True,
            degrade_threshold=0.75, degrade_streak=3, recovery_streak=3,
            allow_recovery=True),
        ChaosPosture(
            "cariad-breach",
            "cloud telemetry backend alone (the CARIAD-style deployment): "
            "no client-side resilience, availability tracks the outage",
            ("cloud",), resilient=False, has_ids=False,
            degrade_threshold=0.5, degrade_streak=1, recovery_streak=3,
            allow_recovery=False),
        ChaosPosture(
            "maas-platform",
            "mobility-as-a-service platform: breaker-guarded backend plus "
            "SSI directory with last-known-good DID caching",
            ("cloud", "ssi"), resilient=True, has_ids=False,
            degrade_threshold=0.5, degrade_streak=2, recovery_streak=2,
            allow_recovery=True),
    )
}


def chaos_scenario_names() -> list[str]:
    return list(CHAOS_SCENARIOS)


class _OpFailed(Exception):
    """A per-tick subsystem operation lost to an injected fault."""


@dataclass
class _Tally:
    attempts: int = 0
    successes: int = 0
    window_attempts: int = 0
    window_successes: int = 0

    def add(self, ok: bool, in_window: bool) -> None:
        self.attempts += 1
        self.successes += ok
        if in_window:
            self.window_attempts += 1
            self.window_successes += ok

    def to_dict(self, layer: Layer) -> dict:
        def ratio(successes: int, attempts: int) -> float:
            return round(successes / attempts, 4) if attempts else 1.0
        return {
            "layer": layer.name.lower(),
            "attempts": self.attempts,
            "successes": self.successes,
            "availability": ratio(self.successes, self.attempts),
            "windowAttempts": self.window_attempts,
            "windowSuccesses": self.window_successes,
            "windowAvailability": ratio(self.window_successes,
                                        self.window_attempts),
        }


def _scenario_window(plan: FaultPlan,
                     subsystems: tuple[str, ...]) -> tuple[float, float]:
    """The fault-window hull over the kinds this scenario is exposed to."""
    kinds = {kind for name in subsystems for kind in _SUBSYSTEM_KINDS[name]}
    specs = [spec for spec in plan.specs if spec.kind in kinds]
    if not specs:
        return (0.0, 0.0)
    return (min(s.start for s in specs), max(s.end for s in specs))


def _build_cloud() -> CloudService:
    service = CloudService("telemetry-backend")
    service.add_endpoint(Endpoint("/telemetry", auth_required=False,
                                  response_tag="telemetry-batch"))
    return service


def _build_registry() -> tuple[VerifiableDataRegistry, Did]:
    registry = VerifiableDataRegistry()
    did = Did("vehicle-7")
    registry.register(DidDocument.for_keypair(
        did, KeyPair.from_seed_label("chaos/vehicle-7")))
    return registry, did


def run_chaos_scenario(name: str, plan: FaultPlan, *, base_seed: int = 0,
                       duration: int = DEFAULT_DURATION) -> dict:
    """Run one scenario under ``plan`` and return its result document."""
    posture = CHAOS_SCENARIOS.get(name)
    if posture is None:
        raise KeyError(f"unknown chaos scenario {name!r}; "
                       f"available: {', '.join(CHAOS_SCENARIOS)}")
    if duration < 1:
        raise ValueError("duration must be >= 1 tick")

    injector = FaultInjector(plan, base_seed=base_seed)
    clock = VirtualClock()
    retry_rng = python_rng(f"chaos/{plan.name}/{name}/retry", base_seed)
    retry_policy = RetryPolicy(max_attempts=3, base_delay_s=0.05,
                               factor=2.0, max_delay_s=0.2, jitter=0.1)
    retry_stats = RetryStats()
    manager = DegradationManager(
        degrade_threshold=posture.degrade_threshold,
        degrade_streak=posture.degrade_streak,
        recovery_streak=posture.recovery_streak,
        allow_recovery=posture.allow_recovery)

    engine: ResponseEngine | None = None
    if posture.has_ids:
        engine = ResponseEngine(escalation_threshold=8)
        manager.attach(engine)

    cloud = _build_cloud() if "cloud" in posture.subsystems else None
    breaker: CircuitBreaker | None = None
    if cloud is not None and posture.resilient:
        breaker = CircuitBreaker("telemetry-backend", clock=clock,
                                 failure_threshold=3, recovery_time_s=3.0)

    resolver: CachingResolver | None = None
    did: Did | None = None
    now = {"t": 0.0}  # shared with the registry-outage predicate
    if "ssi" in posture.subsystems:
        registry, did = _build_registry()
        resolver = CachingResolver(registry, unavailable=lambda: injector.fires(
            FaultKind.SSI_REGISTRY_DOWN, "did-registry", now["t"]))

    window_start, window_end = _scenario_window(plan, posture.subsystems)
    tallies = {name_: _Tally() for name_ in posture.subsystems}
    babbler_isolated = False
    floor_cleared = False

    # -- per-tick subsystem operations --------------------------------------

    def phy_op(t: float) -> None:
        if injector.fires(FaultKind.PHY_SAMPLE_CORRUPTION, "uwb-anchor", t):
            magnitude = injector.magnitude(
                FaultKind.PHY_SAMPLE_CORRUPTION, "uwb-anchor", t)
            burst = injector.corruption_noise(
                FaultKind.PHY_SAMPLE_CORRUPTION, "uwb-anchor", 8, magnitude)
            raise _OpFailed(
                f"ranging samples corrupted ({float(np.abs(burst).mean()):.2f} m)")
        if injector.fires(FaultKind.PHY_NLOS_BURST, "uwb-anchor", t):
            raise _OpFailed("NLOS burst: first path buried")

    def ivn_op(t: float, babbling: bool) -> None:
        if babbling and not babbler_isolated:
            raise _OpFailed("bus saturated by babbling ECU")
        if injector.fires(FaultKind.IVN_FRAME_DROP, "zonal-can", t):
            raise _OpFailed("frame dropped")
        if injector.fires(FaultKind.IVN_BIT_FLIP, "zonal-can", t):
            raise _OpFailed("frame corrupted by bit flip")

    def cloud_op(t: float) -> str:
        assert cloud is not None
        if injector.fires(FaultKind.CLOUD_OUTAGE, "telemetry-backend", t):
            raise ServiceUnavailable("injected 5xx outage")
        if injector.fires(FaultKind.CLOUD_TIMEOUT, "telemetry-backend", t):
            raise CloudTimeout("injected timeout")
        if injector.fires(FaultKind.CLOUD_LATENCY, "telemetry-backend", t):
            raise CloudTimeout("latency spike past deadline")
        return cloud.fetch("/telemetry")

    def attempt(op: Callable[[float], None], t: float,
                retry_on: tuple[type[BaseException], ...]) -> bool:
        """Run one subsystem op, with retries when the posture has them."""
        if not posture.resilient:
            try:
                op(t)
            except retry_on:
                return False
            return True
        try:
            retry_with_backoff(lambda: op(t), policy=retry_policy,
                               rng=retry_rng, clock=VirtualClock(),
                               retry_on=retry_on, stats=retry_stats)
        except retry_on:
            return False
        return True

    # -- the campaign loop ---------------------------------------------------

    for tick in range(duration):
        t = float(tick)
        clock.now = t
        now["t"] = t
        in_window = window_start <= t < window_end

        if "phy" in tallies:
            ok = attempt(phy_op, t, (_OpFailed,))
            tallies["phy"].add(ok, in_window)
            manager.report("phy", ok)

        if "ivn" in tallies:
            babbling = injector.fires(FaultKind.IVN_BABBLING_IDIOT,
                                      "ecu-babbler", t)
            ok = attempt(lambda u: ivn_op(u, babbling), t, (_OpFailed,))
            tallies["ivn"].add(ok, in_window)
            manager.report("ivn", ok)
            if babbling and engine is not None and not babbler_isolated:
                engine.handle(SecurityAlert(
                    time=t, layer=Layer.NETWORK, component="ecu-babbler",
                    attack_name="babbling-idiot", severity=Severity.CRITICAL))
                babbler_isolated = True  # IDS isolates; effective next tick

        if cloud is not None:
            if breaker is not None:
                try:
                    breaker.call(lambda: retry_with_backoff(
                        lambda: cloud_op(t), policy=retry_policy,
                        rng=retry_rng, clock=VirtualClock(),
                        retry_on=(TransientCloudError,), stats=retry_stats))
                    ok = True
                except (TransientCloudError, BreakerOpen):
                    ok = False
            else:
                try:
                    cloud_op(t)
                    ok = True
                except TransientCloudError:
                    ok = False
            tallies["cloud"].add(ok, in_window)
            manager.report("cloud", ok)

        if resolver is not None and did is not None:
            try:
                resolver.resolve(did)
                ok = True
            except RegistryUnavailable:
                ok = False
            tallies["ssi"].add(ok, in_window)
            manager.report("ssi", ok)

        manager.tick(t)

        # Once the fault window has closed, a hardened deployment clears
        # the response-imposed floor (the isolated ECU was re-flashed and
        # forensically cleared), letting recovery ticks climb to FULL.
        if (posture.resilient and not floor_cleared and t >= window_end):
            manager.clear_response_floor()
            if engine is not None:
                engine.reset("ecu-babbler")
            floor_cleared = True

    return {
        "scenario": posture.name,
        "description": posture.description,
        "resilient": posture.resilient,
        "durationTicks": duration,
        "window": {"start": window_start, "end": window_end},
        "layers": [tallies[name_].to_dict(_SUBSYSTEM_LAYER[name_])
                   for name_ in posture.subsystems],
        "faults": {"injected": injector.count,
                   "byKind": injector.count_by_kind()},
        "retry": retry_stats.to_dict(),
        "breakers": [breaker.to_dict()] if breaker is not None else [],
        "ssi": resolver.to_dict() if resolver is not None else None,
        "alerts": len(engine.decisions) if engine is not None else 0,
        "degradation": manager.to_dict(),
    }


def run_chaos_campaign(scenarios: list[str], plan_name: str, *,
                       base_seed: int = 0,
                       duration: int = DEFAULT_DURATION) -> dict:
    """Run several scenarios under one plan and assemble the report doc."""
    from repro import __version__

    plan = get_plan(plan_name)
    results = [run_chaos_scenario(name, plan, base_seed=base_seed,
                                  duration=duration)
               for name in scenarios]

    sustained = sorted({
        entry["layer"]
        for result in results for entry in result["layers"]
        if entry["windowAttempts"] > 0 and entry["windowAvailability"] > 0.0})
    reached_floor = sorted(
        result["scenario"] for result in results
        if result["degradation"]["minLevel"] in
        (ServiceLevel.MINIMAL_RISK.name.lower(),
         ServiceLevel.SAFE_STOP.name.lower()))
    return {
        "version": "1.0",
        "tool": {"name": "repro-chaos", "version": __version__},
        "plan": plan.to_dict(),
        "baseSeed": base_seed,
        "scenarios": results,
        "summary": {
            "scenarioCount": len(results),
            "faultsInjected": sum(r["faults"]["injected"] for r in results),
            "layersSustained": sustained,
            "scenariosAtMinimalRiskOrBelow": reached_floor,
        },
    }
