"""Typed fault taxonomy and deterministic fault plans.

The paper's fail-operational argument (§VIII) is only testable against
*injected* failures: a resilience mechanism that has never seen a fault
is a hypothesis, not a defense.  This module names the faults the
reproduction can inject — one vocabulary entry per failure mode the
layer simulators exhibit in the wild — and packages them into
:class:`FaultPlan` campaigns: windowed, probabilistic schedules that are
fully determined by ``(plan name, base seed)`` through
:mod:`repro.core.rng`.

A :class:`FaultSpec` is *where/when/how hard*: the fault kind, the
component it targets, the ``[start, end)`` window on the campaign's
virtual clock, a per-opportunity firing probability, and a magnitude
knob whose meaning is kind-specific (noise amplitude, consumed-budget
fraction, ...).  Two shipped plans anchor the chaos CLI and CI gates:
``baseline`` (the recoverable weather every deployment must shrug off)
and ``severe`` (the sustained campaign that forces the degradation
ladder all the way down on unhardened scenarios).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.layers import Layer

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "KIND_LAYER",
           "baseline_plan", "severe_plan", "get_plan", "plan_names", "PLANS"]


class FaultKind(str, Enum):
    """The vocabulary of injectable faults, one per layer failure mode."""

    # physical layer (repro.phy)
    PHY_SAMPLE_CORRUPTION = "phy-sample-corruption"
    PHY_NLOS_BURST = "phy-nlos-burst"
    # in-vehicle network (repro.ivn)
    IVN_FRAME_DROP = "ivn-frame-drop"
    IVN_BIT_FLIP = "ivn-bit-flip"
    IVN_BABBLING_IDIOT = "ivn-babbling-idiot"
    # cloud backend (repro.datalayer)
    CLOUD_LATENCY = "cloud-latency-spike"
    CLOUD_TIMEOUT = "cloud-timeout"
    CLOUD_OUTAGE = "cloud-outage-5xx"
    # identity plane (repro.ssi)
    SSI_REGISTRY_DOWN = "ssi-registry-unavailable"
    # experiment sweeps / campaigns (repro.runner, repro.campaign)
    RUNNER_WORKER_CRASH = "runner-worker-crash"
    RUNNER_WORKER_HANG = "runner-worker-hang"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The paper layer each fault kind lives on (drives event tagging).
KIND_LAYER: dict[FaultKind, Layer] = {
    FaultKind.PHY_SAMPLE_CORRUPTION: Layer.PHYSICAL,
    FaultKind.PHY_NLOS_BURST: Layer.PHYSICAL,
    FaultKind.IVN_FRAME_DROP: Layer.NETWORK,
    FaultKind.IVN_BIT_FLIP: Layer.NETWORK,
    FaultKind.IVN_BABBLING_IDIOT: Layer.NETWORK,
    FaultKind.CLOUD_LATENCY: Layer.DATA,
    FaultKind.CLOUD_TIMEOUT: Layer.DATA,
    FaultKind.CLOUD_OUTAGE: Layer.DATA,
    FaultKind.SSI_REGISTRY_DOWN: Layer.SOFTWARE_PLATFORM,
    FaultKind.RUNNER_WORKER_CRASH: Layer.SYSTEM_OF_SYSTEMS,
    FaultKind.RUNNER_WORKER_HANG: Layer.SYSTEM_OF_SYSTEMS,
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: kind, target, window, intensity.

    Attributes:
        kind: the fault vocabulary entry.
        target: the component the fault hits (bus name, service name,
            DID registry, experiment id, ...).
        start: first virtual-clock instant the fault is armed (inclusive).
        end: instant the fault disarms (exclusive).
        probability: chance the fault fires per opportunity inside the
            window (drawn from the injector's per-``(kind, target)``
            seeded stream).
        magnitude: kind-specific intensity (noise amplitude for sample
            corruption, consumed-budget fraction for worker crashes, ...).
    """

    kind: FaultKind
    target: str
    start: float
    end: float
    probability: float = 1.0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("fault window must satisfy start < end")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.magnitude < 0.0:
            raise ValueError("magnitude must be non-negative")

    def active(self, t: float) -> bool:
        """Is the fault armed at virtual instant ``t``?"""
        return self.start <= t < self.end

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        return {
            "kind": self.kind.value,
            "target": self.target,
            "layer": KIND_LAYER[self.kind].name.lower(),
            "start": self.start,
            "end": self.end,
            "probability": self.probability,
            "magnitude": self.magnitude,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered campaign of fault specs."""

    name: str
    specs: tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a fault plan needs a name")

    def __len__(self) -> int:
        return len(self.specs)

    def for_kind(self, kind: FaultKind) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == kind)

    def window(self) -> tuple[float, float]:
        """The hull ``[earliest start, latest end)`` over all specs."""
        if not self.specs:
            return (0.0, 0.0)
        return (min(s.start for s in self.specs),
                max(s.end for s in self.specs))

    def to_dict(self) -> dict:
        start, end = self.window()
        return {
            "name": self.name,
            "window": {"start": start, "end": end},
            "faults": [spec.to_dict() for spec in self.specs],
        }


def baseline_plan() -> FaultPlan:
    """The recoverable weather: windowed, partial-probability faults.

    The hardened scenario must ride this out without ever dropping
    below DEGRADED, and must climb back to FULL once the window closes
    (the CI gate pins both).
    """
    return FaultPlan("baseline", (
        FaultSpec(FaultKind.PHY_SAMPLE_CORRUPTION, "uwb-anchor", 8.0, 20.0,
                  probability=0.5, magnitude=2.5),
        FaultSpec(FaultKind.PHY_NLOS_BURST, "uwb-anchor", 10.0, 16.0,
                  probability=0.4),
        FaultSpec(FaultKind.IVN_FRAME_DROP, "zonal-can", 8.0, 20.0,
                  probability=0.35),
        FaultSpec(FaultKind.IVN_BIT_FLIP, "zonal-can", 8.0, 20.0,
                  probability=0.25),
        FaultSpec(FaultKind.IVN_BABBLING_IDIOT, "ecu-babbler", 9.0, 12.0,
                  probability=1.0),
        FaultSpec(FaultKind.CLOUD_LATENCY, "telemetry-backend", 8.0, 14.0,
                  probability=0.6),
        FaultSpec(FaultKind.CLOUD_OUTAGE, "telemetry-backend", 14.0, 19.0,
                  probability=1.0),
        FaultSpec(FaultKind.SSI_REGISTRY_DOWN, "did-registry", 8.0, 18.0,
                  probability=1.0),
        FaultSpec(FaultKind.RUNNER_WORKER_CRASH, "sweep-worker", 0.0, 1.0,
                  probability=1.0, magnitude=0.4),
    ))


def severe_plan() -> FaultPlan:
    """The sustained campaign: wider windows, near-certain faults.

    Scenarios without retry/breaker/degradation machinery must end up
    at MINIMAL_RISK or SAFE_STOP under this plan (acceptance gate).
    """
    return FaultPlan("severe", (
        FaultSpec(FaultKind.PHY_SAMPLE_CORRUPTION, "uwb-anchor", 5.0, 25.0,
                  probability=0.9, magnitude=4.0),
        FaultSpec(FaultKind.PHY_NLOS_BURST, "uwb-anchor", 5.0, 25.0,
                  probability=0.8),
        FaultSpec(FaultKind.IVN_FRAME_DROP, "zonal-can", 5.0, 25.0,
                  probability=0.7),
        FaultSpec(FaultKind.IVN_BIT_FLIP, "zonal-can", 5.0, 25.0,
                  probability=0.5),
        FaultSpec(FaultKind.IVN_BABBLING_IDIOT, "ecu-babbler", 6.0, 18.0,
                  probability=1.0),
        FaultSpec(FaultKind.CLOUD_LATENCY, "telemetry-backend", 5.0, 12.0,
                  probability=0.9),
        FaultSpec(FaultKind.CLOUD_OUTAGE, "telemetry-backend", 12.0, 25.0,
                  probability=1.0),
        FaultSpec(FaultKind.SSI_REGISTRY_DOWN, "did-registry", 5.0, 25.0,
                  probability=1.0),
        FaultSpec(FaultKind.RUNNER_WORKER_CRASH, "sweep-worker", 0.0, 2.0,
                  probability=1.0, magnitude=0.7),
    ))


PLANS: dict[str, "FaultPlan"] = {}


def _register_plans() -> dict[str, FaultPlan]:
    if not PLANS:
        for plan in (baseline_plan(), severe_plan()):
            PLANS[plan.name] = plan
    return PLANS


def plan_names() -> list[str]:
    return list(_register_plans())


def get_plan(name: str) -> FaultPlan:
    """Look up a shipped plan by name; raises ``KeyError`` when unknown."""
    plans = _register_plans()
    try:
        return plans[name]
    except KeyError:
        raise KeyError(f"unknown fault plan {name!r}; "
                       f"available: {', '.join(plans)}") from None
