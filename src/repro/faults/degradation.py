"""Graceful degradation: the FULL → DEGRADED → MINIMAL_RISK → SAFE_STOP ladder.

The paper's fail-operational requirement (§VIII) is that an autonomous
vehicle under attack or partial failure sheds non-critical function
instead of crashing: keep driving with degraded comfort features, fall
back to a minimal-risk maneuver when perception or networking is
compromised, and only as a last resort execute a safe stop.
:class:`DegradationManager` is that ladder as an explicit state
machine driven by two signal sources:

* **health signals** — per-component pass/fail reports (bus delivery,
  ranging sanity, cloud reachability) aggregated over a window by a
  :class:`~repro.faults.resilience.HealthMonitor`;
* **response escalations** — :class:`~repro.core.response.ResponseEngine`
  decisions, subscribed via ``ResponseEngine.subscribe``, so an
  intrusion-response ``DEGRADE_FUNCTION`` or ``SAFE_STOP`` decision
  forces the corresponding service level.

Recovery is *hysteretic*: one level is regained only after
``recovery_streak`` consecutive healthy ticks, so a flapping component
(alert, quiet, alert, ...) cannot oscillate the vehicle between levels.
SAFE_STOP latches — a stopped vehicle needs operator/forensic
clearance, not a lucky healthy window.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.core.layers import Layer
from repro.core.response import ResponseAction, ResponseDecision, ResponseEngine
from repro.faults.resilience import HealthMonitor
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["ServiceLevel", "LevelChange", "DegradationManager"]


class ServiceLevel(IntEnum):
    """The degradation ladder, ordered by remaining capability."""

    SAFE_STOP = 0      # vehicle halted; only safety systems live
    MINIMAL_RISK = 1   # minimal-risk maneuver; mission aborted
    DEGRADED = 2       # mission continues without non-critical function
    FULL = 3           # everything nominal


#: Response actions that force a service level when the engine fires them.
_ACTION_FLOOR: dict[ResponseAction, "ServiceLevel"] = {
    ResponseAction.ISOLATE_COMPONENT: ServiceLevel.DEGRADED,
    ResponseAction.DEGRADE_FUNCTION: ServiceLevel.MINIMAL_RISK,
    ResponseAction.SAFE_STOP: ServiceLevel.SAFE_STOP,
}


@dataclass(frozen=True)
class LevelChange:
    """One recorded transition on the ladder."""

    t: float
    level: ServiceLevel
    reason: str

    def to_dict(self) -> dict:
        return {"t": self.t, "level": self.level.name.lower(),
                "reason": self.reason}


class DegradationManager:
    """Drive the service level from health signals and response decisions.

    Args:
        monitor: windowed health tracker fed by the layer simulators
            (one is created when not supplied).
        degrade_threshold: failure fraction over a component's window at
            or above which the component counts as *unhealthy* this tick.
        degrade_streak: consecutive unhealthy ticks required to step
            *down* one level (downward hysteresis — a single noisy tick
            must not shed function).
        recovery_streak: consecutive fully-healthy ticks required to
            climb one level (upward hysteresis).
        allow_recovery: unhardened scenarios set this ``False`` — they
            have no recovery machinery, so levels only ratchet down.
    """

    def __init__(self, *, monitor: HealthMonitor | None = None,
                 degrade_threshold: float = 0.5,
                 degrade_streak: int = 1,
                 recovery_streak: int = 3,
                 allow_recovery: bool = True) -> None:
        if not 0.0 < degrade_threshold <= 1.0:
            raise ValueError("degrade_threshold must be in (0, 1]")
        if degrade_streak < 1 or recovery_streak < 1:
            raise ValueError("streaks must be >= 1")
        self.monitor = monitor if monitor is not None else HealthMonitor()
        self.degrade_threshold = degrade_threshold
        self.degrade_streak = degrade_streak
        self.recovery_streak = recovery_streak
        self.allow_recovery = allow_recovery
        self.level = ServiceLevel.FULL
        self.changes: list[LevelChange] = []
        self._healthy_streak = 0
        self._unhealthy_streak = 0
        self._response_floor = ServiceLevel.FULL
        self._now = 0.0

    # -- signal sources ------------------------------------------------------

    def attach(self, engine: ResponseEngine) -> None:
        """Subscribe to a response engine's escalation decisions."""
        engine.subscribe(self._on_decision)

    def _on_decision(self, decision: ResponseDecision) -> None:
        floor = _ACTION_FLOOR.get(decision.action)
        if floor is None:
            return
        if floor < self._response_floor:
            self._response_floor = floor
        if floor < self.level:
            self._set_level(floor, decision.alert.time,
                            f"response {decision.action.name.lower()} "
                            f"on {decision.alert.component}")

    def report(self, component: str, ok: bool) -> None:
        """Forward one health observation to the monitor."""
        self.monitor.report(component, ok)

    # -- the tick ------------------------------------------------------------

    def tick(self, t: float) -> ServiceLevel:
        """Advance the ladder one virtual-clock tick.

        ``degrade_streak`` consecutive ticks with an unhealthy component
        (windowed failure fraction at or above the threshold) step the
        level down once; ``recovery_streak`` consecutive fully-healthy
        ticks climb one level — never above any floor a response
        decision has imposed.
        """
        self._now = t
        # A component is unhealthy only while it is *currently* failing
        # AND its windowed failure fraction is past the threshold — the
        # window alone would keep degrading a service for ticks after an
        # outage ended, purely on stale history.
        unhealthy = [
            c for c in self.monitor.components()
            if self.monitor.latest(c) is False
            and self.monitor.failure_fraction(c) >= self.degrade_threshold]
        if unhealthy:
            self._healthy_streak = 0
            self._unhealthy_streak += 1
            if (self._unhealthy_streak >= self.degrade_streak
                    and self.level > ServiceLevel.SAFE_STOP):
                self._unhealthy_streak = 0
                target = ServiceLevel(self.level - 1)
                self._set_level(target, t,
                                f"unhealthy: {', '.join(unhealthy)}")
        else:
            self._unhealthy_streak = 0
            self._healthy_streak += 1
            if (self.allow_recovery
                    and self.level < ServiceLevel.FULL
                    and self.level > ServiceLevel.SAFE_STOP
                    and self._healthy_streak >= self.recovery_streak):
                self._healthy_streak = 0
                target = ServiceLevel(min(self.level + 1, self._response_floor))
                if target > self.level:
                    self._set_level(target, t,
                                    f"recovered ({self.recovery_streak} healthy ticks)")
        return self.level

    def clear_response_floor(self) -> None:
        """Lift the response-imposed floor (forensic clearance).

        Does not un-latch SAFE_STOP; it only allows recovery ticks to
        climb past a previously imposed floor.
        """
        self._response_floor = ServiceLevel.FULL

    def _set_level(self, level: ServiceLevel, t: float, reason: str) -> None:
        if level == self.level:
            return
        if self.level == ServiceLevel.SAFE_STOP:
            return  # latched: a stopped vehicle stays stopped
        self.level = level
        self.changes.append(LevelChange(t, level, reason))
        if OBS.enabled:
            OBS.count("faults.degradation.changes")
            OBS.gauge("faults.degradation.level", int(level))
            OBS.emit(EventKind.DEGRADATION_CHANGE, Layer.SYSTEM_OF_SYSTEMS,
                     "degradation-manager",
                     f"service level -> {level.name.lower()} ({reason})",
                     t=t, level=level.name.lower(), reason=reason)

    # -- reporting -----------------------------------------------------------

    @property
    def min_level(self) -> ServiceLevel:
        """The lowest level reached so far."""
        if not self.changes:
            return self.level
        return min(change.level for change in self.changes)

    def time_to_degrade(self) -> float | None:
        """Virtual time of the first step below FULL (``None`` if never)."""
        for change in self.changes:
            if change.level < ServiceLevel.FULL:
                return change.t
        return None

    def time_to_recover(self) -> float | None:
        """Virtual time FULL was regained after a degradation, if ever."""
        degraded_at = self.time_to_degrade()
        if degraded_at is None:
            return None
        for change in self.changes:
            if change.t > degraded_at and change.level == ServiceLevel.FULL:
                return change.t
        return None

    def to_dict(self) -> dict:
        return {
            "finalLevel": self.level.name.lower(),
            "minLevel": self.min_level.name.lower(),
            "changes": [change.to_dict() for change in self.changes],
            "timeToDegradeS": self.time_to_degrade(),
            "timeToRecoverS": self.time_to_recover(),
        }
