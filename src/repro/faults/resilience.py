"""Resilience primitives: retry/backoff, circuit breakers, watchdogs.

Everything here runs on an explicit :class:`VirtualClock` — delays are
*modeled*, never slept — so a chaos campaign that retries thousands of
operations completes in milliseconds and replays byte-identically from
its seed.  The three primitives mirror the classic fail-operational
toolbox the paper's intrusion-response discussion presupposes:

* :func:`retry_with_backoff` — exponential backoff with deterministic
  jitter (drawn from a :mod:`repro.core.rng` stream) and a hard time
  budget, retrying only the exception classes the caller names, so
  permanent errors (access denied, not found) fail fast while transient
  ones (timeouts, outages) are absorbed;
* :class:`CircuitBreaker` — the closed/open/half-open state machine
  that stops hammering a dead dependency, with recovery probing after a
  cool-down;
* :class:`Watchdog` / :class:`HealthMonitor` — heartbeat expiry and
  windowed failure-fraction tracking, the signals the degradation
  manager subscribes to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, TypeVar

from repro.core.layers import Layer
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["VirtualClock", "RetryPolicy", "RetryStats", "RetryBudgetExceeded",
           "retry_with_backoff", "BreakerState", "BreakerOpen",
           "CircuitBreaker", "Watchdog", "HealthMonitor"]

T = TypeVar("T")


class VirtualClock:
    """A monotonically advancing model clock (seconds)."""

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("the clock only advances")
        self.now += dt
        return self.now


# --------------------------------------------------------------------------
# retry with backoff
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape for :func:`retry_with_backoff`."""

    max_attempts: int = 3
    base_delay_s: float = 0.1
    factor: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1          # +/- fraction applied to each delay

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_s(self, retry_index: int, rng: random.Random) -> float:
        """The (jittered) delay before retry ``retry_index`` (0-based)."""
        nominal = min(self.max_delay_s,
                      self.base_delay_s * self.factor ** retry_index)
        if self.jitter:
            nominal *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return nominal


@dataclass
class RetryStats:
    """Aggregate bookkeeping across many retried call sites."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    recovered: int = 0           # calls that succeeded after >= 1 retry
    exhausted: int = 0           # calls that gave up (attempts or budget)

    def to_dict(self) -> dict:
        return {"calls": self.calls, "attempts": self.attempts,
                "retries": self.retries, "recovered": self.recovered,
                "exhausted": self.exhausted}


class RetryBudgetExceeded(Exception):
    """Backoff would overrun the call's time budget; gave up retrying."""


def retry_with_backoff(op: Callable[[], T], *,
                       policy: RetryPolicy,
                       rng: random.Random,
                       clock: VirtualClock,
                       budget_s: float = float("inf"),
                       retry_on: tuple[type[BaseException], ...] = (Exception,),
                       stats: RetryStats | None = None,
                       on_retry: Callable[[int, BaseException], None] | None = None,
                       ) -> T:
    """Run ``op`` with exponential backoff on transient failures.

    Only exceptions in ``retry_on`` are retried; anything else
    propagates immediately (the typed-error contract: permanent failure
    classes must not consume retry budget).  The modeled backoff delays
    advance ``clock``; when the next delay would push past ``budget_s``
    of elapsed budget, :class:`RetryBudgetExceeded` is raised from the
    last transient error instead of sleeping the budget away.
    """
    if stats is not None:
        stats.calls += 1
    started = clock.now
    retry_index = 0
    while True:
        if stats is not None:
            stats.attempts += 1
        try:
            result = op()
        except retry_on as exc:
            if retry_index + 1 >= policy.max_attempts:
                if stats is not None:
                    stats.exhausted += 1
                raise
            delay = policy.delay_s(retry_index, rng)
            if clock.now - started + delay > budget_s:
                if stats is not None:
                    stats.exhausted += 1
                raise RetryBudgetExceeded(
                    f"retry budget {budget_s:g}s exhausted after "
                    f"{retry_index + 1} attempt(s)") from exc
            if stats is not None:
                stats.retries += 1
            if OBS.enabled:
                OBS.count("faults.retry.retries")
            if on_retry is not None:
                on_retry(retry_index, exc)
            clock.advance(delay)
            retry_index += 1
        else:
            if retry_index and stats is not None:
                stats.recovered += 1
            return result


# --------------------------------------------------------------------------
# circuit breaker
# --------------------------------------------------------------------------

class BreakerState(str, Enum):
    """The classic three-state breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class BreakerOpen(Exception):
    """The breaker is open; the call was rejected without executing."""


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state change."""

    t: float
    state: BreakerState


class CircuitBreaker:
    """Closed/open/half-open breaker around an unreliable dependency.

    ``failure_threshold`` consecutive failures trip CLOSED -> OPEN;
    after ``recovery_time_s`` on the clock the next call probes
    HALF_OPEN; ``half_open_successes`` consecutive probe successes close
    it again, any probe failure re-opens.  State changes land on the
    observability layer as gauges + events when instrumentation is on.
    """

    def __init__(self, name: str, *,
                 clock: VirtualClock,
                 failure_threshold: int = 3,
                 recovery_time_s: float = 3.0,
                 half_open_successes: int = 1,
                 layer: Layer = Layer.DATA) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_successes < 1:
            raise ValueError("half_open_successes must be >= 1")
        self.name = name
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.half_open_successes = half_open_successes
        self.layer = layer
        self.state = BreakerState.CLOSED
        self.opens = 0
        self.rejections = 0
        self.transitions: list[BreakerTransition] = []
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0

    # -- state machine -------------------------------------------------------

    def _transition(self, state: BreakerState) -> None:
        if state == self.state:
            return
        self.state = state
        self.transitions.append(BreakerTransition(self.clock.now, state))
        if OBS.enabled:
            OBS.count(f"faults.breaker.{state.value}")
            OBS.gauge(f"faults.breaker.{self.name}.state",
                      {BreakerState.CLOSED: 0, BreakerState.HALF_OPEN: 1,
                       BreakerState.OPEN: 2}[state])
            OBS.emit(EventKind.BREAKER_STATE, self.layer, self.name,
                     f"breaker -> {state.value}", t=self.clock.now,
                     state=state.value)

    def allow(self) -> bool:
        """May a call proceed right now? (OPEN may lapse to HALF_OPEN.)"""
        if self.state == BreakerState.OPEN:
            if self.clock.now - self._opened_at >= self.recovery_time_s:
                self._probe_successes = 0
                self._transition(BreakerState.HALF_OPEN)
            else:
                return False
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state == BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        if self.state == BreakerState.HALF_OPEN:
            self._open()
            return
        self._consecutive_failures += 1
        if self.state == BreakerState.CLOSED and \
                self._consecutive_failures >= self.failure_threshold:
            self._open()

    def _open(self) -> None:
        self.opens += 1
        self._opened_at = self.clock.now
        self._consecutive_failures = 0
        self._transition(BreakerState.OPEN)

    # -- the guarded call ----------------------------------------------------

    def call(self, op: Callable[[], T]) -> T:
        """Run ``op`` through the breaker.

        Raises :class:`BreakerOpen` without executing when open; feeds
        the outcome back into the state machine otherwise.
        """
        if not self.allow():
            self.rejections += 1
            if OBS.enabled:
                OBS.count("faults.breaker.rejections")
            raise BreakerOpen(f"breaker {self.name!r} is open")
        try:
            result = op()
        except Exception:  # audit: allow AUD005 breaker must observe every failure; re-raised unchanged
            self.record_failure()
            raise
        self.record_success()
        return result

    def to_dict(self) -> dict:
        return {"name": self.name, "opens": self.opens,
                "rejections": self.rejections,
                "finalState": self.state.value}


# --------------------------------------------------------------------------
# watchdog + health monitor
# --------------------------------------------------------------------------

class Watchdog:
    """Heartbeat expiry: components that go silent past a timeout."""

    def __init__(self, timeout_s: float) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout must be positive")
        self.timeout_s = timeout_s
        self._last_beat: dict[str, float] = {}

    def beat(self, component: str, t: float) -> None:
        self._last_beat[component] = t

    def expired(self, t: float) -> list[str]:
        """Components whose last heartbeat is older than the timeout."""
        return sorted(name for name, last in self._last_beat.items()
                      if t - last > self.timeout_s)


class HealthMonitor:
    """Windowed pass/fail tracking per component."""

    def __init__(self, *, window: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._results: dict[str, list[bool]] = {}

    def report(self, component: str, ok: bool) -> None:
        results = self._results.setdefault(component, [])
        results.append(ok)
        if len(results) > self.window:
            del results[0]

    def failure_fraction(self, component: str) -> float:
        """Failures over the recent window (0.0 for unknown components)."""
        results = self._results.get(component)
        if not results:
            return 0.0
        return sum(1 for ok in results if not ok) / len(results)

    def latest(self, component: str) -> bool | None:
        """The most recent report (``None`` for unknown components)."""
        results = self._results.get(component)
        return results[-1] if results else None

    def components(self) -> list[str]:
        return sorted(self._results)
