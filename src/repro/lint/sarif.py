"""Real SARIF 2.1.0 export for lint and flow reports.

The ``--json`` report (:mod:`repro.lint.report`) is a compact in-house
schema; this module emits the actual OASIS `SARIF 2.1.0`_ shape so
findings load into standard tooling (GitHub code scanning, VS Code
SARIF viewers, ...).  The mapping:

* one ``run`` per report, ``tool.driver`` carrying the rule catalog as
  ``reportingDescriptor`` objects (title, full remediation text, the
  paper section as ``helpUri`` fragment);
* one ``result`` per finding — ``ruleId``, SARIF ``level`` mapped from
  the severity ladder, the subject as a ``logicalLocation`` (these are
  system *components*, not files, so physical locations do not apply);
* the stable lint fingerprint under ``partialFingerprints`` — the same
  value the baseline machinery keys on;
* baselined findings are still emitted, with a ``suppressions`` entry
  (kind ``external``), matching how SARIF models accepted findings.

:func:`validate_sarif_dict` structurally checks the emitted subset —
enough to keep the golden file and the CI gates honest without a full
JSON-schema engine.

.. _SARIF 2.1.0: https://docs.oasis-open.org/sarif/sarif/v2.1.0/
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.engine import Finding, Rule, Severity
from repro.lint.report import Report, SchemaError

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "to_sarif_dict",
           "validate_sarif_dict"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/"
                    "os/schemas/sarif-schema-2.1.0.json")
_TOOL_NAME = "repro-seclint"
#: Tools that share this SARIF emitter; ``to_sarif_dict(tool_name=...)``
#: must pick one of these so :func:`validate_sarif_dict` stays closed.
_KNOWN_TOOLS = frozenset({"repro-seclint", "repro-audit"})
_INFO_URI = "https://github.com/paper-repro/repro"

#: Severity -> SARIF level.  SARIF has no "critical"; both HIGH and
#: CRITICAL map to "error" and the precise severity rides along in the
#: result's properties bag.
_LEVELS: dict[Severity, str] = {
    Severity.INFO: "note",
    Severity.LOW: "note",
    Severity.MEDIUM: "warning",
    Severity.HIGH: "error",
    Severity.CRITICAL: "error",
}


def _descriptor(rule: Rule) -> dict:
    return {
        "id": rule.rule_id,
        "name": rule.title,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.remediation},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        "properties": {
            "layer": rule.layer.name.lower(),
            "paperRef": rule.paper_ref,
            "severity": rule.severity.name.lower(),
        },
    }


def _result(finding: Finding, rule_index: dict[str, int], *,
            suppressed: bool, fingerprint_key: str) -> dict:
    location: dict = {
        "logicalLocations": [
            {"name": finding.subject, "kind": "resource"}
        ]
    }
    # Findings that carry a physical source location (the self-audit
    # engine's file:line findings) also get a physicalLocation, which is
    # what GitHub code scanning anchors annotations on.
    path = getattr(finding, "path", "")
    if path:
        location["physicalLocation"] = {
            "artifactLocation": {"uri": path},
            "region": {"startLine": max(1, int(getattr(finding, "line", 1)))},
        }
    result = {
        "ruleId": finding.rule_id,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [location],
        "partialFingerprints": {fingerprint_key: finding.fingerprint},
        "properties": {
            "layer": finding.layer.name.lower(),
            "paperRef": finding.paper_ref,
            "severity": finding.severity.name.lower(),
        },
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "justification": "accepted via lint baseline"}
        ]
    return result


def to_sarif_dict(report: Report, rules: Iterable[Rule] = (), *,
                  tool_name: str = _TOOL_NAME) -> dict:
    """Render ``report`` as a SARIF 2.1.0 log with one run."""
    from repro import __version__

    if tool_name not in _KNOWN_TOOLS:
        raise ValueError(f"unknown SARIF tool {tool_name!r}; "
                         f"expected one of {sorted(_KNOWN_TOOLS)}")
    short = tool_name.removeprefix("repro-")
    rule_list = list(rules)
    rule_index = {rule.rule_id: i for i, rule in enumerate(rule_list)}
    results = [_result(f, rule_index, suppressed=False,
                       fingerprint_key=f"{short}/v1")
               for f in report.findings]
    results += [_result(f, rule_index, suppressed=True,
                        fingerprint_key=f"{short}/v1")
                for f in report.suppressed]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": __version__,
                        "informationUri": _INFO_URI,
                        "rules": [_descriptor(rule) for rule in rule_list],
                    }
                },
                "automationDetails": {"id": f"{short}/{report.target_name}"},
                "results": results,
            }
        ],
    }


# --------------------------------------------------------------------------
# validation of the emitted subset
# --------------------------------------------------------------------------

_VALID_LEVELS = {"none", "note", "warning", "error"}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _validate_result(result: dict, where: str, rule_ids: set[str]) -> None:
    _require(isinstance(result, dict), f"{where}: result must be an object")
    _require(isinstance(result.get("ruleId"), str) and result["ruleId"],
             f"{where}: ruleId must be a non-empty string")
    if rule_ids:
        _require(result["ruleId"] in rule_ids,
                 f"{where}: ruleId {result['ruleId']!r} not in driver.rules")
    _require(result.get("level") in _VALID_LEVELS,
             f"{where}: bad level {result.get('level')!r}")
    message = result.get("message")
    _require(isinstance(message, dict) and isinstance(message.get("text"), str),
             f"{where}: message.text must be a string")
    locations = result.get("locations")
    _require(isinstance(locations, list) and len(locations) >= 1,
             f"{where}: at least one location required")
    for location in locations:
        logical = location.get("logicalLocations")
        _require(isinstance(logical, list) and len(logical) >= 1,
                 f"{where}: logicalLocations required")
        for entry in logical:
            _require(isinstance(entry.get("name"), str) and entry["name"],
                     f"{where}: logical location needs a name")
        if "physicalLocation" in location:
            physical = location["physicalLocation"]
            artifact = physical.get("artifactLocation", {})
            _require(isinstance(artifact.get("uri"), str) and artifact["uri"],
                     f"{where}: physicalLocation needs artifactLocation.uri")
            region = physical.get("region", {})
            start = region.get("startLine")
            _require(isinstance(start, int) and start >= 1,
                     f"{where}: physicalLocation needs region.startLine >= 1")
    prints = result.get("partialFingerprints")
    _require(isinstance(prints, dict) and prints,
             f"{where}: partialFingerprints required")
    for key, value in prints.items():
        _require(isinstance(value, str) and value,
                 f"{where}: partialFingerprints[{key!r}] must be a string")
    if "suppressions" in result:
        for suppression in result["suppressions"]:
            _require(suppression.get("kind") in ("inSource", "external"),
                     f"{where}: bad suppression kind")


def validate_sarif_dict(document: dict) -> None:
    """Raise :class:`SchemaError` unless ``document`` is valid SARIF-as-emitted."""
    _require(isinstance(document, dict), "SARIF log must be an object")
    _require(document.get("version") == SARIF_VERSION,
             f"version must be {SARIF_VERSION!r}")
    _require(document.get("$schema") == SARIF_SCHEMA_URI,
             "$schema must point at the 2.1.0 schema")
    runs = document.get("runs")
    _require(isinstance(runs, list) and len(runs) == 1,
             "exactly one run expected")
    run = runs[0]
    driver = run.get("tool", {}).get("driver")
    _require(isinstance(driver, dict), "runs[0].tool.driver required")
    _require(driver.get("name") in _KNOWN_TOOLS,
             f"unexpected tool name {driver.get('name')!r}")
    _require(isinstance(driver.get("version"), str) and driver["version"],
             "driver.version must be a non-empty string")
    rules = driver.get("rules", [])
    _require(isinstance(rules, list), "driver.rules must be a list")
    rule_ids = set()
    for index, rule in enumerate(rules):
        where = f"driver.rules[{index}]"
        _require(isinstance(rule.get("id"), str) and rule["id"],
                 f"{where}: id required")
        _require(rule["id"] not in rule_ids, f"{where}: duplicate id")
        rule_ids.add(rule["id"])
        config = rule.get("defaultConfiguration", {})
        _require(config.get("level") in _VALID_LEVELS,
                 f"{where}: bad defaultConfiguration.level")
    results = run.get("results")
    _require(isinstance(results, list), "runs[0].results must be a list")
    for index, result in enumerate(results):
        _validate_result(result, f"results[{index}]", rule_ids)
