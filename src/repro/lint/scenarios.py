"""Lintable scenario builders for the ``python -m repro lint`` CLI.

Each builder assembles a fully-configured :class:`AnalysisTarget` from
the library's own example setups.  Three are *intentionally insecure* —
they reproduce the paper's incident configurations and must keep
flagging — and one is the hardened §III onboard deployment that must
lint **clean** (the regression gate for every future PR).
"""

from __future__ import annotations

from typing import Callable

from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer
from repro.core.threats import AccessLevel
from repro.lint.target import AnalysisTarget, GatewayBinding, V2xChannelBinding

__all__ = ["SCENARIOS", "build_scenario", "scenario_names"]


def pkes_legacy() -> AnalysisTarget:
    """§II-A as shipped pre-[1]: LF/RSSI proximity and a naive receiver."""
    from repro.phy.hrp import HrpReceiver
    from repro.phy.pkes import PkesSystem

    model = SystemModel("pkes-legacy")
    model.add_component(Component("keyfob", Layer.PHYSICAL, criticality=2,
                                  exposed=True, description="relay-reachable fob"))
    model.add_component(Component("pkes-receiver", Layer.PHYSICAL, criticality=2))
    model.add_component(Component("body-control", Layer.NETWORK, criticality=3))
    model.add_component(Component("immobilizer", Layer.NETWORK, criticality=5))
    model.connect(Interface("keyfob", "pkes-receiver", "lf-wakeup",
                            AccessLevel.REMOTE))
    model.connect(Interface("pkes-receiver", "body-control", "lin"))
    model.connect(Interface("body-control", "immobilizer", "can"))

    target = AnalysisTarget(name="pkes-legacy", model=model)
    target.pkes_systems.append(PkesSystem(policy="lf-rssi"))
    target.hrp_receivers.append(
        HrpReceiver(integrity_check=False, threshold_ratio=0.3))
    return target


def cariad_breach() -> AnalysisTarget:
    """§V/Fig. 8: the telemetry backend exactly as breached."""
    from repro.datalayer.breach import build_cariad_service

    service, _ = build_cariad_service(n_vehicles=4, days=2)

    model = SystemModel("cariad-breach")
    model.add_component(Component("vehicle-fleet", Layer.NETWORK, criticality=3))
    model.add_component(Component("telemetry-backend", Layer.DATA, criticality=3,
                                  exposed=True, description="internet-facing API"))
    model.add_component(Component("telemetry-store", Layer.DATA, criticality=4))
    model.connect(Interface("vehicle-fleet", "telemetry-backend", "https",
                            AccessLevel.REMOTE))
    model.connect(Interface("telemetry-backend", "telemetry-store", "s3",
                            AccessLevel.REMOTE))

    target = AnalysisTarget(name="cariad-breach", model=model)
    target.add_cloud_service(service)
    return target


def onboard_insecure() -> AnalysisTarget:
    """§III before any protection: the insecure-by-default onboard network."""
    from repro.ivn.cansec import CansecZone
    from repro.ivn.gateway import GatewayFilter
    from repro.ivn.keymgmt import KeyLifecycleManager
    from repro.ivn.macsec import MacsecPort, MkaSession
    from repro.ivn.secoc import PROFILE_1, SecOcProfile
    from repro.ivn.topology import Endpoint, Zone, ZonalArchitecture

    arch = ZonalArchitecture()
    arch.add_zone(Zone("zc-front", [
        Endpoint("brake-ecu", "can", criticality=5),
        Endpoint("infotainment-amp", "can", criticality=1),
        Endpoint("adas-cam", "t1s", criticality=4),
    ]))
    arch.add_zone(Zone("zc-rear", [
        Endpoint("powertrain-ecu", "can", criticality=5),
        Endpoint("door-ecu", "can", criticality=2),
    ]))
    model = arch.system_model(secured_links=False)

    target = AnalysisTarget(name="onboard-insecure", model=model, zonal=arch)

    # SECOC as actually deployed on classic CAN: truncated everything,
    # plus a legacy PDU group that never got a freshness counter.
    target.secoc_profiles["body-pdus"] = PROFILE_1
    target.secoc_profiles["legacy-pdus"] = SecOcProfile(
        "legacy", freshness_bits=0, mac_bits=24)

    # One fleet-wide key provisioned into both zones (Fig. 4 anti-pattern).
    target.assign_key("fleet-shared-key", "zc-front", "zc-rear")

    # The gateway "filters" by whitelisting the whole standard id space
    # from the connectivity unit straight into the brake zone.
    gateway = GatewayFilter("cc-gw")
    gateway.allow("telematics-port", "front-port", 0x000, 0x7FF)
    gateway.allow("front-port", "rear-port", 0x300, 0x30F)
    binding = GatewayBinding(gateway)
    binding.attach("telematics-port", "telematics")
    binding.attach("front-port", "brake-ecu", "infotainment-amp", "adas-cam")
    binding.attach("rear-port", "powertrain-ecu", "door-ecu")
    target.add_gateway(binding)

    # MACsec uplinks rekey only at 98% of the PN space; CANsec on the
    # rear zone runs integrity-only.
    session = MkaSession(b"\x28" * 16, [MacsecPort("cc"), MacsecPort("zc-front")])
    target.lifecycle_managers.append(
        KeyLifecycleManager(session, rekey_fraction=0.98))
    target.cansec_zones["rear-zone"] = CansecZone(b"\x31" * 16, encrypt=False)

    # The ADAS camera listens to unsigned V2V messages — a §VII
    # adjacent-attacker entry point straight onto a criticality-4 ECU.
    target.add_v2x_channel(V2xChannelBinding("v2v-sidelink", "adas-cam"))
    return target


def onboard_hardened() -> AnalysisTarget:
    """§III fully deployed: the configuration every rule must accept."""
    from repro.ivn.cansec import CansecZone
    from repro.ivn.gateway import GatewayFilter
    from repro.ivn.keymgmt import KeyLifecycleManager
    from repro.ivn.macsec import MacsecPort, MkaSession
    from repro.ivn.secoc import PROFILE_3
    from repro.ivn.topology import ZonalArchitecture
    from repro.ssi.did import Did, DidDocument, KeyPair
    from repro.ssi.registry import VerifiableDataRegistry
    from repro.ssi.vc import VerifiableCredential

    arch = ZonalArchitecture.figure3()
    model = arch.system_model(secured_links=True)

    target = AnalysisTarget(name="onboard-hardened", model=model, zonal=arch,
                            now=1000.0)
    target.secoc_profiles["powertrain-pdus"] = PROFILE_3
    target.assign_key("zone-left-key", "zc-left")
    target.assign_key("zone-right-key", "zc-right")

    gateway = GatewayFilter("cc-gw")
    gateway.allow("left-port", "right-port", 0x300, 0x30F)
    gateway.allow("right-port", "left-port", 0x310, 0x31F)
    binding = GatewayBinding(gateway)
    binding.attach("left-port", "ecu-can-1", "ecu-can-2", "ecu-t1s-1")
    binding.attach("right-port", "ecu-can-3", "ecu-t1s-2", "ecu-t1s-3")
    target.add_gateway(binding)

    session = MkaSession(b"\x28" * 16, [MacsecPort("cc"), MacsecPort("zc-left")])
    target.lifecycle_managers.append(
        KeyLifecycleManager(session, rekey_fraction=0.8))
    target.cansec_zones["left-zone"] = CansecZone(b"\x11" * 16, encrypt=True)

    # Key provisioning is authorized through SSI: the OEM backend issues
    # the vehicle an onboarding credential, both DIDs resolvable.
    registry = VerifiableDataRegistry()
    issuer_did, issuer_key = Did("oem-backend"), KeyPair.from_seed_label("oem-backend")
    vehicle_did, vehicle_key = Did("vehicle-42"), KeyPair.from_seed_label("vehicle-42")
    registry.register(DidDocument.for_keypair(issuer_did, issuer_key))
    registry.register(DidDocument.for_keypair(vehicle_did, vehicle_key))
    credential = VerifiableCredential.issue(
        credential_type="OnboardingCredential",
        issuer=issuer_did, issuer_key=issuer_key, subject=vehicle_did,
        claims={"zones": ["zc-left", "zc-right"]},
        issued_at=0.0, validity_s=365 * 86400.0)
    target.registry = registry
    target.add_credential(credential)

    # The hardened deployment signs its V2X traffic (§VII), so the
    # sidelink is not an untrusted entry point.
    target.add_v2x_channel(
        V2xChannelBinding("v2v-sidelink", "ecu-t1s-1", authenticated=True))
    return target


def maas_platform() -> AnalysisTarget:
    """§VI/Fig. 9: the MaaS system of systems with unsecured integrations."""
    from repro.sos.maas import build_maas_sos

    sos = build_maas_sos(secured_interfaces=False)
    target = AnalysisTarget(name="maas-platform", model=sos.to_system_model())
    target.sos = sos
    return target


SCENARIOS: dict[str, tuple[str, Callable[[], AnalysisTarget]]] = {
    "pkes-legacy": ("§II-A legacy PKES: relay-vulnerable proximity check",
                    pkes_legacy),
    "cariad-breach": ("§V/Fig. 8 telemetry backend as breached",
                      cariad_breach),
    "onboard-insecure": ("§III zonal IVN before any protection is deployed",
                         onboard_insecure),
    "onboard-hardened": ("§III zonal IVN with S1-S3 + SSI fully deployed "
                         "(must lint clean)", onboard_hardened),
    "maas-platform": ("§VI/Fig. 9 MaaS SoS with unsecured integrations",
                      maas_platform),
}


def scenario_names() -> list[str]:
    return list(SCENARIOS)


def build_scenario(name: str) -> AnalysisTarget:
    try:
        _, builder = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None
    return builder()
