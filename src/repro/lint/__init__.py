"""``repro.lint`` — static security-configuration analysis (seclint).

The paper's §VIII argues that autonomous-system security must be
holistic: a misconfiguration at one layer silently undermines every
other layer's defenses.  This package audits a fully-configured system
*statically* — no simulation runs — against a catalog of ~25 rules
spanning all of Fig. 1's layers, and reports findings as a table or a
SARIF-style JSON document.

Quickstart::

    from repro.lint import AnalysisTarget, Linter, build_scenario

    report = Linter().run(build_scenario("onboard-insecure"))
    print(report.to_table())

CLI::

    python -m repro lint onboard-insecure            # table + exit code
    python -m repro lint cariad-breach --json        # SARIF-lite report
    python -m repro lint --rules                     # the rule catalog
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import Finding, Linter, Rule, Severity
from repro.lint.report import Report, SchemaError, validate_report_dict
from repro.lint.rules import CATALOG, full_catalog, rules_by_id
from repro.lint.scenarios import SCENARIOS, build_scenario, scenario_names
from repro.lint.target import (AnalysisTarget, GatewayBinding,
                               V2xChannelBinding)

__all__ = [
    "AnalysisTarget",
    "Baseline",
    "BaselineEntry",
    "CATALOG",
    "Finding",
    "GatewayBinding",
    "Linter",
    "Report",
    "Rule",
    "SCENARIOS",
    "SchemaError",
    "Severity",
    "V2xChannelBinding",
    "build_scenario",
    "full_catalog",
    "rules_by_id",
    "scenario_names",
    "validate_report_dict",
]
