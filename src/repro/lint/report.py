"""Lint reports: human-readable tables and a SARIF-style JSON document.

The JSON schema (version ``1.0``) is intentionally a small, stable
subset of SARIF's shape::

    {
      "version": "1.0",
      "tool": {"name": "repro-seclint", "version": "<package version>"},
      "target": "<target name>",
      "rules": [
        {"id", "title", "layer", "severity", "paperRef", "remediation"}
      ],
      "findings": [
        {"ruleId", "severity", "layer", "subject", "message",
         "paperRef", "remediation", "fingerprint"}
      ],
      "suppressed": [ <same shape as findings> ],
      "summary": {"total": <int>, "bySeverity": {"critical": <int>, ...}}
    }

:func:`validate_report_dict` checks a parsed document against that
schema and raises :class:`SchemaError` on any violation — the CI gate
and the golden-report test both call it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.layers import Layer
from repro.lint.engine import Finding, Rule, Severity

__all__ = ["Report", "SchemaError", "validate_report_dict"]

SCHEMA_VERSION = "1.0"
TOOL_NAME = "repro-seclint"


class SchemaError(ValueError):
    """A lint JSON report does not match the documented schema."""


@dataclass(frozen=True)
class Report:
    """The outcome of one linter run over one target."""

    target_name: str
    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...] = ()
    rules_run: tuple[str, ...] = ()

    # -- summaries -----------------------------------------------------------

    def counts_by_severity(self) -> dict[Severity, int]:
        counts: dict[Severity, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def worst_severity(self) -> Severity | None:
        return max((f.severity for f in self.findings), default=None)

    def finding_rule_ids(self) -> set[str]:
        return {f.rule_id for f in self.findings}

    def exit_code(self, gate: Severity | None = Severity.LOW) -> int:
        """0 when no unsuppressed finding reaches ``gate``; 1 otherwise.

        ``gate=None`` never fails (report-only mode).
        """
        if gate is None:
            return 0
        worst = self.worst_severity()
        return 1 if worst is not None and worst >= gate else 0

    # -- rendering -----------------------------------------------------------

    def to_table(self) -> str:
        """Human-readable findings table."""
        if not self.findings and not self.suppressed:
            return (f"{self.target_name}: clean "
                    f"({len(self.rules_run)} rules, 0 findings)")
        lines = [
            f"{'rule':8s} {'severity':9s} {'layer':18s} subject: message",
            f"{'-' * 8} {'-' * 9} {'-' * 18} {'-' * 40}",
        ]
        for finding in self.findings:
            lines.append(
                f"{finding.rule_id:8s} {finding.severity.name.lower():9s} "
                f"{finding.layer.name.lower():18s} "
                f"{finding.subject}: {finding.message}")
        summary = ", ".join(
            f"{count} {severity.name.lower()}"
            for severity, count in sorted(self.counts_by_severity().items(),
                                          key=lambda kv: -kv[0]))
        lines.append(f"{self.target_name}: {len(self.findings)} finding(s) "
                     f"({summary or 'none'}), "
                     f"{len(self.suppressed)} baselined, "
                     f"{len(self.rules_run)} rules run")
        return "\n".join(lines)

    def to_json_dict(self, rules: Iterable[Rule] = ()) -> dict:
        """The SARIF-lite document (see module docstring for the schema)."""
        from repro import __version__

        by_severity: dict[str, int] = {}
        for severity, count in self.counts_by_severity().items():
            by_severity[severity.name.lower()] = count
        return {
            "version": SCHEMA_VERSION,
            "tool": {"name": TOOL_NAME, "version": __version__},
            "target": self.target_name,
            "rules": [
                {
                    "id": rule.rule_id,
                    "title": rule.title,
                    "layer": rule.layer.name.lower(),
                    "severity": rule.severity.name.lower(),
                    "paperRef": rule.paper_ref,
                    "remediation": rule.remediation,
                }
                for rule in rules
            ],
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "summary": {"total": len(self.findings), "bySeverity": by_severity},
        }


# --------------------------------------------------------------------------
# schema validation
# --------------------------------------------------------------------------

_SEVERITY_NAMES = {s.name.lower() for s in Severity}
_LAYER_NAMES = {layer.name.lower() for layer in Layer}

_FINDING_KEYS = {"ruleId", "severity", "layer", "subject", "message",
                 "paperRef", "remediation", "fingerprint"}
_RULE_KEYS = {"id", "title", "layer", "severity", "paperRef", "remediation"}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _validate_finding(entry: dict, where: str) -> None:
    _require(isinstance(entry, dict), f"{where}: finding must be an object")
    _require(set(entry) == _FINDING_KEYS,
             f"{where}: keys {sorted(entry)} != {sorted(_FINDING_KEYS)}")
    for key in sorted(_FINDING_KEYS):
        _require(isinstance(entry[key], str), f"{where}: {key} must be a string")
    _require(entry["severity"] in _SEVERITY_NAMES,
             f"{where}: bad severity {entry['severity']!r}")
    _require(entry["layer"] in _LAYER_NAMES,
             f"{where}: bad layer {entry['layer']!r}")
    _require(len(entry["fingerprint"]) == 16,
             f"{where}: fingerprint must be 16 hex chars")


def validate_report_dict(document: dict) -> None:
    """Raise :class:`SchemaError` unless ``document`` matches the schema."""
    _require(isinstance(document, dict), "report must be an object")
    required = {"version", "tool", "target", "rules", "findings",
                "suppressed", "summary"}
    _require(set(document) == required,
             f"top-level keys {sorted(document)} != {sorted(required)}")
    _require(document["version"] == SCHEMA_VERSION,
             f"unsupported schema version {document['version']!r}")
    tool = document["tool"]
    _require(isinstance(tool, dict) and set(tool) == {"name", "version"},
             "tool must be {name, version}")
    _require(tool["name"] == TOOL_NAME, f"unexpected tool name {tool['name']!r}")
    _require(isinstance(document["target"], str) and document["target"],
             "target must be a non-empty string")

    _require(isinstance(document["rules"], list), "rules must be a list")
    for index, rule in enumerate(document["rules"]):
        where = f"rules[{index}]"
        _require(isinstance(rule, dict) and set(rule) == _RULE_KEYS,
                 f"{where}: keys must be {sorted(_RULE_KEYS)}")
        _require(rule["severity"] in _SEVERITY_NAMES,
                 f"{where}: bad severity {rule['severity']!r}")
        _require(rule["layer"] in _LAYER_NAMES,
                 f"{where}: bad layer {rule['layer']!r}")

    for section in ("findings", "suppressed"):
        _require(isinstance(document[section], list), f"{section} must be a list")
        for index, entry in enumerate(document[section]):
            _validate_finding(entry, f"{section}[{index}]")

    summary = document["summary"]
    _require(isinstance(summary, dict) and set(summary) == {"total", "bySeverity"},
             "summary must be {total, bySeverity}")
    _require(summary["total"] == len(document["findings"]),
             "summary.total must equal len(findings)")
    by_severity = summary["bySeverity"]
    _require(isinstance(by_severity, dict), "bySeverity must be an object")
    for name, count in by_severity.items():
        _require(name in _SEVERITY_NAMES, f"bySeverity: bad severity {name!r}")
        _require(isinstance(count, int) and count >= 0,
                 f"bySeverity[{name!r}] must be a non-negative int")
    _require(sum(by_severity.values()) == summary["total"],
             "bySeverity counts must sum to summary.total")
