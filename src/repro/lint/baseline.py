"""Suppression baselines: pin *intentional* findings, fail on new ones.

Several example scenarios are insecure **by design** (the PKES relay
victim, the CARIAD breach replay); the linter must be able to gate CI on
those without drowning real regressions in expected noise.  A baseline
file records the fingerprints of accepted findings; anything not in the
file still fails the gate.

File format (JSON)::

    {
      "version": 1,
      "target": "<target name the baseline was captured from>",
      "suppressions": [
        {"fingerprint": "...", "ruleId": "SEC001",
         "subject": "telematics->cc", "comment": "intentional: ..."}
      ]
    }

``fingerprint`` alone decides suppression; ``ruleId``/``subject`` are
recorded so humans can review what a baseline actually hides.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.lint.engine import Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.report import Report

__all__ = ["BaselineEntry", "Baseline"]

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    fingerprint: str
    rule_id: str
    subject: str
    comment: str = ""

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "ruleId": self.rule_id,
            "subject": self.subject,
            "comment": self.comment,
        }


@dataclass
class Baseline:
    """A set of suppressed fingerprints tied to a target."""

    target: str = ""
    entries: dict[str, BaselineEntry] = field(default_factory=dict)

    def add(self, entry: BaselineEntry) -> None:
        self.entries[entry.fingerprint] = entry

    def suppresses(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_report(cls, report: "Report",
                    comment: str = "accepted by baseline") -> "Baseline":
        """Capture every current finding as accepted."""
        baseline = cls(target=report.target_name)
        for finding in report.findings:
            baseline.add(BaselineEntry(
                fingerprint=finding.fingerprint,
                rule_id=finding.rule_id,
                subject=finding.subject,
                comment=comment,
            ))
        return baseline

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> str:
        entries = sorted(self.entries.values(),
                         key=lambda e: (e.rule_id, e.subject))
        return json.dumps({
            "version": BASELINE_VERSION,
            "target": self.target,
            "suppressions": [e.to_dict() for e in entries],
        }, indent=2, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        document = json.loads(text)
        if not isinstance(document, dict):
            raise ValueError("baseline must be a JSON object")
        if document.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {document.get('version')!r}")
        baseline = cls(target=str(document.get("target", "")))
        for entry in document.get("suppressions", []):
            baseline.add(BaselineEntry(
                fingerprint=str(entry["fingerprint"]),
                rule_id=str(entry.get("ruleId", "")),
                subject=str(entry.get("subject", "")),
                comment=str(entry.get("comment", "")),
            ))
        return baseline

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        return cls.from_json(Path(path).read_text())
