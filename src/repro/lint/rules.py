"""The rule catalog: ~25 static checks spanning the paper's layers.

Rule-id prefixes map to Fig. 1:

========  ==========================  ============
prefix    layer                       paper
========  ==========================  ============
``PHY``   physical                    §II
``IVN``   network (in-vehicle)        §III, Table I
``SSI``   software & platform         §IV
``DAT``   data                        §V, Fig. 8
``SOS``   system of systems           §VI, Fig. 9
``SEC``   cross-layer architecture    §VIII
========  ==========================  ============

Each check is a pure function from :class:`AnalysisTarget` to
``(subject, message)`` pairs; subjects are stable identifiers (component
names, interface ``a->b`` labels, endpoint paths, key labels, credential
ids) so baseline fingerprints survive message-wording changes.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable, Iterator

from repro.core.attackgraph import AttackGraph
from repro.core.layers import Layer
from repro.lint.engine import Rule, Severity
from repro.lint.target import AnalysisTarget

__all__ = ["CATALOG", "full_catalog", "rules_by_id"]

CATALOG: list[Rule] = []

#: SEC004 flags any safety-relevant component whose estimated compromise
#: probability (noisy-OR over the top attack paths) exceeds this bound.
COMPROMISE_PROBABILITY_THRESHOLD = 0.5

#: Table I: MACs truncated below this width are brute-forceable on a
#: busy bus (2^-24 per attempt at profile 1 rates is reachable).
MIN_MAC_BITS = 64

#: Freshness counters narrower than this wrap quickly enough to enable
#: the Fig. 5 replay-after-wrap attack on long-lived sessions.
MIN_FRESHNESS_BITS = 16

#: A single gateway allow-rule spanning more ids than this is a
#: whitelist in name only (§V-C: only strictly needed ids should pass).
MAX_GATEWAY_RULE_SPAN = 256

#: 802.1AE: rotating this close to PN exhaustion leaves no margin for a
#: slow MKA round before the GCM nonce space wraps.
MAX_REKEY_FRACTION = 0.95


_CheckFn = Callable[[AnalysisTarget], Iterable[tuple[str, str]]]


def _rule(rule_id: str, title: str, *, layer: Layer, severity: Severity,
          paper_ref: str, remediation: str) -> Callable[[_CheckFn], _CheckFn]:
    """Register a check function into the catalog."""

    def decorator(check: _CheckFn) -> _CheckFn:
        CATALOG.append(Rule(rule_id, title, layer, severity,
                            paper_ref, remediation, check))
        return check

    return decorator


def rules_by_id() -> dict[str, Rule]:
    return {rule.rule_id: rule for rule in full_catalog()}


# --------------------------------------------------------------------------
# SEC: cross-layer architecture rules over the SystemModel (§VIII, Fig. 1)
# --------------------------------------------------------------------------

@_rule("SEC001", "exposed component with unauthenticated interface",
       layer=Layer.NETWORK, severity=Severity.HIGH, paper_ref="Fig. 1 / Table I",
       remediation="authenticate every interface touching an externally "
                   "reachable component (SECOC/MACsec/TLS as appropriate)")
def check_exposed_unauthenticated(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.model is None:
        return
    for interface in target.model.interfaces():
        if interface.authenticated:
            continue
        for end in (interface.source, interface.target):
            if target.model.component(end).exposed:
                yield (f"{interface.source}->{interface.target}",
                       f"unauthenticated {interface.protocol!r} interface touches "
                       f"exposed component {end!r}")
                break


@_rule("SEC002", "safety-critical component reachable without breaking crypto",
       layer=Layer.NETWORK, severity=Severity.CRITICAL, paper_ref="§III / §VIII",
       remediation="insert an authenticated boundary on every path from an "
                   "entry point to criticality>=4 components")
def check_critical_reachable(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.model is None:
        return
    entries = target.model.entry_points()
    for component in target.model.components():
        if component.criticality < 4 or component.exposed:
            continue
        via = [e.name for e in entries
               if component.name in target.model.reachable_from(
                   e.name, only_unsecured=True)]
        if via:
            yield (component.name,
                   f"criticality-{component.criticality} component reachable from "
                   f"entry point(s) {sorted(via)} over unauthenticated interfaces only")


@_rule("SEC003", "unencrypted interface across a layer boundary",
       layer=Layer.DATA, severity=Severity.MEDIUM, paper_ref="§V-A",
       remediation="encrypt data crossing trust/layer boundaries "
                   "(telemetry uplinks, backend APIs) in transit")
def check_cross_layer_plaintext(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.model is None:
        return
    for interface in target.model.interfaces():
        src = target.model.component(interface.source)
        dst = target.model.component(interface.target)
        if src.layer != dst.layer and not interface.encrypted:
            yield (f"{interface.source}->{interface.target}",
                   f"plaintext {interface.protocol!r} interface crosses the "
                   f"{src.layer.name}/{dst.layer.name} boundary")


@_rule("SEC004", "attack-graph compromise probability above threshold",
       layer=Layer.NETWORK, severity=Severity.HIGH, paper_ref="§V-C",
       remediation="harden the interfaces on the most likely attack path "
                   "(see AttackGraph.minimal_hardening_cut)")
def check_attack_graph(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.model is None or not target.model.entry_points():
        return
    graph = AttackGraph(target.model)
    for component in target.model.components():
        if component.criticality < 4 or component.exposed:
            continue
        probability = graph.compromise_probability(component.name)
        if probability > COMPROMISE_PROBABILITY_THRESHOLD:
            yield (component.name,
                   f"estimated compromise probability {probability:.2f} exceeds "
                   f"{COMPROMISE_PROBABILITY_THRESHOLD} for criticality-"
                   f"{component.criticality} component")


@_rule("SEC005", "safety-critical component directly exposed",
       layer=Layer.NETWORK, severity=Severity.CRITICAL, paper_ref="Fig. 1",
       remediation="front safety-critical components with a gateway or DMZ; "
                   "never expose them to external attackers directly")
def check_critical_exposed(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.model is None:
        return
    for component in target.model.components():
        if component.criticality == 5 and component.exposed:
            yield (component.name,
                   "criticality-5 component is itself an external entry point")


# --------------------------------------------------------------------------
# IVN: in-vehicle network configuration (§III, Table I, Figs. 3-6)
# --------------------------------------------------------------------------

@_rule("IVN001", "SECOC MAC truncated below 64 bits",
       layer=Layer.NETWORK, severity=Severity.HIGH, paper_ref="Table I",
       remediation="use a wider MAC profile (e.g. profile 3 on CAN FD / "
                   "Ethernet); 24-bit CMACs trade forgery resistance for bus load")
def check_secoc_mac_truncation(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for label, profile in sorted(target.secoc_profiles.items()):
        if profile.mac_bits < MIN_MAC_BITS:
            yield (label,
                   f"profile {profile.name!r} transmits a {profile.mac_bits}-bit MAC "
                   f"(blind forgery probability {profile.forgery_probability:.1e} "
                   "per attempt)")


@_rule("IVN002", "SECOC profile without freshness counter",
       layer=Layer.NETWORK, severity=Severity.HIGH, paper_ref="Fig. 5",
       remediation="enable freshness values: without them every authenticated "
                   "PDU is replayable verbatim")
def check_secoc_no_freshness(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for label, profile in sorted(target.secoc_profiles.items()):
        if profile.freshness_bits == 0:
            yield (label,
                   f"profile {profile.name!r} has freshness_bits=0: secured PDUs "
                   "can be replayed")


@_rule("IVN003", "SECOC freshness counter narrower than 16 bits",
       layer=Layer.NETWORK, severity=Severity.LOW, paper_ref="Table I",
       remediation="widen the transmitted freshness window or resynchronize "
                   "counters frequently; narrow windows wrap and re-open replay")
def check_secoc_short_freshness(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for label, profile in sorted(target.secoc_profiles.items()):
        if 0 < profile.freshness_bits < MIN_FRESHNESS_BITS:
            yield (label,
                   f"profile {profile.name!r} transmits only "
                   f"{profile.freshness_bits} freshness bits")


@_rule("IVN004", "symmetric key shared across IVN domains",
       layer=Layer.NETWORK, severity=Severity.HIGH, paper_ref="Fig. 4",
       remediation="provision one key per zone/domain so one compromised ECU "
                   "cannot forge traffic for every segment")
def check_key_shared(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for key_label, domains in sorted(target.key_domains.items()):
        if len(domains) > 1:
            yield (key_label,
                   f"key provisioned into {len(domains)} domains: {sorted(domains)}")


@_rule("IVN005", "gateway forwards from exposed segment into critical segment",
       layer=Layer.NETWORK, severity=Severity.HIGH, paper_ref="§III / Fig. 3",
       remediation="remove forwarding rules that let an exposed segment inject "
                   "ids toward criticality>=4 ECUs; keep zones default-deny")
def check_gateway_segmentation(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.model is None:
        return
    components = {c.name: c for c in target.model.components()}
    for binding in target.gateways:
        ports = sorted(binding.port_components)
        for src_port in ports:
            src_exposed = any(components[n].exposed
                              for n in binding.components_on(src_port)
                              if n in components)
            if not src_exposed:
                continue
            for dst_port in ports:
                if dst_port == src_port:
                    continue
                critical = sorted(
                    n for n in binding.components_on(dst_port)
                    if n in components and components[n].criticality >= 4)
                if not critical:
                    continue
                count = binding.gateway.exposure_count(src_port, dst_port)
                if count > 0:
                    yield (f"{binding.gateway.name}:{src_port}->{dst_port}",
                           f"{count} CAN id(s) forwardable from exposed port "
                           f"{src_port!r} toward critical ECU(s) {critical}")


@_rule("IVN006", "gateway allow-rule spans an excessive id range",
       layer=Layer.NETWORK, severity=Severity.MEDIUM, paper_ref="§V-C",
       remediation="enumerate the ids each zone actually needs instead of "
                   "whitelisting broad ranges")
def check_gateway_broad_rule(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for binding in target.gateways:
        for rule in binding.gateway.rules:
            span = rule.id_max - rule.id_min + 1
            if span > MAX_GATEWAY_RULE_SPAN:
                yield (f"{binding.gateway.name}:{rule.source_port}->"
                       f"{rule.dest_port}:{rule.id_min:#x}-{rule.id_max:#x}",
                       f"allow rule spans {span} ids "
                       f"(> {MAX_GATEWAY_RULE_SPAN})")


@_rule("IVN007", "MACsec rekey threshold leaves no margin before PN exhaustion",
       layer=Layer.NETWORK, severity=Severity.MEDIUM, paper_ref="§III-A",
       remediation="rotate SAKs at <= 95% of the packet-number space so a slow "
                   "MKA round cannot wrap the GCM nonce")
def check_macsec_rekey(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for index, manager in enumerate(target.lifecycle_managers):
        if manager.rekey_fraction > MAX_REKEY_FRACTION:
            yield (f"lifecycle[{index}]",
                   f"rekey_fraction={manager.rekey_fraction} "
                   f"(> {MAX_REKEY_FRACTION}) with pn_limit={manager.pn_limit}")


@_rule("IVN008", "CANsec zone configured without confidentiality",
       layer=Layer.NETWORK, severity=Severity.MEDIUM, paper_ref="Table I",
       remediation="enable encryption on CANsec zones carrying sensitive "
                   "payloads; integrity-only mode leaves them readable on the bus")
def check_cansec_plaintext(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for label, zone in sorted(target.cansec_zones.items()):
        if not zone.encrypt:
            yield (label, "zone protects integrity only (encrypt=False); "
                          "payloads cross the bus in plaintext")


@_rule("IVN009", "mixed-criticality ECUs share one unsegmented medium",
       layer=Layer.NETWORK, severity=Severity.MEDIUM, paper_ref="Fig. 3",
       remediation="move low-criticality ECUs to their own segment, or place a "
                   "filtering boundary between them and safety-critical ECUs")
def check_mixed_criticality_segment(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.zonal is None:
        return
    for zone in target.zonal.zones.values():
        by_medium: dict[str, list] = {}
        for endpoint in zone.endpoints:
            by_medium.setdefault(endpoint.attachment, []).append(endpoint)
        for medium, endpoints in sorted(by_medium.items()):
            highest = max(endpoints, key=lambda e: e.criticality)
            lowest = min(endpoints, key=lambda e: e.criticality)
            if highest.criticality >= 5 and lowest.criticality <= 2:
                yield (f"{zone.name}:{medium}",
                       f"criticality-{highest.criticality} {highest.name!r} shares "
                       f"the {medium} segment with criticality-"
                       f"{lowest.criticality} {lowest.name!r}")


# --------------------------------------------------------------------------
# DAT: cloud/data-layer configuration (§V, Fig. 8)
# --------------------------------------------------------------------------

@_rule("DAT001", "debug endpoint enabled in deployment",
       layer=Layer.DATA, severity=Severity.CRITICAL, paper_ref="Fig. 8 / §V-A",
       remediation="disable debug/actuator features in production builds "
                   "(the CARIAD heap-dump lesson)")
def check_debug_endpoints(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for service in target.cloud_services:
        for endpoint in service.active_endpoints():
            if endpoint.debug:
                auth = "unauthenticated " if not endpoint.auth_required else ""
                yield (f"{service.name}:{endpoint.path}",
                       f"{auth}debug endpoint active "
                       f"(feature {endpoint.feature!r})")


@_rule("DAT002", "unauthenticated non-debug endpoint active",
       layer=Layer.DATA, severity=Severity.MEDIUM, paper_ref="§V-A",
       remediation="require authentication on every endpoint; if one must stay "
                   "open (health probes), baseline it explicitly")
def check_unauthenticated_endpoints(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for service in target.cloud_services:
        for endpoint in service.active_endpoints():
            if not endpoint.auth_required and not endpoint.debug:
                yield (f"{service.name}:{endpoint.path}",
                       "endpoint answers without credentials")


@_rule("DAT003", "long-lived secret resident in process memory",
       layer=Layer.DATA, severity=Severity.HIGH, paper_ref="Fig. 8 / §V-B",
       remediation="hold keys in an HSM/KMS and fetch per-operation; anything "
                   "in the heap ends up in a heap dump")
def check_secrets_in_memory(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for service in target.cloud_services:
        for secret in sorted(service.secrets.values(), key=lambda s: s.key_id):
            if secret.in_process_memory:
                yield (f"{service.name}:{secret.key_id}",
                       f"secret with scopes {sorted(secret.scopes)} is "
                       "recoverable from a memory dump")


@_rule("DAT004", "over-scoped cloud credential",
       layer=Layer.DATA, severity=Severity.HIGH, paper_ref="§V-B",
       remediation="apply least privilege: no deployed key should hold 'admin' "
                   "or be able to mint broader access ('iam:mint')")
def check_overscoped_keys(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for service in target.cloud_services:
        for secret in sorted(service.secrets.values(), key=lambda s: s.key_id):
            broad = sorted({"admin", "iam:mint"} & set(secret.scopes))
            if broad:
                yield (f"{service.name}:{secret.key_id}",
                       f"credential carries escalation scope(s) {broad}")


@_rule("DAT005", "no enumeration rate-limit deployed",
       layer=Layer.DATA, severity=Severity.MEDIUM, paper_ref="Fig. 8",
       remediation="deploy the 'rate-limit-enumeration' mitigation so "
                   "gobuster-style path probing is throttled")
def check_rate_limit(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if not target.cloud_services:
        return
    if "rate-limit-enumeration" not in target.mitigations:
        for service in target.cloud_services:
            yield (service.name, "unauthenticated path probing is unthrottled")


@_rule("DAT006", "telemetry records stored in plaintext",
       layer=Layer.DATA, severity=Severity.HIGH, paper_ref="§V-B",
       remediation="encrypt records at rest per user so bulk reads yield "
                   "ciphertext only")
def check_plaintext_records(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for service in target.cloud_services:
        for bucket in sorted(service.buckets.values(), key=lambda b: b.name):
            plaintext = sum(1 for r in bucket.records if not r.get("encrypted"))
            if plaintext:
                yield (f"{service.name}:{bucket.name}",
                       f"{plaintext} record(s) readable in plaintext on "
                       "bucket access")


@_rule("DAT007", "full kill chain viable against deployed configuration",
       layer=Layer.DATA, severity=Severity.CRITICAL, paper_ref="Fig. 8",
       remediation="deploy at least one mitigation per chain stage; every "
                   "single Fig. 8 mitigation breaks the chain somewhere")
def check_kill_chain(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    from repro.datalayer.killchain import MITIGATIONS, KillChain, cariad_stages

    mitigations = target.mitigations & MITIGATIONS.keys()
    for service in target.cloud_services:
        chain = KillChain(cariad_stages())
        # The chain execution mutates service state (access logs, minted
        # keys); lint must stay side-effect free, so run it on a copy.
        results = chain.run(copy.deepcopy(service), mitigations=mitigations)
        depth = chain.depth_reached(results)
        if depth == len(chain.stages):
            yield (service.name,
                   f"all {depth} kill-chain stages succeed statically against "
                   "this configuration")


# --------------------------------------------------------------------------
# SSI: identity & credential configuration (§IV, Fig. 7)
# --------------------------------------------------------------------------

@_rule("SSI001", "expired verifiable credential in use",
       layer=Layer.SOFTWARE_PLATFORM, severity=Severity.MEDIUM, paper_ref="§IV",
       remediation="re-issue the credential; verifiers must reject expired "
                   "validity windows")
def check_expired_credentials(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for credential in target.credentials:
        if credential.expires_at < target.now:
            yield (credential.credential_id,
                   f"{credential.credential_type} expired at "
                   f"{credential.expires_at:.0f} (now {target.now:.0f})")


@_rule("SSI002", "self-issued credential (issuer == subject)",
       layer=Layer.SOFTWARE_PLATFORM, severity=Severity.HIGH, paper_ref="§IV",
       remediation="credentials must be attested by an independent trust "
                   "anchor, not by their own subject")
def check_self_issued(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for credential in target.credentials:
        if credential.issuer == credential.subject:
            yield (credential.credential_id,
                   f"{credential.credential_type} is self-attested by "
                   f"{credential.issuer}")


@_rule("SSI003", "credential issuer unresolvable in the registry",
       layer=Layer.SOFTWARE_PLATFORM, severity=Severity.HIGH, paper_ref="§IV",
       remediation="register the issuer's DID document before accepting its "
                   "credentials; unresolvable issuers cannot be verified")
def check_unresolvable_issuer(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.registry is None:
        return
    for credential in target.credentials:
        try:
            target.registry.resolve(credential.issuer)
        except KeyError:
            yield (credential.credential_id,
                   f"issuer {credential.issuer} has no DID document")


@_rule("SSI004", "revoked credential still provisioned",
       layer=Layer.SOFTWARE_PLATFORM, severity=Severity.MEDIUM, paper_ref="§IV",
       remediation="purge revoked credentials from wallets/configuration; "
                   "offline verifiers will still accept them")
def check_revoked_credentials(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.registry is None:
        return
    for credential in target.credentials:
        if target.registry.is_revoked(credential.credential_id):
            yield (credential.credential_id,
                   f"{credential.credential_type} was revoked but is still "
                   "deployed")


@_rule("SSI005", "verifiable data registry hash chain broken",
       layer=Layer.SOFTWARE_PLATFORM, severity=Severity.CRITICAL, paper_ref="§IV",
       remediation="the registry's append-only guarantee is violated; rebuild "
                   "from a trusted snapshot and investigate")
def check_registry_chain(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.registry is None:
        return
    if not target.registry.verify_chain():
        yield ("registry", "ledger hash chain does not verify end to end")


# --------------------------------------------------------------------------
# PHY: physical-layer configuration (§II)
# --------------------------------------------------------------------------

@_rule("PHY001", "PKES relies on relay-vulnerable proximity check",
       layer=Layer.PHYSICAL, severity=Severity.HIGH, paper_ref="§II-A",
       remediation="switch to UWB time-of-flight ranging (uwb-hrp/uwb-lrp); a "
                   "relay can only ADD distance to a ToF measurement")
def check_pkes_policy(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for index, system in enumerate(target.pkes_systems):
        if system.policy == "lf-rssi":
            yield (f"pkes[{index}]",
                   f"policy 'lf-rssi' with unlock range "
                   f"{system.unlock_range_m} m is defeated by signal relaying")


@_rule("PHY002", "HRP receiver accepts peaks without integrity check",
       layer=Layer.PHYSICAL, severity=Severity.MEDIUM, paper_ref="§II-A [4]",
       remediation="enable the normalized-correlation first-path validation; "
                   "naive correlation accepts ghost peaks that shorten distance")
def check_hrp_integrity(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    for index, receiver in enumerate(target.hrp_receivers):
        if not receiver.integrity_check:
            yield (f"hrp-receiver[{index}]",
                   "integrity_check=False: ghost-peak distance reduction is "
                   "accepted")


# --------------------------------------------------------------------------
# SOS: system-of-systems configuration (§VI, Fig. 9)
# --------------------------------------------------------------------------

@_rule("SOS001", "third-party system interface not secured",
       layer=Layer.SYSTEM_OF_SYSTEMS, severity=Severity.HIGH, paper_ref="§VI-B",
       remediation="authenticate third-party integrations; they are the SoS "
                   "supply-chain boundary")
def check_third_party_interfaces(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.sos is None:
        return
    for interface in target.sos.interfaces:
        if interface.third_party and not interface.secured:
            yield (f"{interface.source}->{interface.target}",
                   f"third-party {interface.kind!r} interface has no "
                   "authentication")


@_rule("SOS002", "real-time system interface not secured",
       layer=Layer.SYSTEM_OF_SYSTEMS, severity=Severity.MEDIUM, paper_ref="§VI-B",
       remediation="real-time links are DoS/spoof-critical; authenticate them "
                   "and monitor their liveness")
def check_realtime_interfaces(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.sos is None:
        return
    for interface in target.sos.interfaces:
        if interface.realtime and not interface.secured:
            yield (f"{interface.source}->{interface.target}",
                   f"real-time {interface.kind!r} interface has no "
                   "authentication")


@_rule("SOS003", "safety-critical system without an assigned stakeholder",
       layer=Layer.SYSTEM_OF_SYSTEMS, severity=Severity.LOW, paper_ref="§VI-C",
       remediation="assign responsibility for every safety-critical system; "
                   "unowned systems are unpatched systems")
def check_missing_stakeholder(target: AnalysisTarget) -> Iterator[tuple[str, str]]:
    if target.sos is None:
        return
    for system in target.sos.root.walk():
        if system.safety_critical and not system.stakeholder:
            yield (system.name, "no stakeholder/operator recorded")


# --------------------------------------------------------------------------
# FLOW: whole-system taint/reachability rules (repro.flow, §V-C / §VIII)
# --------------------------------------------------------------------------

def full_catalog() -> list[Rule]:
    """Every rule: this module's CATALOG plus the FLOW and RT families.

    The FLOW rules live in :mod:`repro.flow.rules` (they need the whole
    taint analyzer) and the RT rules in :mod:`repro.redteam.rules`
    (they need the whole campaign planner); importing them lazily here
    — instead of at module import — keeps ``repro.lint``,
    ``repro.flow``, and ``repro.redteam`` free of a circular import in
    any load order.  :class:`~repro.lint.engine.Linter` defaults to
    this combined catalog.
    """
    from repro.flow.rules import FLOW_RULES
    from repro.redteam.rules import RT_RULES

    return CATALOG + FLOW_RULES + RT_RULES
