"""The unified adapter every lint rule sees (one object, all layers).

A configured autonomous system is scattered across many objects: a
:class:`~repro.core.entities.SystemModel`, SECOC profiles, MACsec key
lifecycle managers, CANsec zones, gateway filter tables, zonal
topologies, cloud services with their kill-chain mitigations, and the
SSI registry with its credentials.  :class:`AnalysisTarget` collects all
of them so a rule from *any* layer can correlate across layers — the
precondition for catching the paper's §VIII cross-layer
misconfigurations (e.g. a gateway that fails to segment a
safety-critical ECU from an exposed telematics unit).

Everything is optional: a target holding only a ``SystemModel`` is
linted by the architecture rules and skipped by the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.entities import SystemModel

if TYPE_CHECKING:  # pragma: no cover - hints only; keeps import time low
    from repro.datalayer.cloud import CloudService
    from repro.ivn.cansec import CansecZone
    from repro.ivn.gateway import GatewayFilter
    from repro.ivn.keymgmt import KeyLifecycleManager
    from repro.ivn.secoc import SecOcProfile
    from repro.ivn.topology import ZonalArchitecture
    from repro.phy.hrp import HrpReceiver
    from repro.phy.pkes import PkesSystem
    from repro.sos.model import SosModel
    from repro.ssi.registry import VerifiableDataRegistry
    from repro.ssi.vc import VerifiableCredential

__all__ = ["GatewayBinding", "V2xChannelBinding", "AnalysisTarget"]


@dataclass(frozen=True)
class V2xChannelBinding:
    """A V2X/collaboration radio channel attached to one component.

    The collaboration layer (§VII) enters the vehicle through a radio:
    a V2V sidelink on the ADAS camera, an RSU link on the telematics
    unit.  For whole-system dataflow analysis the channel is an
    *adjacent-attacker* entry point unless its messages are
    authenticated (signed with verifiable credentials / 1609.2-style
    certificates).
    """

    name: str
    component: str
    authenticated: bool = False


@dataclass
class GatewayBinding:
    """A gateway filter plus the components that sit behind each port.

    The filter table alone names only ports; rules need to know *which
    components* live behind a port to decide whether a forwarding rule
    bridges an exposed segment into a safety-critical one.
    """

    gateway: "GatewayFilter"
    port_components: dict[str, set[str]] = field(default_factory=dict)

    def attach(self, port: str, *component_names: str) -> None:
        self.port_components.setdefault(port, set()).update(component_names)

    def components_on(self, port: str) -> set[str]:
        return set(self.port_components.get(port, set()))


@dataclass
class AnalysisTarget:
    """Everything the linter can statically inspect, in one object."""

    name: str
    model: SystemModel | None = None
    #: SECOC profiles in use, keyed by a human-readable label (e.g. the
    #: channel or PDU group the profile protects).
    secoc_profiles: dict[str, "SecOcProfile"] = field(default_factory=dict)
    #: symmetric key label -> the IVN domains (zones/segments) using it.
    key_domains: dict[str, set[str]] = field(default_factory=dict)
    gateways: list[GatewayBinding] = field(default_factory=list)
    lifecycle_managers: list["KeyLifecycleManager"] = field(default_factory=list)
    cansec_zones: dict[str, "CansecZone"] = field(default_factory=dict)
    zonal: "ZonalArchitecture | None" = None
    cloud_services: list["CloudService"] = field(default_factory=list)
    #: deployed kill-chain mitigations (see repro.datalayer.MITIGATIONS).
    mitigations: set[str] = field(default_factory=set)
    registry: "VerifiableDataRegistry | None" = None
    credentials: list["VerifiableCredential"] = field(default_factory=list)
    pkes_systems: list["PkesSystem"] = field(default_factory=list)
    hrp_receivers: list["HrpReceiver"] = field(default_factory=list)
    sos: "SosModel | None" = None
    #: V2X/collaboration channels (flow-analysis entry points, §VII).
    v2x_channels: list[V2xChannelBinding] = field(default_factory=list)
    #: reference time (epoch seconds) for validity-window checks.
    now: float = 0.0

    # -- construction helpers -------------------------------------------------

    def assign_key(self, key_label: str, *domains: str) -> None:
        """Record that ``key_label`` is provisioned into ``domains``."""
        self.key_domains.setdefault(key_label, set()).update(domains)

    def add_gateway(self, binding: GatewayBinding) -> GatewayBinding:
        self.gateways.append(binding)
        return binding

    def add_cloud_service(self, service: "CloudService") -> "CloudService":
        self.cloud_services.append(service)
        return service

    def add_credential(self, credential: "VerifiableCredential") -> None:
        self.credentials.append(credential)

    def add_v2x_channel(self, channel: V2xChannelBinding) -> V2xChannelBinding:
        self.v2x_channels.append(channel)
        return channel

    @classmethod
    def from_model(cls, model: SystemModel) -> "AnalysisTarget":
        """Minimal target: architecture rules only."""
        return cls(name=model.name, model=model)
