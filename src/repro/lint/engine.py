"""Rule engine for the static security-configuration analyzer (§VIII).

The paper's closing argument is that autonomous-system security must be
*holistic and multi-layered*: a misconfiguration at one layer (an
unauthenticated CAN segment, a truncated SECOC MAC, an over-scoped cloud
key) silently undermines defenses at every other layer.  The linter
makes that argument executable — it inspects a fully-configured system
**without running any simulation** and reports every layer's
misconfigurations in one pass.

* :class:`Rule` — one check with a stable id (``SEC001`` …), the Fig. 1
  layer it belongs to, a severity, the paper section it derives from,
  and remediation text;
* :class:`Finding` — one violation, with a stable fingerprint used by
  the suppression baseline;
* :class:`Linter` — runs an enabled subset of the rule catalog over an
  :class:`~repro.lint.target.AnalysisTarget` and produces a
  :class:`~repro.lint.report.Report`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.layers import Layer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.lint.baseline import Baseline
    from repro.lint.report import Report
    from repro.lint.target import AnalysisTarget

__all__ = ["Severity", "Rule", "Finding", "Linter"]


class Severity(IntEnum):
    """Finding severity, ordered so comparisons read naturally."""

    INFO = 10
    LOW = 20
    MEDIUM = 30
    HIGH = 40
    CRITICAL = 50

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            valid = ", ".join(s.name.lower() for s in cls)
            raise ValueError(f"unknown severity {name!r} (expected one of {valid})") from None


@dataclass(frozen=True)
class Rule:
    """One static check.

    ``check`` receives the :class:`AnalysisTarget` and returns
    ``(subject, message)`` pairs — one per violation; the engine wraps
    them into :class:`Finding` objects carrying the rule's metadata.
    """

    rule_id: str
    title: str
    layer: Layer
    severity: Severity
    paper_ref: str
    remediation: str
    check: Callable[["AnalysisTarget"], Iterable[tuple[str, str]]]

    def __post_init__(self) -> None:
        if not self.rule_id or not self.rule_id[:1].isalpha():
            raise ValueError(f"rule id must start with a letter: {self.rule_id!r}")

    def run(self, target: "AnalysisTarget") -> list["Finding"]:
        return [
            Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                layer=self.layer,
                subject=subject,
                message=message,
                paper_ref=self.paper_ref,
                remediation=self.remediation,
            )
            for subject, message in self.check(target)
        ]


@dataclass(frozen=True)
class Finding:
    """One violation of one rule against one subject."""

    rule_id: str
    severity: Severity
    layer: Layer
    subject: str
    message: str
    paper_ref: str
    remediation: str

    @property
    def fingerprint(self) -> str:
        """Stable id for baselining: rule + subject, not the message text.

        Message wording may improve between versions; a baseline entry
        must keep suppressing the same logical finding regardless.
        """
        material = f"{self.rule_id}|{self.subject}"
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "ruleId": self.rule_id,
            "severity": self.severity.name.lower(),
            "layer": self.layer.name.lower(),
            "subject": self.subject,
            "message": self.message,
            "paperRef": self.paper_ref,
            "remediation": self.remediation,
            "fingerprint": self.fingerprint,
        }


class Linter:
    """Runs the rule catalog (or a subset) over an analysis target."""

    def __init__(self, rules: Iterable[Rule] | None = None) -> None:
        if rules is None:
            from repro.lint.rules import full_catalog

            rules = full_catalog()
        self._rules: dict[str, Rule] = {}
        for rule in rules:
            if rule.rule_id in self._rules:
                raise ValueError(f"duplicate rule id {rule.rule_id!r}")
            self._rules[rule.rule_id] = rule
        self._disabled: set[str] = set()

    # -- rule management -----------------------------------------------------

    @property
    def rules(self) -> list[Rule]:
        return list(self._rules.values())

    def rule(self, rule_id: str) -> Rule:
        return self._rules[rule_id]

    def enabled_rules(self) -> list[Rule]:
        return [r for r in self._rules.values() if r.rule_id not in self._disabled]

    def disable(self, *rule_ids: str) -> None:
        for rule_id in rule_ids:
            if rule_id not in self._rules:
                raise KeyError(f"unknown rule {rule_id!r}")
            self._disabled.add(rule_id)

    def enable(self, *rule_ids: str) -> None:
        for rule_id in rule_ids:
            if rule_id not in self._rules:
                raise KeyError(f"unknown rule {rule_id!r}")
            self._disabled.discard(rule_id)

    # -- execution -----------------------------------------------------------

    def run(self, target: "AnalysisTarget",
            baseline: "Baseline | None" = None) -> "Report":
        """Run every enabled rule; baseline entries move findings to
        ``report.suppressed`` instead of dropping them silently."""
        from repro.lint.report import Report

        findings: list[Finding] = []
        suppressed: list[Finding] = []
        rules_run = []
        for rule in self.enabled_rules():
            rules_run.append(rule)
            for finding in rule.run(target):
                if baseline is not None and baseline.suppresses(finding):
                    suppressed.append(finding)
                else:
                    findings.append(finding)
        findings.sort(key=lambda f: (-f.severity, f.rule_id, f.subject))
        suppressed.sort(key=lambda f: (-f.severity, f.rule_id, f.subject))
        return Report(
            target_name=target.name,
            findings=tuple(findings),
            suppressed=tuple(suppressed),
            rules_run=tuple(r.rule_id for r in rules_run),
        )
