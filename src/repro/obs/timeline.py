"""Cross-layer attack timelines: many simulators, one clock.

Each simulator runs its own clock (the event kernel starts at ``t=0``;
stepwise engines count steps).  A :class:`Timeline` merges several event
streams onto one reference clock by applying a per-stream offset — e.g.
"the kill chain ran first, the CAN pivot started 2 s in" — and renders
the merged sequence as the paper's cross-layer attack narrative: which
layer saw what, in causal order.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable

from repro.core.layers import Layer
from repro.obs.events import EventLog, SimEvent

__all__ = ["Timeline", "merge_events", "render_timeline"]


def merge_events(*streams: Iterable[SimEvent],
                 offsets: Iterable[float] | None = None) -> list[SimEvent]:
    """Merge event streams onto one clock, sorted by
    ``(shifted t, stream index, seq)``.

    ``offsets[i]`` is added to every timestamp of ``streams[i]``; the
    default is no shift.  Events are re-stamped (``t`` shifted) but keep
    their original ``seq``.  ``seq`` values only order events *within*
    one stream — each log numbers from 0 — so cross-stream timestamp
    ties are broken by stream position first (earlier ``add()`` wins),
    and ``seq`` only orders events of the same stream.
    """
    streams_list = [list(stream) for stream in streams]
    shift = list(offsets) if offsets is not None else [0.0] * len(streams_list)
    if len(shift) != len(streams_list):
        raise ValueError("offsets must match the number of streams")
    decorated: list[tuple[float, int, int, SimEvent]] = []
    for index, (stream, offset) in enumerate(zip(streams_list, shift)):
        for event in stream:
            shifted = (event if offset == 0.0
                       else replace(event, t=event.t + offset))
            decorated.append((shifted.t, index, event.seq, shifted))
    decorated.sort(key=lambda item: item[:3])
    return [item[3] for item in decorated]


def render_timeline(events: list[SimEvent], *, limit: int | None = None) -> str:
    """Human-readable cross-layer timeline.

    One line per event — timestamp, layer, kind, source, message — plus
    a truncation note when ``limit`` cuts the listing.
    """
    if not events:
        return "(no events recorded)"
    shown = events if limit is None else events[:limit]
    width_layer = max(len(e.layer.name) for e in shown)
    width_kind = max(len(e.kind.value) for e in shown)
    width_source = max(len(e.source) for e in shown)
    lines = []
    for event in shown:
        lines.append(
            f"t={event.t:12.6f}  [{event.layer.name.lower():{width_layer}s}] "
            f"{event.kind.value:{width_kind}s}  "
            f"{event.source:{width_source}s}  {event.message}")
    if limit is not None and len(events) > limit:
        lines.append(f"... {len(events) - limit} more event(s) truncated")
    return "\n".join(lines)


class Timeline:
    """An accumulating cross-layer timeline.

    Usage::

        timeline = Timeline()
        timeline.add(killchain_log)                 # data layer, t=0 base
        timeline.add(bus_log, offset_s=2.0)         # pivot started 2 s in
        print(timeline.render())
    """

    def __init__(self) -> None:
        self._streams: list[list[SimEvent]] = []
        self._offsets: list[float] = []
        self._listeners: list[Callable[[SimEvent], None]] = []

    def add(self, events: EventLog | Iterable[SimEvent], *,
            offset_s: float = 0.0) -> "Timeline":
        self._streams.append(list(events))
        self._offsets.append(offset_s)
        return self

    def subscribe(self, listener: Callable[[SimEvent], None]) -> Callable[[], None]:
        """Push every event arriving via :meth:`follow` to ``listener``
        (re-stamped onto the timeline clock).  Returns an unsubscribe
        callable.  Listeners are notified in subscription order."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def follow(self, log: EventLog, *, offset_s: float = 0.0) -> Callable[[], None]:
        """Attach a *live* stream: existing events are copied in and every
        future :meth:`EventLog.emit`/``append`` lands on this timeline as
        it happens, pushed to :meth:`subscribe` listeners with ``offset_s``
        applied.  Returns a detach callable (the buffered events stay)."""
        stream = list(log)
        self._streams.append(stream)
        self._offsets.append(offset_s)

        def on_event(event: SimEvent) -> None:
            stream.append(event)
            if self._listeners:
                shifted = (event if offset_s == 0.0
                           else replace(event, t=event.t + offset_s))
                for listener in list(self._listeners):
                    listener(shifted)

        return log.subscribe(on_event)

    def merged(self) -> list[SimEvent]:
        return merge_events(*self._streams, offsets=self._offsets)

    def layers(self) -> set[Layer]:
        return {event.layer for stream in self._streams for event in stream}

    def span_s(self) -> float:
        """Duration between the first and last merged event."""
        merged = self.merged()
        if not merged:
            return 0.0
        return merged[-1].t - merged[0].t

    def render(self, *, limit: int | None = None) -> str:
        return render_timeline(self.merged(), limit=limit)
