"""Trace reports: span tree / metrics table text and a validated JSON doc.

The JSON schema (version ``1.0``) mirrors ``repro.lint.report``'s
SARIF-lite conventions — small, flat, stable::

    {
      "version": "1.0",
      "tool": {"name": "repro-obs", "version": "<package version>"},
      "scenario": "<scenario name>",
      "spans": [
        {"name", "wallMs", "cpuMs", "status", "tags",
         "children": [<same shape>], "error"?}
      ],
      "events": [
        {"seq", "t", "kind", "layer", "source", "message", "fields"}
      ],
      "metrics": {
        "counters": {"<name>": <int>},
        "gauges": {"<name>": <number>},
        "histograms": {"<name>": {"count", "min", "max", "mean",
                                  "p50", "p95", "p99"}}
      },
      "result": {"<key>": <scalar>},
      "summary": {"spans": <int>, "events": <int>, "layers": [<str>],
                  "byKind": {"<kind>": <int>}, "droppedEvents": <int>}
    }

:func:`validate_trace_dict` checks a parsed document against that
schema and raises :class:`SchemaError` on any violation — the CI gate
and the round-trip tests both call it.
"""

from __future__ import annotations

from repro.core.layers import Layer
from repro.obs.events import EventKind, SimEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import OBS, Instrumentation
from repro.obs.timeline import render_timeline
from repro.obs.trace import Span

__all__ = ["TraceReport", "SchemaError", "validate_trace_dict",
           "validate_metrics_dict", "render_span_tree",
           "render_metrics_table"]

SCHEMA_VERSION = "1.0"
TOOL_NAME = "repro-obs"


class SchemaError(ValueError):
    """A trace JSON document does not match the documented schema."""


# --------------------------------------------------------------------------
# rendering
# --------------------------------------------------------------------------

def _render_span(span: Span, indent: int, lines: list[str]) -> None:
    tags = "".join(f" {k}={v}" for k, v in sorted(span.tags.items()))
    marker = "" if span.status == "ok" else f"  !! {span.status}: {span.error}"
    lines.append(f"{'  ' * indent}{span.name:{max(1, 40 - 2 * indent)}s} "
                 f"wall={span.wall_s * 1e3:9.3f}ms cpu={span.cpu_s * 1e3:9.3f}ms"
                 f"{tags}{marker}")
    for child in span.children:
        _render_span(child, indent + 1, lines)


def render_span_tree(roots: list[Span]) -> str:
    """Indented span tree with wall/CPU timings."""
    if not roots:
        return "(no spans recorded)"
    lines: list[str] = []
    for root in roots:
        _render_span(root, 0, lines)
    return "\n".join(lines)


def render_metrics_table(registry: MetricsRegistry) -> str:
    """Counters, gauges, and histogram summaries as an aligned table."""
    doc = registry.to_json_dict()
    rows: list[tuple[str, str, str]] = []
    for name, value in doc["counters"].items():
        rows.append((name, "counter", str(value)))
    for name, value in doc["gauges"].items():
        rows.append((name, "gauge", f"{value:g}"))
    for name, summary in doc["histograms"].items():
        rows.append((name, "histogram",
                     f"n={summary['count']} mean={summary['mean']:g} "
                     f"p50={summary['p50']:g} p95={summary['p95']:g} "
                     f"max={summary['max']:g}"))
    if not rows:
        return "(no metrics recorded)"
    width_name = max(len(r[0]) for r in rows)
    lines = [f"{'metric'.ljust(width_name)}  {'type':9s} value",
             f"{'-' * width_name}  {'-' * 9} {'-' * 40}"]
    for name, kind, value in sorted(rows):
        lines.append(f"{name.ljust(width_name)}  {kind:9s} {value}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# the report object
# --------------------------------------------------------------------------

class TraceReport:
    """Everything one instrumented run produced, ready to render/export."""

    def __init__(self, scenario: str, *, spans: list[Span],
                 events: list[SimEvent], metrics: MetricsRegistry,
                 result: dict | None = None, dropped_events: int = 0) -> None:
        self.scenario = scenario
        self.spans = list(spans)
        self.events = list(events)
        self.metrics = metrics
        self.result = dict(result or {})
        self.dropped_events = dropped_events

    @classmethod
    def from_instrumentation(cls, scenario: str,
                             obs: Instrumentation | None = None,
                             result: dict | None = None) -> "TraceReport":
        """Snapshot the (default: process-wide) instrumentation state."""
        obs = obs or OBS
        return cls(scenario, spans=list(obs.tracer.roots),
                   events=list(obs.events), metrics=obs.metrics,
                   result=result, dropped_events=obs.events.dropped)

    def layers(self) -> set[Layer]:
        return {event.layer for event in self.events}

    def span_count(self) -> int:
        return sum(span.span_count() for span in self.spans)

    def to_table(self) -> str:
        """Human-readable report: span tree + event timeline + summary."""
        by_kind = self._by_kind()
        kinds = ", ".join(f"{count} {kind}" for kind, count
                          in sorted(by_kind.items()))
        layer_names = ", ".join(sorted(layer.name.lower()
                                       for layer in self.layers()))
        sections = [
            f"=== trace: {self.scenario} ===",
            render_span_tree(self.spans),
            "",
            render_timeline(self.events, limit=40),
            "",
            f"{self.scenario}: {self.span_count()} span(s), "
            f"{len(self.events)} event(s) ({kinds or 'none'}) "
            f"across layers [{layer_names or 'none'}]",
        ]
        if self.dropped_events:
            sections.append(f"warning: ring buffer dropped "
                            f"{self.dropped_events} event(s) (saturated)")
        if self.result:
            sections.append("result: " + ", ".join(
                f"{key}={value}" for key, value in sorted(self.result.items())))
        return "\n".join(sections)

    def _by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    def to_json_dict(self) -> dict:
        """The trace document (see module docstring for the schema)."""
        from repro import __version__

        return {
            "version": SCHEMA_VERSION,
            "tool": {"name": TOOL_NAME, "version": __version__},
            "scenario": self.scenario,
            "spans": [span.to_dict() for span in self.spans],
            "events": [event.to_dict() for event in self.events],
            "metrics": self.metrics.to_json_dict(),
            "result": dict(self.result),
            "summary": {
                "spans": self.span_count(),
                "events": len(self.events),
                "layers": sorted(layer.name.lower() for layer in self.layers()),
                "byKind": self._by_kind(),
                "droppedEvents": self.dropped_events,
            },
        }


# --------------------------------------------------------------------------
# schema validation
# --------------------------------------------------------------------------

_KIND_VALUES = {kind.value for kind in EventKind}
_LAYER_NAMES = {layer.name.lower() for layer in Layer}
_EVENT_KEYS = {"seq", "t", "kind", "layer", "source", "message", "fields"}
_HIST_KEYS = {"count", "min", "max", "mean", "p50", "p95", "p99"}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_scalar(value: object) -> bool:
    return isinstance(value, (str, int, float, bool))


def _validate_span(entry: dict, where: str) -> int:
    """Validate one span node; returns the subtree's span count."""
    _require(isinstance(entry, dict), f"{where}: span must be an object")
    required = {"name", "wallMs", "cpuMs", "status", "tags", "children"}
    keys = set(entry)
    _require(required <= keys <= required | {"error"},
             f"{where}: keys {sorted(keys)} != {sorted(required)} (+error?)")
    _require(isinstance(entry["name"], str) and entry["name"],
             f"{where}: name must be a non-empty string")
    for key in ("wallMs", "cpuMs"):
        _require(_is_number(entry[key]) and entry[key] >= 0,
                 f"{where}: {key} must be a non-negative number")
    _require(entry["status"] in ("ok", "error"),
             f"{where}: bad status {entry['status']!r}")
    _require(("error" in entry) == (entry["status"] == "error"),
             f"{where}: error text iff status == 'error'")
    tags = entry["tags"]
    _require(isinstance(tags, dict), f"{where}: tags must be an object")
    for key, value in tags.items():
        _require(isinstance(key, str) and _is_scalar(value),
                 f"{where}: tag {key!r} must map a string to a scalar")
    _require(isinstance(entry["children"], list),
             f"{where}: children must be a list")
    count = 1
    for index, child in enumerate(entry["children"]):
        count += _validate_span(child, f"{where}.children[{index}]")
    return count


def _validate_event(entry: dict, where: str) -> None:
    _require(isinstance(entry, dict), f"{where}: event must be an object")
    _require(set(entry) == _EVENT_KEYS,
             f"{where}: keys {sorted(entry)} != {sorted(_EVENT_KEYS)}")
    _require(isinstance(entry["seq"], int) and not isinstance(entry["seq"], bool)
             and entry["seq"] >= 0, f"{where}: seq must be a non-negative int")
    _require(_is_number(entry["t"]), f"{where}: t must be a number")
    _require(entry["kind"] in _KIND_VALUES, f"{where}: bad kind {entry['kind']!r}")
    _require(entry["layer"] in _LAYER_NAMES,
             f"{where}: bad layer {entry['layer']!r}")
    for key in ("source", "message"):
        _require(isinstance(entry[key], str), f"{where}: {key} must be a string")
    _require(isinstance(entry["fields"], dict),
             f"{where}: fields must be an object")
    for key, value in entry["fields"].items():
        _require(isinstance(key, str) and _is_scalar(value),
                 f"{where}: field {key!r} must map a string to a scalar")


def _validate_metrics(metrics: dict) -> None:
    _require(isinstance(metrics, dict)
             and set(metrics) == {"counters", "gauges", "histograms"},
             "metrics must be {counters, gauges, histograms}")
    for name, value in metrics["counters"].items():
        _require(isinstance(name, str) and isinstance(value, int)
                 and not isinstance(value, bool) and value >= 0,
                 f"counters[{name!r}] must be a non-negative int")
    for name, value in metrics["gauges"].items():
        _require(isinstance(name, str) and _is_number(value),
                 f"gauges[{name!r}] must be a number")
    for name, summary in metrics["histograms"].items():
        where = f"histograms[{name!r}]"
        _require(isinstance(summary, dict) and set(summary) == _HIST_KEYS,
                 f"{where}: keys must be {sorted(_HIST_KEYS)}")
        for key in sorted(_HIST_KEYS):
            _require(_is_number(summary[key]), f"{where}.{key} must be a number")
        _require(isinstance(summary["count"], int) and summary["count"] >= 0,
                 f"{where}.count must be a non-negative int")
        if summary["count"]:
            _require(summary["min"] <= summary["p50"] <= summary["max"],
                     f"{where}: percentiles must lie within [min, max]")


def validate_metrics_dict(metrics: dict,
                          required_gauges: tuple[str, ...] = ()) -> None:
    """Raise :class:`SchemaError` unless ``metrics`` is a valid
    :meth:`~repro.obs.metrics.MetricsRegistry.to_json_dict` document.

    Standalone bench JSON files (``BENCH_OBS.json``, ``BENCH_KERNELS.json``
    …) are bare metrics blocks; this validates them — and, optionally,
    that every gauge named in ``required_gauges`` is present — without
    requiring the full trace-report envelope.
    """
    _validate_metrics(metrics)
    missing = [name for name in required_gauges
               if name not in metrics["gauges"]]
    _require(not missing, f"missing required gauges: {missing}")


def validate_trace_dict(document: dict) -> None:
    """Raise :class:`SchemaError` unless ``document`` matches the schema."""
    _require(isinstance(document, dict), "trace report must be an object")
    required = {"version", "tool", "scenario", "spans", "events", "metrics",
                "result", "summary"}
    _require(set(document) == required,
             f"top-level keys {sorted(document)} != {sorted(required)}")
    _require(document["version"] == SCHEMA_VERSION,
             f"unsupported schema version {document['version']!r}")
    tool = document["tool"]
    _require(isinstance(tool, dict) and set(tool) == {"name", "version"},
             "tool must be {name, version}")
    _require(tool["name"] == TOOL_NAME, f"unexpected tool name {tool['name']!r}")
    _require(isinstance(document["scenario"], str) and document["scenario"],
             "scenario must be a non-empty string")

    _require(isinstance(document["spans"], list), "spans must be a list")
    span_total = 0
    for index, span in enumerate(document["spans"]):
        span_total += _validate_span(span, f"spans[{index}]")

    _require(isinstance(document["events"], list), "events must be a list")
    seen_layers: set[str] = set()
    by_kind: dict[str, int] = {}
    for index, event in enumerate(document["events"]):
        _validate_event(event, f"events[{index}]")
        seen_layers.add(event["layer"])
        by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1

    _validate_metrics(document["metrics"])

    result = document["result"]
    _require(isinstance(result, dict), "result must be an object")
    for key, value in result.items():
        _require(isinstance(key, str) and _is_scalar(value),
                 f"result[{key!r}] must map a string to a scalar")

    summary = document["summary"]
    _require(isinstance(summary, dict)
             and set(summary) == {"spans", "events", "layers", "byKind",
                                  "droppedEvents"},
             "summary must be {spans, events, layers, byKind, droppedEvents}")
    _require(summary["spans"] == span_total,
             "summary.spans must equal the span-tree node count")
    _require(summary["events"] == len(document["events"]),
             "summary.events must equal len(events)")
    _require(summary["layers"] == sorted(seen_layers),
             "summary.layers must list the event layers, sorted")
    _require(summary["byKind"] == by_kind,
             "summary.byKind must count events by kind")
    _require(isinstance(summary["droppedEvents"], int)
             and not isinstance(summary["droppedEvents"], bool)
             and summary["droppedEvents"] >= 0,
             "summary.droppedEvents must be a non-negative int")
