"""Hierarchical spans with wall-clock and CPU timing.

A :class:`Span` measures one named unit of work; spans opened while
another is active nest under it, so one simulation run yields a tree —
``scenario → layer → operation`` — that the reporters render as the
profile the ROADMAP's perf work needs.  Spans are context managers and
exception-safe: an exception closes the span (marking it ``error``) and
propagates, leaving the tracer's stack consistent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Union

__all__ = ["Span", "Tracer", "NOOP_SPAN"]

TagValue = Union[str, int, float, bool]


@dataclass
class Span:
    """One timed unit of work in the span tree."""

    name: str
    tags: dict[str, TagValue] = field(default_factory=dict)
    start_wall_s: float = 0.0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    status: str = "ok"
    error: str | None = None
    children: list["Span"] = field(default_factory=list)
    _t0_wall: float = field(default=0.0, repr=False)
    _t0_cpu: float = field(default=0.0, repr=False)

    def set_tag(self, key: str, value: TagValue) -> None:
        self.tags[key] = value

    def span_count(self) -> int:
        """This span plus all descendants."""
        return 1 + sum(child.span_count() for child in self.children)

    def to_dict(self) -> dict:
        data: dict = {
            "name": self.name,
            "wallMs": self.wall_s * 1e3,
            "cpuMs": self.cpu_s * 1e3,
            "status": self.status,
            "tags": dict(self.tags),
            "children": [child.to_dict() for child in self.children],
        }
        if self.error is not None:
            data["error"] = self.error
        return data


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled.

    A single module-level instance keeps the disabled path allocation-free:
    ``with tracer.span(...)`` costs one method call and two no-op calls.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_tag(self, key: str, value: TagValue) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager binding a :class:`Span` to a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        tracer = self._tracer
        if tracer._stack:
            tracer._stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        tracer._stack.append(span)
        span.start_wall_s = time.perf_counter() - tracer.epoch_s
        span._t0_wall = time.perf_counter()
        span._t0_cpu = time.process_time()
        return span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        span = self._span
        span.wall_s = time.perf_counter() - span._t0_wall
        span.cpu_s = time.process_time() - span._t0_cpu
        if exc_type is not None:
            span.status = "error"
            span.error = repr(exc)
        stack = self._tracer._stack
        # Pop back to (and including) this span even if inner spans leaked
        # open — exception safety must leave the stack consistent.
        while stack:
            if stack.pop() is span:
                break
        return None  # never swallow the exception


class Tracer:
    """Produces the span tree for one instrumented run."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.epoch_s = time.perf_counter()

    def span(self, name: str, **tags: TagValue) -> _ActiveSpan:
        """Open a child of the innermost active span (or a new root)."""
        return _ActiveSpan(self, Span(name, tags=dict(tags)))

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def span_count(self) -> int:
        return sum(root.span_count() for root in self.roots)

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()
        self.epoch_s = time.perf_counter()
