"""Typed simulation events and the in-memory ring-buffer event log.

Every instrumented simulator reports what happened as a stream of
:class:`SimEvent` records — *frame sent*, *MAC rejected*, *ToA
estimate*, *attack step*, *IDS alert*, *trust update* — tagged with the
paper layer (:class:`repro.core.layers.Layer`) it occurred on and the
clock it occurred at.  The :class:`EventLog` keeps the most recent
``capacity`` events in a ring buffer (old events are dropped, never
reallocated), so always-on instrumentation has bounded memory, and
exports/imports the stream as JSONL for offline analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Callable, Iterable, Iterator, Union

from repro.core.layers import Layer

__all__ = ["EventKind", "SimEvent", "EventLog"]

#: Scalar payload values an event may carry (JSON-serialisable).
FieldValue = Union[str, int, float, bool]


class EventKind(str, Enum):
    """The vocabulary of simulation events the layers emit."""

    # network layer (repro.ivn)
    FRAME_SENT = "frame-sent"
    FRAME_DELIVERED = "frame-delivered"
    MAC_VERIFIED = "mac-verified"
    MAC_REJECTED = "mac-rejected"
    BUS_OFF = "bus-off"
    # physical layer (repro.phy)
    TOA_ESTIMATE = "toa-estimate"
    RANGING = "ranging"
    UNLOCK_ATTEMPT = "unlock-attempt"
    # data layer (repro.datalayer)
    ATTACK_STEP = "attack-step"
    # detection / response (repro.collab, repro.core)
    IDS_ALERT = "ids-alert"
    TRUST_UPDATE = "trust-update"
    DETECTION = "detection"
    RESPONSE_ACTION = "response-action"
    # experiment sweeps (repro.runner)
    EXPERIMENT_START = "experiment-start"
    EXPERIMENT_DONE = "experiment-done"
    # fault injection / resilience (repro.faults)
    FAULT_INJECTED = "fault-injected"
    BREAKER_STATE = "breaker-state"
    DEGRADATION_CHANGE = "degradation-change"
    # application telemetry (repro.cloud, repro.ssi)
    CLOUD_REQUEST = "cloud-request"
    DID_RESOLUTION = "did-resolution"
    # streaming detection (repro.sentinel)
    ALARM_TRANSITION = "alarm-transition"
    INCIDENT = "incident"
    # resumable campaigns (repro.campaign)
    SHARD_START = "shard-start"
    SHARD_DONE = "shard-done"
    CAMPAIGN_RESUMED = "campaign-resumed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_KIND_BY_VALUE = {kind.value: kind for kind in EventKind}
_LAYER_BY_NAME = {layer.name.lower(): layer for layer in Layer}


@dataclass(frozen=True)
class SimEvent:
    """One structured simulation event.

    Attributes:
        seq: monotonically increasing sequence number within one log
            (total order for events sharing a timestamp).
        t: event time — simulation-clock seconds for timed simulators,
            step index for stepwise engines (the emitting layer decides).
        kind: the event vocabulary entry.
        layer: the paper layer the event belongs to.
        source: the emitting component (bus name, stage name, member id).
        message: a short human-readable description.
        fields: scalar payload (distances, counters, verdicts).
    """

    seq: int
    t: float
    kind: EventKind
    layer: Layer
    source: str
    message: str
    fields: dict[str, FieldValue] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (stable key order)."""
        return {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind.value,
            "layer": self.layer.name.lower(),
            "source": self.source,
            "message": self.message,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimEvent":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad input."""
        try:
            kind = _KIND_BY_VALUE[data["kind"]]
            layer = _LAYER_BY_NAME[data["layer"]]
            seq, t = data["seq"], data["t"]
            source, message = data["source"], data["message"]
            fields = data.get("fields", {})
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed event record: {exc}") from exc
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise ValueError(f"event seq must be an int, got {seq!r}")
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            raise ValueError(f"event t must be a number, got {t!r}")
        if not isinstance(source, str) or not isinstance(message, str):
            raise ValueError("event source/message must be strings")
        if not isinstance(fields, dict):
            raise ValueError("event fields must be an object")
        for key, value in fields.items():
            if not isinstance(key, str) or not isinstance(value, (str, int, float, bool)):
                raise ValueError(f"event field {key!r} must map a string to a scalar")
        return cls(seq=seq, t=float(t), kind=kind, layer=layer,
                   source=source, message=message, fields=dict(fields))


class EventLog:
    """Bounded in-memory event store with JSONL import/export.

    The log never grows past ``capacity`` events: once full, appending
    drops the oldest entry (and counts it in :attr:`dropped`), so a
    long-running instrumented simulation keeps the *recent* history —
    the part an attack timeline needs — at O(capacity) memory.

    Streaming consumers register with :meth:`subscribe`; every stored
    event is pushed to each subscriber *after* it lands in the ring, in
    subscription order.  Subscribers survive :meth:`clear` (the data is
    wiped, the taps are not), so a detection engine attached once keeps
    seeing events across resets.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[SimEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0
        self._listeners: list[Callable[[SimEvent], None]] = []

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self._ring)

    def subscribe(self, listener: Callable[[SimEvent], None]) -> Callable[[], None]:
        """Push every future stored event to ``listener``.

        Returns an unsubscribe callable.  Listeners are notified in
        subscription order, after the event is in the ring; a listener
        emitting back into the same log therefore sees its own events
        too — consumers filter by :class:`EventKind` to avoid loops.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def _notify(self, event: SimEvent) -> None:
        for listener in list(self._listeners):
            listener(event)

    def emit(self, kind: EventKind, layer: Layer, source: str, message: str,
             *, t: float = 0.0, **fields: FieldValue) -> SimEvent:
        """Append one event and return it."""
        event = SimEvent(seq=self._seq, t=t, kind=kind, layer=layer,
                         source=source, message=message, fields=fields)
        self._seq += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        if self._listeners:
            self._notify(event)
        return event

    def append(self, event: SimEvent) -> None:
        """Append an already-built event (used by JSONL import/merge)."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self._seq = max(self._seq, event.seq + 1)
        if self._listeners:
            self._notify(event)

    def events(self, *, kind: EventKind | None = None,
               layer: Layer | None = None) -> list[SimEvent]:
        """Events in emission order, optionally filtered."""
        return [
            e for e in self._ring
            if (kind is None or e.kind is kind)
            and (layer is None or e.layer is layer)
        ]

    def layers(self) -> set[Layer]:
        """Distinct layers that produced at least one event."""
        return {e.layer for e in self._ring}

    def clear(self) -> None:
        self._ring.clear()
        self._seq = 0
        self.dropped = 0

    # -- JSONL ---------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One compact JSON object per line, in emission order."""
        import json

        return "\n".join(json.dumps(e.to_dict(), separators=(",", ":"))
                         for e in self._ring)

    def write_jsonl(self, path: str | Path) -> int:
        """Write the log to ``path``; returns the number of events written."""
        text = self.to_jsonl()
        Path(path).write_text(text + ("\n" if text else ""))
        return len(self._ring)

    @classmethod
    def from_jsonl(cls, lines: Iterable[str] | str,
                   capacity: int = 65536) -> "EventLog":
        """Rebuild a log from JSONL text (or an iterable of lines)."""
        import json

        if isinstance(lines, str):
            lines = lines.splitlines()
        log = cls(capacity=capacity)
        for number, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {number}: not JSON: {exc}") from exc
            log.append(SimEvent.from_dict(data))
        return log

    @classmethod
    def read_jsonl(cls, path: str | Path, capacity: int = 65536) -> "EventLog":
        return cls.from_jsonl(Path(path).read_text(), capacity=capacity)
