"""The module-level enable switch and the shared instrumentation facade.

Every instrumented hot path in the simulators goes through the single
process-wide :data:`OBS` object::

    from repro.obs.runtime import OBS
    ...
    if OBS.enabled:                      # one attribute read when disabled
        OBS.emit(EventKind.FRAME_SENT, Layer.NETWORK, self.name,
                 f"id={frame.can_id:#x}", t=self.sim.now)

The contract that keeps the disabled mode essentially free (asserted by
``benchmarks/bench_obs_overhead.py``): call sites guard with
``OBS.enabled`` before building message strings or touching metrics, so
a disabled run pays one slot read and a branch per hook.  ``OBS.span``
may be called unguarded — it returns the shared no-op span when
disabled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

from repro.core.layers import Layer
from repro.obs.events import EventKind, EventLog, SimEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Tracer

__all__ = ["Instrumentation", "OBS", "enable", "disable", "is_enabled",
           "instrumented"]

FieldValue = Union[str, int, float, bool]


class Instrumentation:
    """Bundles the enable flag with the tracer, registry, and event log."""

    __slots__ = ("enabled", "tracer", "metrics", "events")

    def __init__(self, *, capacity: int = 65536) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.events = EventLog(capacity=capacity)

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self, *, capacity: int | None = None) -> None:
        """Clear all collected data (the enable flag is left untouched)."""
        self.tracer.reset()
        self.metrics.reset()
        if capacity is None:
            self.events.clear()
        else:
            self.events = EventLog(capacity=capacity)

    # -- hooks (call sites guard with ``if OBS.enabled:``) --------------------

    def emit(self, kind: EventKind, layer: Layer, source: str, message: str,
             *, t: float = 0.0, **fields: FieldValue) -> SimEvent | None:
        if not self.enabled:
            return None
        return self.events.emit(kind, layer, source, message, t=t, **fields)

    def count(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def span(self, name: str, **tags: FieldValue):
        """A real span when enabled, the shared no-op span otherwise."""
        if not self.enabled:
            return NOOP_SPAN
        return self.tracer.span(name, **tags)


#: The process-wide instrumentation instance all simulators report to.
OBS = Instrumentation()


def enable() -> None:
    """Turn instrumentation on (module-level switch)."""
    OBS.enable()


def disable() -> None:
    OBS.disable()


def is_enabled() -> bool:
    return OBS.enabled


@contextmanager
def instrumented(*, fresh: bool = True,
                 capacity: int | None = None) -> Iterator[Instrumentation]:
    """Enable instrumentation for a ``with`` block, restoring the previous
    state (and, with ``fresh=True``, starting from empty collectors)."""
    was_enabled = OBS.enabled
    if fresh:
        OBS.reset(capacity=capacity)
    OBS.enable()
    try:
        yield OBS
    finally:
        OBS.enabled = was_enabled
