"""The module-level enable switch and the shared instrumentation facade.

Every instrumented hot path in the simulators goes through the single
process-wide :data:`OBS` object::

    from repro.obs.runtime import OBS
    ...
    if OBS.enabled:                      # one attribute read when disabled
        OBS.emit(EventKind.FRAME_SENT, Layer.NETWORK, self.name,
                 f"id={frame.can_id:#x}", t=self.sim.now)

The contract that keeps the disabled mode essentially free (asserted by
``benchmarks/bench_obs_overhead.py``): call sites guard with
``OBS.enabled`` before building message strings or touching metrics, so
a disabled run pays one slot read and a branch per hook.  ``OBS.span``
may be called unguarded — it returns the shared no-op span when
disabled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

from repro.core.layers import Layer
from repro.obs.events import EventKind, EventLog, SimEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Tracer

__all__ = ["Instrumentation", "OBS", "enable", "disable", "is_enabled",
           "instrumented"]

FieldValue = Union[str, int, float, bool]


class Instrumentation:
    """Bundles the enable flag with the tracer, registry, and event log."""

    __slots__ = ("enabled", "tracer", "metrics", "events",
                 "sample_every", "_sample_counters")

    def __init__(self, *, capacity: int = 65536) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.events = EventLog(capacity=capacity)
        #: Admit 1 in N high-rate event/histogram emissions per sample key
        #: (1 = keep everything).  Counters are never sampled — call sites
        #: keep exact counts and gate only the expensive emit/observe work.
        self.sample_every = 1
        self._sample_counters: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self, *, capacity: int | None = None) -> None:
        """Clear all collected data (the enable flag and sampling rate are
        left untouched; per-key sampling phases restart)."""
        self.tracer.reset()
        self.metrics.reset()
        self._sample_counters.clear()
        if capacity is None:
            self.events.clear()
        else:
            self.events = EventLog(capacity=capacity)

    # -- hooks (call sites guard with ``if OBS.enabled:``) --------------------

    def emit(self, kind: EventKind, layer: Layer, source: str, message: str,
             *, t: float = 0.0, **fields: FieldValue) -> SimEvent | None:
        if not self.enabled:
            return None
        return self.events.emit(kind, layer, source, message, t=t, **fields)

    def count(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def span(self, name: str, **tags: FieldValue):
        """A real span when enabled, the shared no-op span otherwise."""
        if not self.enabled:
            return NOOP_SPAN
        return self.tracer.span(name, **tags)

    def sample(self, key: str) -> bool:
        """Deterministic 1-in-N admission for high-rate emission sites.

        Each ``key`` keeps its own modulo counter: the 1st, (N+1)th,
        (2N+1)th... calls are admitted, so a fixed workload always emits
        the same sampled subset regardless of interleaving with other
        keys.  With ``sample_every == 1`` (the default) every call is
        admitted and the fast path is a single comparison.
        """
        if self.sample_every <= 1:
            return True
        seen = self._sample_counters.get(key, 0)
        self._sample_counters[key] = seen + 1
        return seen % self.sample_every == 0


#: The process-wide instrumentation instance all simulators report to.
OBS = Instrumentation()


def enable() -> None:
    """Turn instrumentation on (module-level switch)."""
    OBS.enable()


def disable() -> None:
    OBS.disable()


def is_enabled() -> bool:
    return OBS.enabled


@contextmanager
def instrumented(*, fresh: bool = True, capacity: int | None = None,
                 sample_every: int = 1) -> Iterator[Instrumentation]:
    """Enable instrumentation for a ``with`` block, restoring the previous
    state (and, with ``fresh=True``, starting from empty collectors).

    ``sample_every=N`` admits 1 in N high-rate event/histogram emissions
    (see :meth:`Instrumentation.sample`); counters stay exact.
    """
    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    was_enabled = OBS.enabled
    was_sampling = OBS.sample_every
    was_events = OBS.events
    if fresh:
        OBS.reset(capacity=capacity)
    OBS.sample_every = sample_every
    OBS.enable()
    try:
        yield OBS
    finally:
        OBS.enabled = was_enabled
        OBS.sample_every = was_sampling
        if capacity is not None:
            # a capacity override swapped in a different ring; restore the
            # previous log so the override cannot leak into later blocks
            OBS.events = was_events
