"""Traceable scenario runners for the ``python -m repro trace`` CLI.

Each lint scenario (:mod:`repro.lint.scenarios`) audits a *static*
configuration; the runners here execute that configuration's dynamic
counterpart with instrumentation enabled, so the CLI can show the
relay attack, the secured-onboard traffic, or the kill chain unfolding
event by event.  Runners assume :data:`repro.obs.runtime.OBS` is
already enabled (the CLI wraps them in :func:`~repro.obs.runtime.
instrumented`) and return a flat dict of scalar results that lands in
the JSON document's ``result`` block.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.layers import Layer
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["TRACE_SCENARIOS", "run_trace_scenario", "trace_scenario_names"]


def _alert(component: str, attack: str, layer: Layer, severity_name: str,
           t: float):
    """Build a SecurityAlert without importing response at module load."""
    from repro.core.response import SecurityAlert, Severity

    return SecurityAlert(t, layer, component, attack,
                         Severity[severity_name])


def trace_pkes_legacy() -> dict:
    """§II-A dynamic counterpart: relay the fob against both receivers."""
    from repro.phy.attacks import RelayAttack
    from repro.phy.hrp import generate_sts
    from repro.phy.pkes import PkesSystem
    from repro.phy.toa import cross_correlation, first_path_toa

    relay = RelayAttack(cable_length_m=30.0)
    far_fob_m = 40.0
    results: dict = {}

    with OBS.span("phy.relay-attack", fob_distance_m=far_fob_m):
        for policy in ("lf-rssi", "uwb-hrp"):
            with OBS.span(f"phy.unlock.{policy}"):
                system = PkesSystem(policy=policy)
                attempt = system.try_unlock(far_fob_m, relay=relay)
                OBS.emit(EventKind.UNLOCK_ATTEMPT, Layer.PHYSICAL, policy,
                         f"relayed unlock {'SUCCEEDED' if attempt.unlocked else 'failed'} "
                         f"(perceived {attempt.perceived_distance_m:.2f} m)",
                         unlocked=attempt.unlocked,
                         perceived_m=attempt.perceived_distance_m)
                results[f"relay_unlocks_{policy.replace('-', '_')}"] = attempt.unlocked
        OBS.emit(EventKind.ATTACK_STEP, Layer.PHYSICAL, "relay",
                 f"relay adds {relay.cable_length_m:.0f} m of cable: RSSI fooled, "
                 "ToF not", cable_m=relay.cable_length_m)

    with OBS.span("phy.toa-pipeline"):
        # The naive receiver's ToA search over a clean STS arrival.
        template = generate_sts(b"\x5a" * 16, counter=1, length=128)
        received = np.concatenate([np.zeros(40), template, np.zeros(24)])
        estimate = first_path_toa(cross_correlation(received, template))
        results["toa_sample"] = estimate.toa_sample

    return results


def _secoc_bus_exchange(profile_name: str) -> dict:
    """Secured PDUs over the CAN bus: the S1 traffic pattern, timed."""
    from repro.core.events import Simulator
    from repro.ivn.bus import BusNode, CanBus
    from repro.ivn.frames import CanFrame
    from repro.ivn.secoc import PROFILE_1, PROFILE_3, SecOcChannel, SecuredPdu

    profile = PROFILE_3 if profile_name == "profile3" else PROFILE_1
    key = b"\x42" * 16
    sender = SecOcChannel(key, profile)
    receiver = SecOcChannel(key, profile)
    verified = rejected = 0

    sim = Simulator()
    bus = CanBus(sim, name="zonal-can")
    # Arbitration reorders frames across ids (lower id wins), so pair
    # PDUs with deliveries per id — within one id the bus is FIFO.
    pending: dict[int, list[SecuredPdu]] = {}

    def on_receive(record) -> None:
        nonlocal verified, rejected
        pdu = pending[record.frame.can_id].pop(0)
        if receiver.verify(pdu):
            verified += 1
        else:
            rejected += 1

    bus.attach(BusNode("zc-left"))
    bus.attach(BusNode("zc-right", on_receive=on_receive))

    with OBS.span("ivn.secoc-traffic", profile=profile.name):
        for i in range(8):
            can_id = 0x300 + i % 2
            pdu = sender.secure(can_id, bytes([i]) * 4)
            if i == 5:
                # A masquerading node forges the MAC (blind forgery).
                pdu = SecuredPdu(pdu.pdu_id, pdu.payload,
                                 pdu.truncated_freshness, b"\x00" * len(pdu.truncated_mac))
            pending.setdefault(can_id, []).append(pdu)
            bus.send("zc-left", CanFrame(can_id, pdu.payload))
        sim.run()

    return {"frames_delivered": len(bus.delivered), "macs_verified": verified,
            "macs_rejected": rejected, "bus_busy_fraction": bus.utilization_window}


def trace_onboard_insecure() -> dict:
    """§III before protection: flood, forgery, and the bus-off eviction."""
    from repro.ivn.busoff import BusOffAttack, simulate_busoff

    results = _secoc_bus_exchange("profile1")

    with OBS.span("ivn.busoff-campaign"):
        outcome = simulate_busoff(BusOffAttack(hit_probability=0.95),
                                  rounds=80, defend=False)
        results["victim_bus_off"] = outcome.victim_bus_off

    with OBS.span("core.response"):
        from repro.core.response import ResponseEngine

        engine = ResponseEngine(critical_components={"victim-ecu"})
        decision = engine.handle(_alert("victim-ecu", "bus-off-eviction",
                                        Layer.NETWORK, "CRITICAL", t=80.0))
        results["response"] = decision.action.name.lower()
    return results


def trace_onboard_hardened() -> dict:
    """§III fully deployed: secured traffic + secure ranging + response."""
    from repro.core.response import ResponseEngine
    from repro.ivn.busoff import BusOffAttack, simulate_busoff
    from repro.phy.attacks import RelayAttack
    from repro.phy.pkes import PkesSystem

    results = _secoc_bus_exchange("profile3")

    with OBS.span("phy.secure-ranging"):
        system = PkesSystem(policy="uwb-hrp")
        honest = system.try_unlock(1.0)
        relayed = system.try_unlock(40.0, relay=RelayAttack())
        OBS.emit(EventKind.UNLOCK_ATTEMPT, Layer.PHYSICAL, "uwb-hrp",
                 f"honest unlock {'ok' if honest.unlocked else 'FAILED'}; "
                 f"relay {'BLOCKED' if not relayed.unlocked else 'succeeded'}",
                 honest_unlocked=honest.unlocked,
                 relay_blocked=not relayed.unlocked)
        results["honest_unlocked"] = honest.unlocked
        results["relay_blocked"] = not relayed.unlocked

    with OBS.span("ivn.busoff-defended"):
        outcome = simulate_busoff(BusOffAttack(hit_probability=0.95),
                                  rounds=80, defend=True)
        results["attacker_isolated"] = outcome.attacker_isolated
        results["victim_survived"] = not outcome.victim_bus_off

    with OBS.span("core.response"):
        engine = ResponseEngine()
        decision = engine.handle(_alert("zc-right", "secoc-mac-forgery",
                                        Layer.NETWORK, "WARNING", t=1.0))
        results["response"] = decision.action.name.lower()
    return results


def trace_cariad_breach() -> dict:
    """§V/Fig. 8 dynamic counterpart: the kill chain, open then mitigated."""
    from repro.core.response import ResponseEngine
    from repro.datalayer.breach import run_breach

    with OBS.span("datalayer.breach.unmitigated"):
        open_run = run_breach(n_vehicles=6, days=2)
    with OBS.span("datalayer.breach.mitigated"):
        defended = run_breach(n_vehicles=6, days=2,
                              mitigations={"disable-debug-endpoints"})

    with OBS.span("core.response"):
        engine = ResponseEngine(critical_components={"telemetry-backend"})
        decision = engine.handle(_alert("telemetry-backend", "data-exfiltration",
                                        Layer.DATA, "CRITICAL",
                                        t=float(open_run.stages_completed)))

    return {
        "stages_completed_open": open_run.stages_completed,
        "stages_completed_mitigated": defended.stages_completed,
        "records_exfiltrated": open_run.records_exfiltrated,
        "response": decision.action.name.lower(),
    }


def trace_maas_platform() -> dict:
    """§VI/§VII dynamic counterpart: the cooperating fleet under injection."""
    from repro.collab.attacks import ExternalInjector, PositionOffsetAttacker
    from repro.collab.detection import SecureCollabFusion
    from repro.collab.perception import CollabVehicle, PerceptionWorld, WorldObject
    from repro.core.response import ResponseEngine

    objects = [WorldObject(1, 10.0, 0.0), WorldObject(2, -15.0, 5.0),
               WorldObject(3, 0.0, 20.0)]
    vehicles = [CollabVehicle("veh-a", 0.0, 0.0),
                CollabVehicle("veh-b", 5.0, 5.0),
                CollabVehicle("veh-c", -5.0, 10.0)]
    world = PerceptionWorld(objects, vehicles)
    fusion = SecureCollabFusion(world)
    injector = ExternalInjector(n_ghosts=2)
    insider = PositionOffsetAttacker(vehicles[1], offset_x=6.0)

    def malicious(objs):
        return insider.malicious_shares(objs) + injector.forge_shares()

    with OBS.span("collab.fusion-rounds", rounds=6):
        reports = fusion.run_rounds(6, malicious_shares_fn=malicious)

    insider_trust = fusion.trust.score("veh-b")
    results = {
        "rounds": len(reports),
        "dropped_unauthenticated": sum(r.dropped_unauthenticated for r in reports),
        "flagged_shares": sum(r.flagged_shares for r in reports),
        "insider_trust": round(insider_trust, 3),
    }

    with OBS.span("core.response"):
        engine = ResponseEngine()
        severity = "CRITICAL" if insider_trust < 0.5 else "WARNING"
        decision = engine.handle(_alert("veh-b", "position-offset-insider",
                                        Layer.SYSTEM_OF_SYSTEMS, severity,
                                        t=float(len(reports))))
        results["response"] = decision.action.name.lower()
    return results


#: scenario name -> (description, runner); names mirror ``repro.lint.SCENARIOS``.
TRACE_SCENARIOS: dict[str, tuple[str, Callable[[], dict]]] = {
    "pkes-legacy": ("§II-A relay attack vs RSSI and ToF receivers, live",
                    trace_pkes_legacy),
    "cariad-breach": ("§V/Fig. 8 kill chain executing stage by stage",
                      trace_cariad_breach),
    "onboard-insecure": ("§III unprotected IVN: forgery + bus-off eviction",
                         trace_onboard_insecure),
    "onboard-hardened": ("§III secured IVN traffic + UWB ranging + response",
                         trace_onboard_hardened),
    "maas-platform": ("§VI/§VII cooperating fleet under share injection",
                      trace_maas_platform),
}


def trace_scenario_names() -> list[str]:
    return list(TRACE_SCENARIOS)


def run_trace_scenario(name: str) -> dict:
    """Run one scenario (instrumentation must already be enabled)."""
    try:
        _, runner = TRACE_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(TRACE_SCENARIOS)}"
        ) from None
    with OBS.span(name):
        return runner()
