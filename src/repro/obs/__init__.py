"""``repro.obs`` — cross-layer tracing, metrics, and event timelines.

The paper's argument is that attacks cross layers; this package makes
the reproduction's simulators show it.  Every simulator reports to one
process-wide :class:`~repro.obs.runtime.Instrumentation` instance
(:data:`~repro.obs.runtime.OBS`): hierarchical :mod:`spans
<repro.obs.trace>` with wall/CPU timing, :mod:`Counter/Gauge/Histogram
metrics <repro.obs.metrics>`, and a typed :mod:`event log
<repro.obs.events>` with a bounded ring buffer and JSONL export.
Reporters render span trees, metrics tables, a validated JSON document,
and a :mod:`cross-layer timeline <repro.obs.timeline>` that merges
events from several simulators onto one clock.

Instrumentation is **off by default** and costs one attribute read per
hook while off (asserted by ``benchmarks/bench_obs_overhead.py``).

Quickstart::

    from repro import obs

    with obs.instrumented():
        run_breach(n_vehicles=6, days=2)
        report = obs.TraceReport.from_instrumentation("breach")
    print(report.to_table())

CLI::

    python -m repro trace onboard-hardened             # span tree + events
    python -m repro trace pkes-legacy --timeline       # cross-layer timeline
    python -m repro trace cariad-breach --json         # validated JSON doc
"""

from repro.obs.events import EventKind, EventLog, SimEvent
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (SchemaError, TraceReport, render_metrics_table,
                              render_span_tree, validate_metrics_dict,
                              validate_trace_dict)
from repro.obs.runtime import (OBS, Instrumentation, disable, enable,
                               instrumented, is_enabled)
from repro.obs.scenarios import (TRACE_SCENARIOS, run_trace_scenario,
                                 trace_scenario_names)
from repro.obs.timeline import Timeline, merge_events, render_timeline
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "EventKind",
    "EventLog",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "OBS",
    "SchemaError",
    "SimEvent",
    "Span",
    "TRACE_SCENARIOS",
    "Timeline",
    "TraceReport",
    "Tracer",
    "disable",
    "enable",
    "instrumented",
    "is_enabled",
    "merge_events",
    "render_metrics_table",
    "render_span_tree",
    "render_timeline",
    "run_trace_scenario",
    "trace_scenario_names",
    "validate_metrics_dict",
    "validate_trace_dict",
]
