"""Counter / Gauge / Histogram primitives and the process-wide registry.

The three classic metric shapes, dependency-free and built for the
simulators' hot paths: a :class:`Counter` increment is one integer add,
a :class:`Histogram` observation is one list append — aggregation
(mean, percentiles) is deferred to :meth:`Histogram.summary` at report
time, where it runs once instead of per-event.

Names are dotted paths (``ivn.bus.frames_sent``); the
:class:`MetricsRegistry` hands out get-or-create instances so every
instrumented module shares one namespace without import-order coupling.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def reset(self) -> None:
        self.value = 0.0
        self.updates = 0


class Histogram:
    """A distribution of observations with exact percentiles.

    Observations are stored raw (bounded only by the simulation size),
    so percentiles are exact rather than bucket-approximated — the right
    trade-off for offline analysis of simulation runs.
    """

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        values = self._values
        if values and value < values[-1]:
            self._sorted = False
        values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    def _ordered(self) -> list[float]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = self._ordered()
        if not ordered:
            raise ValueError(f"histogram {self.name!r} has no observations")
        if p == 0.0:
            return ordered[0]
        rank = max(1, -(-len(ordered) * p // 100))  # ceil(n * p / 100)
        return ordered[int(rank) - 1]

    def summary(self) -> dict:
        """The aggregate block the JSON export embeds."""
        ordered = self._ordered()
        if not ordered:
            return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / len(ordered),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        self._values.clear()
        self._sorted = True


class MetricsRegistry:
    """Get-or-create registry for all three metric shapes.

    A name is bound to one shape for the registry's lifetime; asking for
    the same name as a different shape is a programming error and raises.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}")

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_unique(name, "counter")
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unique(name, "gauge")
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unique(name, "histogram")
            metric = self._histograms[name] = Histogram(name)
        return metric

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def reset(self) -> None:
        """Drop every registered metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def to_json_dict(self) -> dict:
        """The ``metrics`` block of the trace JSON document."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self._histograms.items())},
        }
