"""Per-layer threshold detectors: typed events in, risk signals out.

Each detector consumes the :class:`~repro.obs.events.SimEvent` kinds it
understands (pushed by the :class:`~repro.sentinel.engine.SentinelEngine`
via the ``EventLog.subscribe`` hook) and, at each virtual-clock tick
boundary, flushes zero or more :class:`Signal` records — one per
suspicious source.  A signal carries a probabilistic ``risk`` in
``[0, 1]`` and a ``hard`` flag for the non-negotiable physics gates
(impossible early arrival, saturated bus, blown availability budget):
hard signals bypass the alarm hysteresis entirely.

Detectors never see ground truth: they judge the same operational
telemetry — frame rates, auth failures, ranging residuals, request
statuses — a real onboard IDS would, and the fault injector's own
``FAULT_INJECTED`` bookkeeping events are filtered out upstream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.events import EventKind, SimEvent

__all__ = ["Signal", "Detector", "CanRateDetector", "SecocAuthDetector",
           "RangingResidualDetector", "CloudBudgetDetector",
           "DidResolutionDetector", "default_detectors"]


@dataclass(frozen=True)
class Signal:
    """One tick's verdict about one source, from one detector."""

    t: float
    source: str
    detector: str
    risk: float
    hard: bool
    reason: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.risk <= 1.0:
            raise ValueError("risk must be in [0, 1]")


class Detector:
    """Base class: accumulate events, flush signals at tick boundaries."""

    name: str = "detector"
    kinds: tuple[EventKind, ...] = ()

    def on_event(self, event: SimEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self, t: float) -> list[Signal]:  # pragma: no cover
        raise NotImplementedError


class CanRateDetector(Detector):
    """CAN frame-rate storms and bus-off storms.

    Frame counts arrive as ``FRAME_SENT`` events (a ``frames`` field
    batches one sender's tick, defaulting to 1 per event); a sender
    past ``suspect_rate`` frames/tick is suspicious, past ``hard_rate``
    the bus is physically saturated — a babbling-idiot signature no
    schedulable workload produces, so it is a hard gate.  ``BUS_OFF``
    events count separately: ``bus_off_hard`` of them in one tick is a
    bus-off storm (hard).
    """

    name = "can-rate"
    kinds = (EventKind.FRAME_SENT, EventKind.BUS_OFF)

    def __init__(self, *, suspect_rate: int = 8, alarm_rate: int = 12,
                 hard_rate: int = 16, bus_off_hard: int = 3) -> None:
        self.suspect_rate = suspect_rate
        self.alarm_rate = alarm_rate
        self.hard_rate = hard_rate
        self.bus_off_hard = bus_off_hard
        self._frames: dict[str, int] = {}
        self._bus_off: dict[str, int] = {}

    def on_event(self, event: SimEvent) -> None:
        if event.kind is EventKind.BUS_OFF:
            self._bus_off[event.source] = self._bus_off.get(event.source, 0) + 1
            return
        sender = event.fields.get("sender", event.source)
        frames = event.fields.get("frames", 1)
        self._frames[str(sender)] = self._frames.get(str(sender), 0) + int(frames)

    def flush(self, t: float) -> list[Signal]:
        signals = []
        for sender, rate in sorted(self._frames.items()):
            if rate >= self.suspect_rate:
                signals.append(Signal(
                    t, sender, self.name,
                    min(1.0, rate / self.alarm_rate), rate >= self.hard_rate,
                    f"{rate} frames/tick"
                    + (" saturates the bus" if rate >= self.hard_rate else "")))
        for source, count in sorted(self._bus_off.items()):
            if count >= self.bus_off_hard:
                signals.append(Signal(t, source, self.name, 1.0, True,
                                      f"bus-off storm: {count} in one tick"))
        self._frames.clear()
        self._bus_off.clear()
        return signals


class SecocAuthDetector(Detector):
    """SecOC authentication-failure bursts (``MAC_REJECTED``).

    Signals only on ticks that actually saw a rejection, scoring the
    windowed burst size — an isolated flipped bit is line noise, a
    burst is a forgery attempt.  ``hard_burst`` rejects in the window
    is a hard gate.
    """

    name = "secoc-auth"
    kinds = (EventKind.MAC_REJECTED,)

    def __init__(self, *, window_s: float = 6.0, suspect_burst: int = 2,
                 alarm_burst: int = 4, hard_burst: int = 6) -> None:
        self.window_s = window_s
        self.suspect_burst = suspect_burst
        self.alarm_burst = alarm_burst
        self.hard_burst = hard_burst
        self._rejects: dict[str, deque[float]] = {}
        self._this_tick: set[str] = set()

    def on_event(self, event: SimEvent) -> None:
        self._rejects.setdefault(event.source, deque()).append(event.t)
        self._this_tick.add(event.source)

    def flush(self, t: float) -> list[Signal]:
        signals = []
        for source in sorted(self._this_tick):
            window = self._rejects[source]
            while window and window[0] <= t - self.window_s:
                window.popleft()
            burst = len(window)
            if burst >= self.suspect_burst:
                signals.append(Signal(
                    t, source, self.name, min(1.0, burst / self.alarm_burst),
                    burst >= self.hard_burst,
                    f"{burst} auth failures in {self.window_s:g}s"))
        self._this_tick.clear()
        return signals


class RangingResidualDetector(Detector):
    """UWB ranging residual outliers and impossible ToA geometry.

    ``RANGING`` events carry ``residual_m`` — the innovation against
    the tracked estimate.  Large positive residuals (late arrivals,
    NLOS, corruption) are probabilistic; a residual at or below
    ``-hard_early_m`` claims the signal arrived *earlier* than the
    geometry allows — the Cicada/relay signature — and is a hard gate,
    because distance-reduction is physically impossible without attack.
    A ``rejected`` field marks samples a secure receiver discarded:
    soft evidence at ``reject_risk``.
    """

    name = "ranging-residual"
    kinds = (EventKind.RANGING,)

    def __init__(self, *, suspect_residual_m: float = 0.5,
                 alarm_residual_m: float = 1.5, hard_early_m: float = 2.0,
                 reject_risk: float = 0.5) -> None:
        self.suspect_residual_m = suspect_residual_m
        self.alarm_residual_m = alarm_residual_m
        self.hard_early_m = hard_early_m
        self.reject_risk = reject_risk
        self._worst: dict[str, float] = {}     # max |residual| this tick
        self._earliest: dict[str, float] = {}  # most negative residual
        self._rejected: set[str] = set()

    def on_event(self, event: SimEvent) -> None:
        source = event.source
        if event.fields.get("rejected"):
            self._rejected.add(source)
            return
        residual = event.fields.get("residual_m")
        if residual is None:
            measured = event.fields.get("measured_m")
            true = event.fields.get("true_m")
            if measured is None or true is None:
                return
            residual = float(measured) - float(true)
        residual = float(residual)
        self._worst[source] = max(self._worst.get(source, 0.0), abs(residual))
        self._earliest[source] = min(self._earliest.get(source, 0.0), residual)

    def flush(self, t: float) -> list[Signal]:
        signals = []
        for source in sorted(set(self._worst) | self._rejected):
            worst = self._worst.get(source, 0.0)
            earliest = self._earliest.get(source, 0.0)
            if earliest <= -self.hard_early_m:
                signals.append(Signal(
                    t, source, self.name, 1.0, True,
                    f"impossible ToA geometry: {earliest:.2f} m early"))
            elif worst >= self.suspect_residual_m:
                signals.append(Signal(
                    t, source, self.name,
                    min(1.0, worst / self.alarm_residual_m), False,
                    f"residual outlier: {worst:.2f} m"))
            elif source in self._rejected:
                signals.append(Signal(
                    t, source, self.name, self.reject_risk, False,
                    "secure ranging rejected sample(s)"))
        self._worst.clear()
        self._earliest.clear()
        self._rejected.clear()
        return signals


class CloudBudgetDetector(Detector):
    """Cloud 5xx/timeout/latency budgets (``CLOUD_REQUEST``).

    A tick is *unavailable* when the service returned 5xx/timeout,
    shed load (breaker open), or blew the latency budget.  Signals fire
    on unavailable ticks with risk scored over the window; a run of
    ``hard_raw_streak`` consecutive ticks with *raw* failures (5xx or
    timeout, not deliberate shedding) means no client-side machinery
    is containing the outage — the availability budget is blown (hard).
    """

    name = "cloud-budget"
    kinds = (EventKind.CLOUD_REQUEST,)

    _RAW_FAILURES = ("5xx", "timeout")

    def __init__(self, *, window_s: float = 6.0, alarm_fails: int = 4,
                 budget_ms: float = 250.0, hard_raw_streak: int = 4,
                 floor_risk: float = 0.3) -> None:
        self.window_s = window_s
        self.alarm_fails = alarm_fails
        self.budget_ms = budget_ms
        self.hard_raw_streak = hard_raw_streak
        self.floor_risk = floor_risk
        self._fail_window: dict[str, deque[float]] = {}
        self._raw_streak: dict[str, int] = {}
        self._tick_status: dict[str, list[str]] = {}

    def on_event(self, event: SimEvent) -> None:
        status = str(event.fields.get("status", "ok"))
        latency = float(event.fields.get("latency_ms", 0.0))
        if status == "ok" and latency > self.budget_ms:
            status = "slow"
        self._tick_status.setdefault(event.source, []).append(status)

    def flush(self, t: float) -> list[Signal]:
        signals = []
        for source, statuses in sorted(self._tick_status.items()):
            raw = any(s in self._RAW_FAILURES for s in statuses)
            unavailable = raw or any(s in ("shed", "slow") for s in statuses)
            self._raw_streak[source] = (
                self._raw_streak.get(source, 0) + 1 if raw else 0)
            window = self._fail_window.setdefault(source, deque())
            if unavailable:
                window.append(t)
            while window and window[0] <= t - self.window_s:
                window.popleft()
            if unavailable:
                streak = self._raw_streak[source]
                hard = streak >= self.hard_raw_streak
                risk = (1.0 if hard else
                        max(self.floor_risk,
                            min(1.0, len(window) / self.alarm_fails)))
                reason = (f"availability budget blown: {streak} consecutive "
                          f"raw failures" if hard else
                          f"{len(window)} degraded tick(s) in {self.window_s:g}s")
                signals.append(Signal(t, source, self.name, risk, hard, reason))
        self._tick_status.clear()
        return signals


class DidResolutionDetector(Detector):
    """DID resolution failures (``DID_RESOLUTION``).

    Outright failures (registry down, nothing cached) signal with risk
    growing over the windowed failure count.  *Stale* resolutions — a
    cache serving last-known-good during an outage — are the resilience
    machinery working as designed: weak evidence only (risk below the
    engine's trigger floor feeds trust, not the alarm ladder).
    """

    name = "did-resolution"
    kinds = (EventKind.DID_RESOLUTION,)

    def __init__(self, *, window_s: float = 6.0, alarm_fails: int = 3,
                 stale_risk: float = 0.2) -> None:
        self.window_s = window_s
        self.alarm_fails = alarm_fails
        self.stale_risk = stale_risk
        self._fail_window: dict[str, deque[float]] = {}
        self._tick_status: dict[str, list[str]] = {}

    def on_event(self, event: SimEvent) -> None:
        status = str(event.fields.get("status", "ok"))
        self._tick_status.setdefault(event.source, []).append(status)

    def flush(self, t: float) -> list[Signal]:
        signals = []
        for source, statuses in sorted(self._tick_status.items()):
            failed = "fail" in statuses
            window = self._fail_window.setdefault(source, deque())
            if failed:
                window.append(t)
            while window and window[0] <= t - self.window_s:
                window.popleft()
            if failed:
                signals.append(Signal(
                    t, source, self.name,
                    min(1.0, len(window) / self.alarm_fails), False,
                    f"{len(window)} resolution failure(s) in "
                    f"{self.window_s:g}s"))
            elif "stale" in statuses:
                signals.append(Signal(t, source, self.name, self.stale_risk,
                                      False, "serving stale DID document"))
        self._tick_status.clear()
        return signals


def default_detectors() -> list[Detector]:
    """One of each per-layer detector, default thresholds."""
    return [CanRateDetector(), SecocAuthDetector(), RangingResidualDetector(),
            CloudBudgetDetector(), DidResolutionDetector()]
