"""Cross-layer cascade correlation: co-occurring alarms become incidents.

A multi-stage campaign (the red-team planner's bread and butter) shows
up to the detectors as *separate* alarms on different layers — a cloud
outage here, a bus storm there.  The :class:`CascadeCorrelator` knows
the scenario's :mod:`repro.flow` graph: when two alarmed sources sit
within ``max_hops`` of each other along data-flow edges (undirected —
cascades propagate both with and against the arrows), their alarms are
the *same* incident, promoted to campaign level instead of paged twice.

Telemetry source names (bus names, service names, anchor ids) rarely
match flow-graph node names exactly, so the correlator takes an
*anchors* map from telemetry source to the nearest graph node; sources
without an anchor (or anchored to a node absent from this scenario's
graph) still form singleton incidents.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.flow.graph import FlowGraph

__all__ = ["Incident", "CascadeCorrelator"]


class Incident:
    """One campaign-level incident: correlated alarms across sources."""

    def __init__(self, incident_id: int, opened_t: float, source: str,
                 detector: str) -> None:
        self.incident_id = incident_id
        self.opened_t = opened_t
        self.closed_t: float | None = None
        self.sources: set[str] = {source}
        self.alarms: list[tuple[float, str, str]] = [(opened_t, source, detector)]

    @property
    def open(self) -> bool:
        return self.closed_t is None

    def record(self, t: float, source: str, detector: str) -> None:
        self.sources.add(source)
        self.alarms.append((t, source, detector))

    def to_dict(self) -> dict:
        return {
            "id": self.incident_id,
            "openedT": self.opened_t,
            "closedT": self.closed_t,
            "sources": sorted(self.sources),
            "alarmCount": len(self.alarms),
            "crossLayer": len(self.sources) > 1,
        }


class CascadeCorrelator:
    """Promote co-occurring, flow-adjacent alarms into incidents."""

    def __init__(self, adjacency: dict[str, set[str]] | None = None, *,
                 join_window_s: float = 8.0) -> None:
        self.adjacency = {k: set(v) for k, v in (adjacency or {}).items()}
        self.join_window_s = join_window_s
        self.incidents: list[Incident] = []
        self._last_alarm_t: dict[int, float] = {}

    @classmethod
    def from_flow_graph(cls, graph: "FlowGraph", anchors: dict[str, str], *,
                        max_hops: int = 2,
                        join_window_s: float = 8.0) -> "CascadeCorrelator":
        """Build source-level adjacency from a scenario's flow graph.

        Two telemetry sources are adjacent when their anchor nodes lie
        within ``max_hops`` undirected flow-graph hops of each other.
        """
        neighbors: dict[str, set[str]] = {}
        for edge in graph.edges():
            neighbors.setdefault(edge.src, set()).add(edge.dst)
            neighbors.setdefault(edge.dst, set()).add(edge.src)

        def within(start: str, budget: int) -> set[str]:
            seen = {start}
            frontier: deque[tuple[str, int]] = deque([(start, 0)])
            while frontier:
                node, hops = frontier.popleft()
                if hops == budget:
                    continue
                for nxt in neighbors.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append((nxt, hops + 1))
            return seen

        anchored = {src: node for src, node in anchors.items() if node in graph}
        reach = {src: within(node, max_hops) for src, node in anchored.items()}
        adjacency: dict[str, set[str]] = {src: set() for src in anchors}
        for a, nodes_a in reach.items():
            for b, node_b in anchored.items():
                if a != b and node_b in nodes_a:
                    adjacency[a].add(b)
        return cls(adjacency, join_window_s=join_window_s)

    def related(self, a: str, b: str) -> bool:
        """Same source, or flow-adjacent within the hop budget."""
        return a == b or b in self.adjacency.get(a, ()) or \
            a in self.adjacency.get(b, ())

    def on_alarm(self, t: float, source: str,
                 detector: str) -> tuple[Incident, str]:
        """Record one machine entering ALARM; returns (incident, action).

        ``action`` is ``"opened"`` for a fresh incident or ``"joined"``
        when the alarm correlated into an open one (recent enough and
        flow-adjacent to a member source).
        """
        for incident in self.incidents:
            if not incident.open:
                continue
            recent = t - self._last_alarm_t[incident.incident_id] <= self.join_window_s
            if recent and any(self.related(source, member)
                              for member in incident.sources):
                incident.record(t, source, detector)
                self._last_alarm_t[incident.incident_id] = t
                return incident, "joined"
        incident = Incident(len(self.incidents) + 1, t, source, detector)
        self.incidents.append(incident)
        self._last_alarm_t[incident.incident_id] = t
        return incident, "opened"

    def on_all_clear(self, t: float, cleared: set[str]) -> list[Incident]:
        """Close every open incident whose sources have all cleared."""
        closed = []
        for incident in self.incidents:
            if incident.open and incident.sources <= cleared:
                incident.closed_t = t
                closed.append(incident)
        return closed

    def open_incidents(self) -> list[Incident]:
        return [incident for incident in self.incidents if incident.open]

    def to_dict(self) -> list[dict]:
        return [incident.to_dict() for incident in self.incidents]
