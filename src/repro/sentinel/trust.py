"""Time-variant trust: EMA smoothing, weighted-MAX fusion, physics gates.

Each monitored source (ECU, bus, anchor, backend, registry) carries a
:class:`TrustScore` in ``[0, 1]`` that evolves with evidence:

* **fusion** — one tick's detector risks combine as
  ``max(physics, min(1, Σ wᵢ·riskᵢ))``: the weighted sum lets several
  weak probabilistic signals reinforce each other, while a *hard*
  physics gate (impossible ToA, saturated bus) overrides everything —
  no amount of good history argues with physics, so a hard tick also
  crashes the score to ``hard_crash``.
* **EMA smoothing** — the score moves toward ``1 − fused risk`` with
  step ``alpha``: single noisy ticks dent it, sustained evidence moves
  it.
* **phases** — sources start in COLD_START (risk amplified: a stranger
  must earn trust) for the first ``cold_start_obs`` observations, then
  VERIFYING, and reach TRUSTED at ``trusted_at``; TRUSTED sources damp
  risks below ``noise_floor`` (reputation absorbs line noise) but fall
  back to VERIFYING if the score sags.
* **decay** — a tick with no observations at all pulls scores above
  ``ambient`` back toward it: trust is perishable without positive
  reinforcement, but distrust is not forgiven for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["TrustPhase", "TrustEvent", "TrustScore", "TrustRegistry",
           "DEFAULT_WEIGHTS"]

#: Per-detector fusion weights (weighted-sum arm of the MAX fusion).
DEFAULT_WEIGHTS: dict[str, float] = {
    "can-rate": 1.0,
    "ranging-residual": 1.0,
    "cloud-budget": 0.9,
    "secoc-auth": 0.8,
    "did-resolution": 0.7,
}


class TrustPhase(str, Enum):
    """The time-variant trust lifecycle."""

    COLD_START = "cold-start"
    VERIFYING = "verifying"
    TRUSTED = "trusted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TrustEvent:
    """A reportable trust change (phase move or collapse)."""

    t: float
    source: str
    kind: str            # "phase" | "collapse"
    phase: TrustPhase
    score: float

    def to_dict(self) -> dict:
        return {"t": self.t, "source": self.source, "kind": self.kind,
                "phase": self.phase.value, "score": round(self.score, 4)}


class TrustScore:
    """One source's evolving trust."""

    def __init__(self, source: str, *, initial: float = 0.5,
                 alpha: float = 0.35, ambient: float = 0.4,
                 decay_rate: float = 0.05, cold_start_obs: int = 5,
                 cold_start_gain: float = 1.25, trusted_at: float = 0.8,
                 trusted_exit: float = 0.7, noise_floor: float = 0.1,
                 collapse_threshold: float = 0.3,
                 hard_crash: float = 0.05) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if trusted_exit > trusted_at:
            raise ValueError("trusted_exit must not exceed trusted_at")
        self.source = source
        self.score = initial
        self.alpha = alpha
        self.ambient = ambient
        self.decay_rate = decay_rate
        self.cold_start_obs = cold_start_obs
        self.cold_start_gain = cold_start_gain
        self.trusted_at = trusted_at
        self.trusted_exit = trusted_exit
        self.noise_floor = noise_floor
        self.collapse_threshold = collapse_threshold
        self.hard_crash = hard_crash
        self.phase = TrustPhase.COLD_START
        self.observations = 0
        self.min_score = initial
        self.collapsed_t: float | None = None
        self.hard_hits = 0

    def fuse(self, risks: dict[str, float], hard: bool,
             weights: dict[str, float] | None = None) -> float:
        """Weighted-MAX fusion: ``max(physics, min(1, Σ wᵢ·riskᵢ))``."""
        table = weights if weights is not None else DEFAULT_WEIGHTS
        weighted = min(1.0, sum(table.get(name, 0.5) * risk
                                for name, risk in risks.items()))
        return 1.0 if hard else weighted

    def update(self, t: float, risks: dict[str, float], hard: bool, *,
               weights: dict[str, float] | None = None) -> list[TrustEvent]:
        """Apply one tick of evidence; returns reportable trust events."""
        self.observations += 1
        fused = self.fuse(risks, hard, weights)
        if self.phase is TrustPhase.COLD_START:
            fused = min(1.0, fused * self.cold_start_gain)
        elif self.phase is TrustPhase.TRUSTED and fused <= self.noise_floor:
            fused = 0.0  # reputation absorbs line noise
        self.score = (1.0 - self.alpha) * self.score + self.alpha * (1.0 - fused)
        if hard:
            self.hard_hits += 1
            self.score = min(self.score, self.hard_crash)
        return self._after_move(t)

    def decay(self, t: float) -> list[TrustEvent]:
        """One tick with no observations: trust is perishable."""
        if self.score > self.ambient:
            self.score = self.score - self.decay_rate * (self.score - self.ambient)
        return self._after_move(t)

    def _after_move(self, t: float) -> list[TrustEvent]:
        events: list[TrustEvent] = []
        self.min_score = min(self.min_score, self.score)
        if self.collapsed_t is None and self.score < self.collapse_threshold:
            self.collapsed_t = t
            events.append(TrustEvent(t, self.source, "collapse",
                                     self.phase, self.score))
        next_phase = self.phase
        if self.phase is TrustPhase.COLD_START:
            if self.observations >= self.cold_start_obs:
                next_phase = TrustPhase.VERIFYING
        elif self.phase is TrustPhase.VERIFYING:
            if self.score >= self.trusted_at:
                next_phase = TrustPhase.TRUSTED
        elif self.score < self.trusted_exit:
            next_phase = TrustPhase.VERIFYING
        if next_phase is not self.phase:
            self.phase = next_phase
            events.append(TrustEvent(t, self.source, "phase",
                                     next_phase, self.score))
        return events

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "score": round(self.score, 4),
            "minScore": round(self.min_score, 4),
            "phase": self.phase.value,
            "observations": self.observations,
            "hardHits": self.hard_hits,
            "collapsedT": self.collapsed_t,
        }


class TrustRegistry:
    """All monitored sources' trust, plus the shared fusion weights."""

    def __init__(self, *, weights: dict[str, float] | None = None) -> None:
        self.weights = dict(weights) if weights is not None else dict(DEFAULT_WEIGHTS)
        self._scores: dict[str, TrustScore] = {}

    def get(self, source: str) -> TrustScore:
        score = self._scores.get(source)
        if score is None:
            score = self._scores[source] = TrustScore(source)
        return score

    def sources(self) -> list[str]:
        return sorted(self._scores)

    def update(self, t: float, source: str, risks: dict[str, float],
               hard: bool) -> list[TrustEvent]:
        return self.get(source).update(t, risks, hard, weights=self.weights)

    def decay_except(self, t: float, seen: set[str]) -> list[TrustEvent]:
        """Decay every tracked source that produced no evidence this tick."""
        events: list[TrustEvent] = []
        for name in sorted(self._scores):
            if name not in seen:
                events.extend(self._scores[name].decay(t))
        return events

    def collapsed(self) -> list[str]:
        return sorted(name for name, score in self._scores.items()
                      if score.collapsed_t is not None)

    def to_dict(self) -> list[dict]:
        return [self._scores[name].to_dict() for name in sorted(self._scores)]
