"""Per-source alarm state machines: IDLE → SUSPECT → ALARM → CLEARED.

One :class:`AlarmMachine` tracks one ``(source, detector)`` pair.  The
machine consumes the detector's :class:`~repro.sentinel.detectors.Signal`
stream and applies *hysteresis*: a single suspicious tick must not page
anyone (``suspect_after`` consecutive triggers reach SUSPECT,
``alarm_after`` reach ALARM), while a *hard* signal — a physics gate
like an impossible time-of-arrival or a saturated bus — jumps straight
to ALARM, because no amount of smoothing argues with physics.

Clearing is time-based on the campaign's virtual clock: once a machine
has been quiet (no triggering signal) for ``clear_after_s``, an ALARM
becomes CLEARED and a SUSPECT falls back to IDLE.  CLEARED is sticky
history, not amnesia — a cleared machine that triggers again starts
climbing from SUSPECT, one step warmer than a fresh IDLE machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.sentinel.detectors import Signal

__all__ = ["AlarmState", "AlarmTransition", "AlarmMachine"]


class AlarmState(str, Enum):
    """The alarm ladder for one (source, detector) pair."""

    IDLE = "idle"
    SUSPECT = "suspect"
    ALARM = "alarm"
    CLEARED = "cleared"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AlarmTransition:
    """One recorded state change on a machine."""

    t: float
    source: str
    detector: str
    state: AlarmState
    risk: float
    reason: str

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "source": self.source,
            "detector": self.detector,
            "state": self.state.value,
            "risk": round(self.risk, 4),
            "reason": self.reason,
        }


class AlarmMachine:
    """Hysteretic alarm state for one ``(source, detector)`` pair."""

    def __init__(self, source: str, detector: str, *,
                 suspect_after: int = 2, alarm_after: int = 4,
                 clear_after_s: float = 4.0) -> None:
        if suspect_after < 1 or alarm_after < suspect_after:
            raise ValueError("need 1 <= suspect_after <= alarm_after")
        if clear_after_s <= 0:
            raise ValueError("clear_after_s must be positive")
        self.source = source
        self.detector = detector
        self.suspect_after = suspect_after
        self.alarm_after = alarm_after
        self.clear_after_s = clear_after_s
        self.state = AlarmState.IDLE
        self.streak = 0
        self.last_trigger_t: float | None = None
        self.first_alarm_t: float | None = None
        self.transitions: list[AlarmTransition] = []

    def _move(self, state: AlarmState, t: float, risk: float,
              reason: str) -> AlarmTransition:
        self.state = state
        if state is AlarmState.ALARM and self.first_alarm_t is None:
            self.first_alarm_t = t
        transition = AlarmTransition(t, self.source, self.detector,
                                     state, risk, reason)
        self.transitions.append(transition)
        return transition

    def trigger(self, signal: Signal) -> AlarmTransition | None:
        """Feed one triggering signal; returns a transition if one fired."""
        self.last_trigger_t = signal.t
        self.streak += 1
        if self.state is AlarmState.ALARM:
            return None  # already alarmed; stay until quiet clears it
        if signal.hard:
            return self._move(AlarmState.ALARM, signal.t, signal.risk,
                              f"hard signal: {signal.reason}")
        # A machine that alarmed before re-enters the ladder at SUSPECT.
        if self.state in (AlarmState.IDLE, AlarmState.CLEARED):
            warm = self.state is AlarmState.CLEARED
            if warm or self.streak >= self.suspect_after:
                return self._move(AlarmState.SUSPECT, signal.t, signal.risk,
                                  ("re-offense after clear" if warm
                                   else f"{self.streak} consecutive triggers"))
            return None
        if self.state is AlarmState.SUSPECT and self.streak >= self.alarm_after:
            return self._move(AlarmState.ALARM, signal.t, signal.risk,
                              f"{self.streak} consecutive triggers")
        return None

    def quiet(self, t: float) -> AlarmTransition | None:
        """Call once per tick with no triggering signal.

        The streak resets immediately — hysteresis counts *consecutive*
        triggering ticks — while the state itself only falls back
        (ALARM → CLEARED, SUSPECT → IDLE) after ``clear_after_s`` of
        quiet on the virtual clock.
        """
        self.streak = 0
        if self.last_trigger_t is None:
            return None
        if t - self.last_trigger_t < self.clear_after_s:
            return None
        if self.state is AlarmState.ALARM:
            return self._move(AlarmState.CLEARED, t, 0.0,
                              f"quiet for {self.clear_after_s:g}s")
        if self.state is AlarmState.SUSPECT:
            return self._move(AlarmState.IDLE, t, 0.0,
                              f"quiet for {self.clear_after_s:g}s")
        return None

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "detector": self.detector,
            "finalState": self.state.value,
            "transitions": len(self.transitions),
            "firstAlarmT": self.first_alarm_t,
        }
