"""Sentinel report JSON: schema documentation and validation.

The sentinel document (version ``1.0``) follows the ``repro.faults``
chaos-report conventions — small, flat, stable::

    {
      "version": "1.0",
      "tool": {"name": "repro-sentinel", "version": "<package version>"},
      "plan": {"name", "window": {"start", "end"},
               "faults": [{"kind", "target", "layer", "start", "end",
                           "probability", "magnitude"}]},
      "baseSeed": <int>,
      "scenarios": [
        {"scenario", "description", "resilient", "durationTicks",
         "window": {"start", "end"},
         "faults": {"injected", "byKind"},
         "sentinel": {
           "eventsConsumed", "eventsEmitted", "firstAlarmT",
           "alarmTransitions", "alarmedSources",
           "machines": [{"source", "detector", "finalState",
                         "transitions", "firstAlarmT"}],
           "incidents": [{"id", "openedT", "closedT", "sources",
                          "alarmCount", "crossLayer"}],
           "trust": [{"source", "score", "minScore", "phase",
                      "observations", "hardHits", "collapsedT"}]},
         "response": {"alerts", "isolated"},
         "degradation": {"finalLevel", "minLevel",
                         "changes": [{"t", "level", "reason"}],
                         "timeToDegradeS", "timeToRecoverS"},
         "detection": {"alarmRaised", "firstAlarmT", "alarmIncidents",
                       "trustCollapsed", "safeStopT", "leadTicks",
                       "detectedBeforeSafeStop"}}
      ],
      "summary": {"scenarioCount", "alarmIncidents", "scenariosDetected",
                  "scenariosClean", "trustCollapsed"}
    }

:func:`validate_sentinel_dict` checks a parsed document against that
schema — including the recomputable cross-checks (detection fields
derive from the sentinel block, summary fields from the scenarios) —
and raises :class:`SentinelSchemaError` on any violation.  The CI
sentinel gate and the round-trip tests both call it.
"""

from __future__ import annotations

from repro.faults.report import ChaosSchemaError, _validate_plan

__all__ = ["SentinelSchemaError", "validate_sentinel_dict",
           "SCHEMA_VERSION", "TOOL_NAME"]

SCHEMA_VERSION = "1.0"
TOOL_NAME = "repro-sentinel"

_ALARM_STATES = {"idle", "suspect", "alarm", "cleared"}
_TRUST_PHASES = {"cold-start", "verifying", "trusted"}
_LEVEL_NAMES = {"full", "degraded", "minimal_risk", "safe_stop"}

_MACHINE_KEYS = {"source", "detector", "finalState", "transitions",
                 "firstAlarmT"}
_INCIDENT_KEYS = {"id", "openedT", "closedT", "sources", "alarmCount",
                  "crossLayer"}
_TRUST_KEYS = {"source", "score", "minScore", "phase", "observations",
               "hardHits", "collapsedT"}
_SENTINEL_KEYS = {"eventsConsumed", "eventsEmitted", "firstAlarmT",
                  "alarmTransitions", "alarmedSources", "machines",
                  "incidents", "trust"}
_DETECTION_KEYS = {"alarmRaised", "firstAlarmT", "alarmIncidents",
                   "trustCollapsed", "safeStopT", "leadTicks",
                   "detectedBeforeSafeStop"}
_DEGRADATION_KEYS = {"finalLevel", "minLevel", "changes",
                     "timeToDegradeS", "timeToRecoverS"}
_SCENARIO_KEYS = {"scenario", "description", "resilient", "durationTicks",
                  "window", "faults", "sentinel", "response",
                  "degradation", "detection"}
_SUMMARY_KEYS = {"scenarioCount", "alarmIncidents", "scenariosDetected",
                 "scenariosClean", "trustCollapsed"}


class SentinelSchemaError(ValueError):
    """A sentinel JSON document does not match the documented schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SentinelSchemaError(message)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_count(value: object) -> bool:
    return _is_int(value) and value >= 0


def _is_unit(value: object) -> bool:
    return _is_number(value) and 0.0 <= value <= 1.0


def _is_sorted_str_list(value: object) -> bool:
    return (isinstance(value, list)
            and all(isinstance(item, str) and item for item in value)
            and value == sorted(value))


def _validate_window(window: object, where: str) -> None:
    _require(isinstance(window, dict) and set(window) == {"start", "end"},
             f"{where}: window must be {{start, end}}")
    _require(_is_number(window["start"]) and _is_number(window["end"]),
             f"{where}: window bounds must be numbers")
    _require(window["start"] <= window["end"],
             f"{where}: window start must not exceed end")


def _validate_machine(entry: object, where: str) -> dict:
    _require(isinstance(entry, dict) and set(entry) == _MACHINE_KEYS,
             f"{where}: keys must be {sorted(_MACHINE_KEYS)}")
    for key in ("source", "detector"):
        _require(isinstance(entry[key], str) and entry[key],
                 f"{where}: {key} must be a non-empty string")
    _require(entry["finalState"] in _ALARM_STATES,
             f"{where}: unknown state {entry['finalState']!r}")
    _require(_is_count(entry["transitions"]),
             f"{where}: transitions must be a non-negative int")
    _require(entry["firstAlarmT"] is None or _is_number(entry["firstAlarmT"]),
             f"{where}: firstAlarmT must be a number or null")
    return entry


def _validate_incident(entry: object, where: str) -> dict:
    _require(isinstance(entry, dict) and set(entry) == _INCIDENT_KEYS,
             f"{where}: keys must be {sorted(_INCIDENT_KEYS)}")
    _require(_is_int(entry["id"]) and entry["id"] >= 1,
             f"{where}: id must be an int >= 1")
    _require(_is_number(entry["openedT"]),
             f"{where}: openedT must be a number")
    _require(entry["closedT"] is None
             or (_is_number(entry["closedT"])
                 and entry["closedT"] >= entry["openedT"]),
             f"{where}: closedT must be null or >= openedT")
    _require(_is_sorted_str_list(entry["sources"]) and entry["sources"],
             f"{where}: sources must be a sorted non-empty string list")
    _require(_is_count(entry["alarmCount"])
             and entry["alarmCount"] >= len(entry["sources"]),
             f"{where}: alarmCount must cover every source")
    _require(entry["crossLayer"] == (len(entry["sources"]) > 1),
             f"{where}: crossLayer must mean 'more than one source'")
    return entry


def _validate_trust(entry: object, where: str) -> dict:
    _require(isinstance(entry, dict) and set(entry) == _TRUST_KEYS,
             f"{where}: keys must be {sorted(_TRUST_KEYS)}")
    _require(isinstance(entry["source"], str) and entry["source"],
             f"{where}: source must be a non-empty string")
    _require(_is_unit(entry["score"]) and _is_unit(entry["minScore"]),
             f"{where}: score/minScore must be in [0, 1]")
    _require(entry["minScore"] <= entry["score"],
             f"{where}: minScore must not exceed score")
    _require(entry["phase"] in _TRUST_PHASES,
             f"{where}: unknown phase {entry['phase']!r}")
    _require(_is_count(entry["observations"]) and _is_count(entry["hardHits"]),
             f"{where}: observations/hardHits must be non-negative ints")
    _require(entry["hardHits"] <= entry["observations"],
             f"{where}: hardHits must not exceed observations")
    _require(entry["collapsedT"] is None or _is_number(entry["collapsedT"]),
             f"{where}: collapsedT must be a number or null")
    return entry


def _validate_sentinel(entry: object, where: str) -> dict:
    _require(isinstance(entry, dict) and set(entry) == _SENTINEL_KEYS,
             f"{where}: keys must be {sorted(_SENTINEL_KEYS)}")
    for key in ("eventsConsumed", "eventsEmitted", "alarmTransitions"):
        _require(_is_count(entry[key]),
                 f"{where}: {key} must be a non-negative int")
    _require(entry["firstAlarmT"] is None or _is_number(entry["firstAlarmT"]),
             f"{where}: firstAlarmT must be a number or null")

    _require(isinstance(entry["machines"], list),
             f"{where}: machines must be a list")
    seen_machines: set[tuple[str, str]] = set()
    alarmed: set[str] = set()
    transition_total = 0
    for index, machine in enumerate(entry["machines"]):
        inner = f"{where}.machines[{index}]"
        _validate_machine(machine, inner)
        key = (machine["source"], machine["detector"])
        _require(key not in seen_machines, f"{inner}: duplicate machine")
        seen_machines.add(key)
        transition_total += machine["transitions"]
        if machine["firstAlarmT"] is not None:
            alarmed.add(machine["source"])
    _require(entry["alarmTransitions"] == transition_total,
             f"{where}: alarmTransitions must sum machine transitions")
    _require(entry["alarmedSources"] == sorted(alarmed),
             f"{where}: alarmedSources must list machines that alarmed, sorted")

    _require(isinstance(entry["incidents"], list),
             f"{where}: incidents must be a list")
    for index, incident in enumerate(entry["incidents"]):
        inner = f"{where}.incidents[{index}]"
        _validate_incident(incident, inner)
        _require(incident["id"] == index + 1,
                 f"{inner}: ids must be dense and 1-based")

    _require(isinstance(entry["trust"], list) and entry["trust"],
             f"{where}: trust must be a non-empty list")
    seen_sources: list[str] = []
    for index, trust in enumerate(entry["trust"]):
        _validate_trust(trust, f"{where}.trust[{index}]")
        seen_sources.append(trust["source"])
    _require(seen_sources == sorted(seen_sources)
             and len(set(seen_sources)) == len(seen_sources),
             f"{where}: trust must be sorted by source, no duplicates")
    return entry


def _validate_degradation(entry: object, where: str) -> dict:
    _require(isinstance(entry, dict) and set(entry) == _DEGRADATION_KEYS,
             f"{where}: keys must be {sorted(_DEGRADATION_KEYS)}")
    for key in ("finalLevel", "minLevel"):
        _require(entry[key] in _LEVEL_NAMES,
                 f"{where}: {key} must be one of {sorted(_LEVEL_NAMES)}")
    _require(isinstance(entry["changes"], list),
             f"{where}: changes must be a list")
    for index, change in enumerate(entry["changes"]):
        inner = f"{where}.changes[{index}]"
        _require(isinstance(change, dict)
                 and set(change) == {"t", "level", "reason"},
                 f"{inner}: must be {{t, level, reason}}")
        _require(_is_number(change["t"]), f"{inner}: t must be a number")
        _require(change["level"] in _LEVEL_NAMES,
                 f"{inner}: unknown level {change['level']!r}")
        _require(isinstance(change["reason"], str) and change["reason"],
                 f"{inner}: reason must be a non-empty string")
    for key in ("timeToDegradeS", "timeToRecoverS"):
        _require(entry[key] is None or _is_number(entry[key]),
                 f"{where}: {key} must be a number or null")
    return entry


def _validate_detection(entry: object, sentinel: dict,
                        degradation: dict, where: str) -> dict:
    _require(isinstance(entry, dict) and set(entry) == _DETECTION_KEYS,
             f"{where}: keys must be {sorted(_DETECTION_KEYS)}")
    _require(isinstance(entry["alarmRaised"], bool),
             f"{where}: alarmRaised must be a bool")
    _require(entry["alarmRaised"] == (sentinel["firstAlarmT"] is not None),
             f"{where}: alarmRaised must mirror sentinel.firstAlarmT")
    _require(entry["firstAlarmT"] == sentinel["firstAlarmT"],
             f"{where}: firstAlarmT must equal sentinel.firstAlarmT")
    _require(entry["alarmIncidents"] == len(sentinel["incidents"]),
             f"{where}: alarmIncidents must count sentinel.incidents")
    collapsed = sorted(trust["source"] for trust in sentinel["trust"]
                       if trust["collapsedT"] is not None)
    _require(entry["trustCollapsed"] == collapsed,
             f"{where}: trustCollapsed must list collapsed trust sources")
    safe_stop = next((change["t"] for change in degradation["changes"]
                      if change["level"] == "safe_stop"), None)
    _require(entry["safeStopT"] == safe_stop,
             f"{where}: safeStopT must be the first safe_stop change")
    if entry["safeStopT"] is not None and entry["firstAlarmT"] is not None:
        _require(entry["leadTicks"] ==
                 entry["safeStopT"] - entry["firstAlarmT"],
                 f"{where}: leadTicks must be safeStopT - firstAlarmT")
    else:
        _require(entry["leadTicks"] is None,
                 f"{where}: leadTicks must be null without both endpoints")
    expected = (entry["alarmRaised"]
                and (entry["safeStopT"] is None
                     or entry["firstAlarmT"] < entry["safeStopT"]))
    _require(entry["detectedBeforeSafeStop"] == expected,
             f"{where}: detectedBeforeSafeStop is inconsistent")
    return entry


def _validate_scenario(entry: object, where: str) -> dict:
    _require(isinstance(entry, dict) and set(entry) == _SCENARIO_KEYS,
             f"{where}: keys {sorted(entry) if isinstance(entry, dict) else '?'}"
             f" != {sorted(_SCENARIO_KEYS)}")
    _require(isinstance(entry["scenario"], str) and entry["scenario"],
             f"{where}: scenario must be a non-empty string")
    _require(isinstance(entry["description"], str) and entry["description"],
             f"{where}: description must be a non-empty string")
    _require(isinstance(entry["resilient"], bool),
             f"{where}: resilient must be a bool")
    _require(_is_int(entry["durationTicks"]) and entry["durationTicks"] >= 1,
             f"{where}: durationTicks must be an int >= 1")
    _validate_window(entry["window"], where)

    faults = entry["faults"]
    _require(isinstance(faults, dict) and set(faults) == {"injected", "byKind"},
             f"{where}: faults must be {{injected, byKind}}")
    _require(_is_count(faults["injected"]),
             f"{where}: faults.injected must be a non-negative int")
    _require(isinstance(faults["byKind"], dict)
             and all(_is_count(count) and count > 0
                     for count in faults["byKind"].values()),
             f"{where}: faults.byKind must map kinds to positive ints")
    _require(sum(faults["byKind"].values()) == faults["injected"],
             f"{where}: byKind must sum to faults.injected")

    sentinel = _validate_sentinel(entry["sentinel"], f"{where}.sentinel")

    response = entry["response"]
    _require(isinstance(response, dict)
             and set(response) == {"alerts", "isolated"},
             f"{where}: response must be {{alerts, isolated}}")
    _require(_is_count(response["alerts"]),
             f"{where}: response.alerts must be a non-negative int")
    _require(_is_sorted_str_list(response["isolated"]),
             f"{where}: response.isolated must be a sorted string list")

    degradation = _validate_degradation(entry["degradation"],
                                        f"{where}.degradation")
    _validate_detection(entry["detection"], sentinel, degradation,
                        f"{where}.detection")
    return entry


def validate_sentinel_dict(document: dict) -> None:
    """Raise :class:`SentinelSchemaError` unless ``document`` matches."""
    _require(isinstance(document, dict), "sentinel report must be an object")
    required = {"version", "tool", "plan", "baseSeed", "scenarios", "summary"}
    _require(set(document) == required,
             f"top-level keys {sorted(document)} != {sorted(required)}")
    _require(document["version"] == SCHEMA_VERSION,
             f"unsupported schema version {document['version']!r}")
    tool = document["tool"]
    _require(isinstance(tool, dict) and set(tool) == {"name", "version"},
             "tool must be {name, version}")
    _require(tool["name"] == TOOL_NAME,
             f"unexpected tool name {tool['name']!r}")
    _require(isinstance(tool["version"], str) and tool["version"],
             "tool.version must be a non-empty string")
    try:
        _validate_plan(document["plan"])
    except ChaosSchemaError as exc:
        raise SentinelSchemaError(str(exc)) from None
    _require(_is_int(document["baseSeed"]), "baseSeed must be an int")

    _require(isinstance(document["scenarios"], list) and document["scenarios"],
             "scenarios must be a non-empty list")
    seen: set[str] = set()
    incident_total = 0
    detected: set[str] = set()
    clean: set[str] = set()
    collapsed: set[str] = set()
    for index, entry in enumerate(document["scenarios"]):
        scenario = _validate_scenario(entry, f"scenarios[{index}]")
        _require(scenario["scenario"] not in seen,
                 f"scenarios[{index}]: duplicate scenario "
                 f"{scenario['scenario']!r}")
        seen.add(scenario["scenario"])
        incident_total += scenario["detection"]["alarmIncidents"]
        if scenario["detection"]["alarmRaised"]:
            detected.add(scenario["scenario"])
        else:
            clean.add(scenario["scenario"])
        collapsed.update(scenario["detection"]["trustCollapsed"])

    summary = document["summary"]
    _require(isinstance(summary, dict) and set(summary) == _SUMMARY_KEYS,
             f"summary must be {sorted(_SUMMARY_KEYS)}")
    _require(summary["scenarioCount"] == len(document["scenarios"]),
             "summary.scenarioCount must equal len(scenarios)")
    _require(summary["alarmIncidents"] == incident_total,
             "summary.alarmIncidents must sum the per-scenario totals")
    _require(summary["scenariosDetected"] == sorted(detected),
             "summary.scenariosDetected must list alarmed scenarios, sorted")
    _require(summary["scenariosClean"] == sorted(clean),
             "summary.scenariosClean must list alarm-free scenarios, sorted")
    _require(summary["trustCollapsed"] == sorted(collapsed),
             "summary.trustCollapsed must union the per-scenario lists, sorted")
