"""Sentinel campaigns: the five scenarios streamed through the engine.

Each campaign replays a chaos-posture workload (the same postures,
fault plans, and injector streams as :mod:`repro.faults.chaos`) but
emits *operational telemetry* — ranging residuals, per-sender frame
rates, SecOC rejects, request statuses, DID resolutions — into a live
:class:`~repro.obs.events.EventLog` that a :class:`SentinelEngine`
consumes online via the ``subscribe`` hook.  The engine never sees the
injector's ``FAULT_INJECTED`` ground truth; it must detect campaigns
from the same evidence a deployed IDS would have.

The closed loop is real: the engine's alarms feed a
:class:`~repro.core.response.ResponseEngine` attached to a
:class:`~repro.faults.degradation.DegradationManager`, so a hard ALARM
isolates the babbling ECU (stopping the storm it detected) and trust
collapse escalates the degradation ladder.  Everything derives from
``(plan, scenario, base seed)`` through :mod:`repro.core.rng`, so the
campaign document is byte-identical across runs.
"""

from __future__ import annotations

from repro.core.layers import Layer
from repro.core.response import ResponseEngine
from repro.faults.chaos import CHAOS_SCENARIOS, DEFAULT_DURATION, _scenario_window
from repro.faults.degradation import DegradationManager, ServiceLevel
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, get_plan
from repro.faults.resilience import CircuitBreaker, VirtualClock
from repro.core.rng import python_rng
from repro.obs.events import EventKind, EventLog
from repro.sentinel.correlator import CascadeCorrelator
from repro.sentinel.engine import SentinelEngine
from repro.ssi.did import Did, DidDocument, KeyPair
from repro.ssi.registry import (
    CachingResolver,
    RegistryUnavailable,
    VerifiableDataRegistry,
)

__all__ = ["run_sentinel_scenario", "run_sentinel_campaign",
           "sentinel_scenario_names", "SCENARIO_ANCHORS"]

#: Legit per-scenario CAN senders (names match the scenario flow graph).
_SENDERS: dict[str, tuple[str, ...]] = {
    "pkes-legacy": ("pkes-receiver", "body-control", "immobilizer"),
    "onboard-insecure": ("zc-front", "zc-rear", "brake-ecu"),
    "onboard-hardened": ("zc-left", "zc-right", "ecu-can-1"),
}

#: Telemetry source -> nearest flow-graph node, per scenario (the
#: cascade correlator's bridge between runtime names and graph names).
SCENARIO_ANCHORS: dict[str, dict[str, str]] = {
    "pkes-legacy": {
        "uwb-anchor": "pkes-receiver",
        "ecu-babbler": "body-control",
        "zonal-can": "body-control",
        "pkes-receiver": "pkes-receiver",
        "body-control": "body-control",
        "immobilizer": "immobilizer",
    },
    "onboard-insecure": {
        "uwb-anchor": "adas-cam",
        "ecu-babbler": "infotainment-amp",
        "zonal-can": "zc-front",
        "telemetry-backend": "telematics",
        "zc-front": "zc-front",
        "zc-rear": "zc-rear",
        "brake-ecu": "brake-ecu",
    },
    "onboard-hardened": {
        "uwb-anchor": "zc-left",
        "ecu-babbler": "ecu-can-2",
        "zonal-can": "zc-left",
        "telemetry-backend": "telematics",
        "did-registry": "telematics",
        "zc-left": "zc-left",
        "zc-right": "zc-right",
        "ecu-can-1": "ecu-can-1",
    },
    "cariad-breach": {
        "telemetry-backend": "telemetry-backend",
    },
    "maas-platform": {
        "telemetry-backend": "cloud-backend",
        "did-registry": "platform-gateway",
    },
}


def sentinel_scenario_names() -> list[str]:
    return list(CHAOS_SCENARIOS)


def _build_correlator(name: str) -> CascadeCorrelator:
    from repro.flow.graph import build_flow_graph
    from repro.lint.scenarios import build_scenario

    graph = build_flow_graph(build_scenario(name))
    return CascadeCorrelator.from_flow_graph(
        graph, SCENARIO_ANCHORS.get(name, {}))


def run_sentinel_scenario(name: str, plan: FaultPlan, *, base_seed: int = 0,
                          duration: int = DEFAULT_DURATION) -> dict:
    """Stream one scenario's telemetry through the sentinel engine."""
    posture = CHAOS_SCENARIOS.get(name)
    if posture is None:
        raise KeyError(f"unknown sentinel scenario {name!r}; "
                       f"available: {', '.join(CHAOS_SCENARIOS)}")
    if duration < 1:
        raise ValueError("duration must be >= 1 tick")

    injector = FaultInjector(plan, base_seed=base_seed)
    clock = VirtualClock()
    residual_rng = python_rng(f"sentinel/{plan.name}/{name}/residual", base_seed)
    frames_rng = python_rng(f"sentinel/{plan.name}/{name}/frames", base_seed)
    latency_rng = python_rng(f"sentinel/{plan.name}/{name}/latency", base_seed)

    log = EventLog(capacity=8192)
    response = ResponseEngine(escalation_threshold=8)
    manager = DegradationManager(
        degrade_threshold=posture.degrade_threshold,
        degrade_streak=posture.degrade_streak,
        recovery_streak=posture.recovery_streak,
        allow_recovery=posture.allow_recovery)
    manager.attach(response)
    engine = SentinelEngine(name, correlator=_build_correlator(name),
                            response=response)
    detach = engine.attach(log)

    breaker: CircuitBreaker | None = None
    if "cloud" in posture.subsystems and posture.resilient:
        breaker = CircuitBreaker("telemetry-backend", clock=clock,
                                 failure_threshold=3, recovery_time_s=3.0)

    resolver: CachingResolver | None = None
    did: Did | None = None
    registry_down = {"down": False}
    if "ssi" in posture.subsystems and posture.resilient:
        registry = VerifiableDataRegistry()
        did = Did("vehicle-7")
        registry.register(DidDocument.for_keypair(
            did, KeyPair.from_seed_label("chaos/vehicle-7")))
        resolver = CachingResolver(registry,
                                   unavailable=lambda: registry_down["down"])

    window_start, window_end = _scenario_window(plan, posture.subsystems)
    senders = _SENDERS.get(name, ())
    attempts = 3 if posture.resilient else 1
    floor_cleared = False

    def fires_after_retries(kind: FaultKind, target: str, t: float) -> bool:
        """A fault only *lands* if every (retried) attempt hits it."""
        for _ in range(attempts):
            if not injector.fires(kind, target, t):
                return False
        return True

    for tick in range(duration):
        t = float(tick)
        clock.now = t

        if "phy" in posture.subsystems:
            corrupted = fires_after_retries(
                FaultKind.PHY_SAMPLE_CORRUPTION, "uwb-anchor", t)
            nlos = (not corrupted) and fires_after_retries(
                FaultKind.PHY_NLOS_BURST, "uwb-anchor", t)
            residual = residual_rng.gauss(0.0, 0.05)
            rejected = False
            if corrupted:
                if posture.resilient:
                    rejected = True  # secure receiver discards the sample
                else:
                    magnitude = injector.magnitude(
                        FaultKind.PHY_SAMPLE_CORRUPTION, "uwb-anchor", t)
                    residual = float(injector.corruption_noise(
                        FaultKind.PHY_SAMPLE_CORRUPTION, "uwb-anchor",
                        1, magnitude)[0])
            elif nlos:
                if posture.resilient:
                    rejected = True
                else:
                    residual = 1.0 + abs(residual_rng.gauss(0.0, 1.0))
            if rejected:
                log.emit(EventKind.RANGING, Layer.PHYSICAL, "uwb-anchor",
                         "secure ranging rejected implausible sample",
                         t=t, rejected=True, residual_m=0.0)
            else:
                log.emit(EventKind.RANGING, Layer.PHYSICAL, "uwb-anchor",
                         f"residual {residual:.2f} m", t=t,
                         rejected=False, residual_m=round(residual, 4))
            manager.report("phy", not corrupted and not nlos)

        if "ivn" in posture.subsystems:
            babbling = injector.fires(FaultKind.IVN_BABBLING_IDIOT,
                                      "ecu-babbler", t)
            for sender in senders:
                frames = frames_rng.randint(3, 5)
                log.emit(EventKind.FRAME_SENT, Layer.NETWORK, "zonal-can",
                         f"{sender}: {frames} frame(s)", t=t,
                         sender=sender, frames=frames)
            babbler_active = (babbling and "ecu-babbler"
                              not in response.isolated_components())
            if babbler_active:
                # A hardened gateway rate-polices the port; a flat bus
                # carries the full storm.
                frames = 8 if posture.resilient else 24
                log.emit(EventKind.FRAME_SENT, Layer.NETWORK, "zonal-can",
                         f"ecu-babbler: {frames} frame(s)", t=t,
                         sender="ecu-babbler", frames=frames)
            drop = fires_after_retries(FaultKind.IVN_FRAME_DROP,
                                       "zonal-can", t)
            flip = fires_after_retries(FaultKind.IVN_BIT_FLIP,
                                       "zonal-can", t)
            if flip and posture.resilient:
                log.emit(EventKind.MAC_REJECTED, Layer.NETWORK, "zonal-can",
                         "SecOC MAC verification failed", t=t)
            ok = (not (babbler_active and not posture.resilient)
                  and not drop and not flip)
            manager.report("ivn", ok)

        if "cloud" in posture.subsystems:
            def attempt_once(now: float) -> str:
                if injector.fires(FaultKind.CLOUD_OUTAGE,
                                  "telemetry-backend", now):
                    return "5xx"
                if injector.fires(FaultKind.CLOUD_TIMEOUT,
                                  "telemetry-backend", now):
                    return "timeout"
                if injector.fires(FaultKind.CLOUD_LATENCY,
                                  "telemetry-backend", now):
                    return "timeout"
                return "ok"

            latency_ms = latency_rng.uniform(40.0, 120.0)
            if breaker is not None:
                if not breaker.allow():
                    status = "shed"
                else:
                    status = "ok"
                    for _ in range(attempts):
                        status = attempt_once(t)
                        if status == "ok":
                            break
                    if status == "ok":
                        breaker.record_success()
                    else:
                        breaker.record_failure()
            else:
                status = attempt_once(t)
            if status != "ok":
                latency_ms = 400.0
            log.emit(EventKind.CLOUD_REQUEST, Layer.DATA, "telemetry-backend",
                     f"GET /telemetry -> {status}", t=t, status=status,
                     latency_ms=round(latency_ms, 1))
            manager.report("cloud", status == "ok")

        if "ssi" in posture.subsystems:
            down = injector.fires(FaultKind.SSI_REGISTRY_DOWN,
                                  "did-registry", t)
            registry_down["down"] = down
            if resolver is not None and did is not None:
                try:
                    resolver.resolve(did)
                    status = "stale" if down else "ok"
                except RegistryUnavailable:
                    status = "fail"
            else:
                status = "fail" if down else "ok"
            log.emit(EventKind.DID_RESOLUTION, Layer.SOFTWARE_PLATFORM,
                     "did-registry", f"resolve vehicle-7 -> {status}",
                     t=t, status=status)
            manager.report("ssi", status != "fail")

        engine.tick(t)
        manager.tick(t)

        if posture.resilient and not floor_cleared and t >= window_end:
            manager.clear_response_floor()
            floor_cleared = True

    detach()
    sentinel = engine.to_dict()
    degradation = manager.to_dict()
    first_alarm = sentinel["firstAlarmT"]
    safe_stop_t = next(
        (change["t"] for change in degradation["changes"]
         if change["level"] == ServiceLevel.SAFE_STOP.name.lower()), None)
    lead = (safe_stop_t - first_alarm
            if safe_stop_t is not None and first_alarm is not None else None)
    return {
        "scenario": posture.name,
        "description": posture.description,
        "resilient": posture.resilient,
        "durationTicks": duration,
        "window": {"start": window_start, "end": window_end},
        "faults": {"injected": injector.count,
                   "byKind": injector.count_by_kind()},
        "sentinel": sentinel,
        "response": {"alerts": len(response.decisions),
                     "isolated": sorted(response.isolated_components())},
        "degradation": degradation,
        "detection": {
            "alarmRaised": first_alarm is not None,
            "firstAlarmT": first_alarm,
            "alarmIncidents": len(sentinel["incidents"]),
            "trustCollapsed": engine.trust.collapsed(),
            "safeStopT": safe_stop_t,
            "leadTicks": lead,
            "detectedBeforeSafeStop": (
                first_alarm is not None
                and (safe_stop_t is None or first_alarm < safe_stop_t)),
        },
    }


def run_sentinel_campaign(scenarios: list[str], plan_name: str, *,
                          base_seed: int = 0,
                          duration: int = DEFAULT_DURATION) -> dict:
    """Run several scenarios under one plan; assemble the report doc."""
    from repro import __version__

    plan = get_plan(plan_name)
    results = [run_sentinel_scenario(name, plan, base_seed=base_seed,
                                     duration=duration)
               for name in scenarios]
    detected = sorted(r["scenario"] for r in results
                      if r["detection"]["alarmRaised"])
    clean = sorted(r["scenario"] for r in results
                   if not r["detection"]["alarmRaised"])
    collapsed = sorted({source for r in results
                        for source in r["detection"]["trustCollapsed"]})
    return {
        "version": "1.0",
        "tool": {"name": "repro-sentinel", "version": __version__},
        "plan": plan.to_dict(),
        "baseSeed": base_seed,
        "scenarios": results,
        "summary": {
            "scenarioCount": len(results),
            "alarmIncidents": sum(r["detection"]["alarmIncidents"]
                                  for r in results),
            "scenariosDetected": detected,
            "scenariosClean": clean,
            "trustCollapsed": collapsed,
        },
    }
