"""The streaming sentinel: events in, alarms + trust + incidents out.

:class:`SentinelEngine` attaches to a live :class:`~repro.obs.events.EventLog`
through its ``subscribe`` hook — emission *pushes* telemetry into the
engine, nothing polls a buffer — and closes the paper's detect→respond
loop:

1. each event is routed to the per-layer detectors (O(1) accumulation);
2. at every virtual-clock tick the detectors flush risk signals, which
   drive the per-``(source, detector)`` alarm state machines and the
   per-source trust scores;
3. machines entering ALARM raise :class:`~repro.core.response.SecurityAlert`s
   into the attached :class:`~repro.core.response.ResponseEngine` (hard
   physics gates at CRITICAL, probabilistic alarms at WARNING) whose
   decisions the PR-5 ``subscribe`` hook already forwards to the
   :class:`~repro.faults.degradation.DegradationManager`;
4. a trust score first dropping below its collapse threshold raises a
   CRITICAL trust-collapse alert — sustained distrust is actionable
   even when no single detector crossed its alarm bar;
5. the cascade correlator groups flow-adjacent alarms into incidents.

The engine's own decisions land back on the same timeline as typed
``ALARM_TRANSITION`` / ``TRUST_UPDATE`` / ``INCIDENT`` events; it
ignores those kinds on input (no feedback loops) and it ignores
``FAULT_INJECTED`` — the injector's ground truth would be an oracle a
deployed IDS does not have.
"""

from __future__ import annotations

from typing import Callable

from repro.core.layers import Layer
from repro.core.response import ResponseEngine, SecurityAlert, Severity
from repro.obs.events import EventKind, EventLog, SimEvent
from repro.sentinel.alarms import AlarmMachine, AlarmState, AlarmTransition
from repro.sentinel.correlator import CascadeCorrelator
from repro.sentinel.detectors import Detector, Signal, default_detectors
from repro.sentinel.trust import TrustRegistry

__all__ = ["SentinelEngine", "MACHINE_PARAMS", "IGNORED_KINDS"]

#: Event kinds the engine must never consume: its own outputs, the
#: response/degradation plumbing it feeds, and the injector's oracle.
IGNORED_KINDS = frozenset({
    EventKind.ALARM_TRANSITION, EventKind.TRUST_UPDATE, EventKind.INCIDENT,
    EventKind.IDS_ALERT, EventKind.RESPONSE_ACTION,
    EventKind.DEGRADATION_CHANGE, EventKind.BREAKER_STATE,
    EventKind.FAULT_INJECTED,
})

#: Per-detector alarm-machine hysteresis: (suspect_after, alarm_after,
#: clear_after_s).  Cloud outages need a longer run than bus storms —
#: a breaker-contained blip must stay below ALARM while a sustained
#: outage must not.
MACHINE_PARAMS: dict[str, tuple[int, int, float]] = {
    "can-rate": (2, 4, 4.0),
    "secoc-auth": (2, 4, 6.0),
    "ranging-residual": (2, 4, 4.0),
    "cloud-budget": (2, 6, 4.0),
    "did-resolution": (2, 6, 4.0),
}


class SentinelEngine:
    """Streaming alarm + trust engine for one scenario."""

    def __init__(self, scenario: str, *,
                 detectors: list[Detector] | None = None,
                 correlator: CascadeCorrelator | None = None,
                 response: ResponseEngine | None = None,
                 trust: TrustRegistry | None = None,
                 trigger_floor: float = 0.3) -> None:
        self.scenario = scenario
        self.detectors = detectors if detectors is not None else default_detectors()
        self.correlator = correlator if correlator is not None else CascadeCorrelator()
        self.response = response
        self.trust = trust if trust is not None else TrustRegistry()
        self.trigger_floor = trigger_floor
        self.machines: dict[tuple[str, str], AlarmMachine] = {}
        self.events_consumed = 0
        self.events_emitted = 0
        self.first_alarm_t: float | None = None
        self.alarm_transitions = 0
        self._by_kind: dict[EventKind, list[Detector]] = {}
        for detector in self.detectors:
            for kind in detector.kinds:
                self._by_kind.setdefault(kind, []).append(detector)
        self._seen: set[str] = set()
        self._layer_of: dict[str, Layer] = {}
        self._alerted_collapse: set[str] = set()
        self._log: EventLog | None = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, log: EventLog) -> Callable[[], None]:
        """Subscribe to a live event log; returns the unsubscribe hook.

        The engine also emits its own decisions into the same log (and
        ignores them on input), so one timeline carries telemetry and
        verdicts interleaved.
        """
        self._log = log
        return log.subscribe(self.on_event)

    # -- streaming input ------------------------------------------------------

    def on_event(self, event: SimEvent) -> None:
        """Consume one pushed event (kept O(1): route + accumulate)."""
        if event.kind in IGNORED_KINDS:
            return
        self.events_consumed += 1
        consumers = self._by_kind.get(event.kind)
        if not consumers:
            return
        source = str(event.fields.get("sender", event.source))
        self._seen.add(source)
        self._layer_of[source] = event.layer
        for detector in consumers:
            detector.on_event(event)

    # -- the tick -------------------------------------------------------------

    def tick(self, t: float) -> list[AlarmTransition]:
        """Flush detectors, advance machines/trust/incidents for tick ``t``."""
        signals = [signal for detector in self.detectors
                   for signal in detector.flush(t)]

        by_source: dict[str, dict[str, float]] = {}
        hard_sources: set[str] = set()
        triggered: set[tuple[str, str]] = set()
        transitions: list[AlarmTransition] = []

        for signal in signals:
            by_source.setdefault(signal.source, {})[signal.detector] = signal.risk
            if signal.hard:
                hard_sources.add(signal.source)
            if signal.risk < self.trigger_floor and not signal.hard:
                continue  # weak evidence feeds trust, not the alarm ladder
            key = (signal.source, signal.detector)
            machine = self.machines.get(key)
            if machine is None:
                suspect, alarm, clear = MACHINE_PARAMS.get(
                    signal.detector, (2, 4, 4.0))
                machine = self.machines[key] = AlarmMachine(
                    signal.source, signal.detector, suspect_after=suspect,
                    alarm_after=alarm, clear_after_s=clear)
            triggered.add(key)
            transition = machine.trigger(signal)
            if transition is not None:
                transitions.append(transition)
                self._emit_transition(transition)
                if transition.state is AlarmState.ALARM:
                    self._on_alarm(transition, signal)

        for key, machine in self.machines.items():
            if key not in triggered:
                transition = machine.quiet(t)
                if transition is not None:
                    transitions.append(transition)
                    self._emit_transition(transition)
        self._close_clear_incidents(t)

        # Trust: evidence for signalled sources, reinforcement for quiet
        # ones that reported telemetry, decay for the silent.
        for source in sorted(self._seen | set(by_source)):
            risks = by_source.get(source, {})
            trust_events = self.trust.update(t, source, risks,
                                             source in hard_sources)
            self._emit_trust(trust_events, source)
        trust_events = self.trust.decay_except(t, self._seen | set(by_source))
        for event in trust_events:
            self._emit_trust([event], event.source)
        self._seen.clear()
        return transitions

    # -- alarm / incident / response plumbing ---------------------------------

    def _on_alarm(self, transition: AlarmTransition, signal: Signal) -> None:
        if self.first_alarm_t is None:
            self.first_alarm_t = transition.t
        incident, action = self.correlator.on_alarm(
            transition.t, transition.source, transition.detector)
        self._emit(EventKind.INCIDENT, transition.source,
                   f"incident #{incident.incident_id} {action} "
                   f"({len(incident.sources)} source(s))",
                   t=transition.t, incident=incident.incident_id,
                   action=action, sources=len(incident.sources))
        if self.response is not None:
            severity = Severity.CRITICAL if signal.hard else Severity.WARNING
            self.response.handle(SecurityAlert(
                time=transition.t,
                layer=self._layer_of.get(transition.source,
                                         Layer.SYSTEM_OF_SYSTEMS),
                component=transition.source,
                attack_name=f"sentinel:{transition.detector}",
                severity=severity,
                confidence=max(0.5, min(1.0, signal.risk))))

    def _close_clear_incidents(self, t: float) -> None:
        alarmed = {source for (source, _), machine in self.machines.items()
                   if machine.state is AlarmState.ALARM}
        tracked = {source for (source, _) in self.machines}
        cleared = tracked - alarmed
        for incident in self.correlator.on_all_clear(t, cleared):
            self._emit(EventKind.INCIDENT, "sentinel",
                       f"incident #{incident.incident_id} closed",
                       t=t, incident=incident.incident_id, action="closed",
                       sources=len(incident.sources))

    def _emit_trust(self, events: list, source: str) -> None:
        for trust_event in events:
            self._emit(EventKind.TRUST_UPDATE, trust_event.source,
                       f"trust {trust_event.kind}: "
                       f"{trust_event.phase.value} "
                       f"(score {trust_event.score:.2f})",
                       t=trust_event.t, change=trust_event.kind,
                       phase=trust_event.phase.value,
                       score=round(trust_event.score, 4))
            if (trust_event.kind == "collapse" and self.response is not None
                    and trust_event.source not in self._alerted_collapse):
                self._alerted_collapse.add(trust_event.source)
                self.response.handle(SecurityAlert(
                    time=trust_event.t,
                    layer=self._layer_of.get(trust_event.source,
                                             Layer.SYSTEM_OF_SYSTEMS),
                    component=trust_event.source,
                    attack_name="sentinel:trust-collapse",
                    severity=Severity.CRITICAL,
                    confidence=max(0.5, min(1.0, 1.0 - trust_event.score))))

    def _emit_transition(self, transition: AlarmTransition) -> None:
        self.alarm_transitions += 1
        self._emit(EventKind.ALARM_TRANSITION, transition.source,
                   f"{transition.detector} -> {transition.state.value} "
                   f"({transition.reason})",
                   t=transition.t, detector=transition.detector,
                   state=transition.state.value,
                   risk=round(transition.risk, 4))

    def _emit(self, kind: EventKind, source: str, message: str, *,
              t: float, **fields) -> None:
        if self._log is not None:
            self.events_emitted += 1
            layer = self._layer_of.get(source, Layer.SYSTEM_OF_SYSTEMS)
            self._log.emit(kind, layer, source, message, t=t, **fields)

    # -- reporting ------------------------------------------------------------

    def alarmed_sources(self) -> list[str]:
        return sorted({machine.source for machine in self.machines.values()
                       if machine.first_alarm_t is not None})

    def to_dict(self) -> dict:
        machines = [self.machines[key].to_dict()
                    for key in sorted(self.machines)]
        return {
            "eventsConsumed": self.events_consumed,
            "eventsEmitted": self.events_emitted,
            "firstAlarmT": self.first_alarm_t,
            "alarmTransitions": self.alarm_transitions,
            "alarmedSources": self.alarmed_sources(),
            "machines": machines,
            "incidents": self.correlator.to_dict(),
            "trust": self.trust.to_dict(),
        }
