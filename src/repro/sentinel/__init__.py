"""Streaming detection with time-variant trust (paper §V, §VIII).

The paper argues that autonomous systems need *onboard, online*
intrusion detection — alarms raised from live telemetry, not forensic
replays — wired into the degradation ladder so detection changes what
the vehicle *does*.  This package provides:

* :mod:`repro.sentinel.detectors` — per-layer threshold detectors over
  :mod:`repro.obs` event streams (CAN frame-rate storms, SecOC auth
  bursts, UWB ranging residuals, cloud error/latency budgets, DID
  resolution failures);
* :mod:`repro.sentinel.alarms` — hysteretic per-``(source, detector)``
  alarm state machines (IDLE → SUSPECT → ALARM → CLEARED) with hard
  physics gates that jump straight to ALARM;
* :mod:`repro.sentinel.trust` — time-variant per-source trust: EMA
  smoothing, weighted-MAX risk fusion, cold-start → verifying →
  trusted phases, decay without reinforcement, collapse alerts;
* :mod:`repro.sentinel.correlator` — cross-layer cascade correlation
  of co-occurring alarms along :mod:`repro.flow` graph edges into
  campaign-level incidents;
* :mod:`repro.sentinel.engine` — :class:`SentinelEngine`, the
  streaming core that subscribes to a live
  :class:`~repro.obs.events.EventLog` and closes the loop into
  :class:`~repro.core.response.ResponseEngine` /
  :class:`~repro.faults.degradation.DegradationManager`;
* :mod:`repro.sentinel.campaign` — the five scenarios streamed through
  the engine under :mod:`repro.faults` chaos plans
  (``python -m repro sentinel``);
* :mod:`repro.sentinel.report` — the schema-validated sentinel JSON.
"""

from repro.sentinel.alarms import AlarmMachine, AlarmState, AlarmTransition
from repro.sentinel.campaign import (
    SCENARIO_ANCHORS,
    run_sentinel_campaign,
    run_sentinel_scenario,
    sentinel_scenario_names,
)
from repro.sentinel.correlator import CascadeCorrelator, Incident
from repro.sentinel.detectors import (
    CanRateDetector,
    CloudBudgetDetector,
    Detector,
    DidResolutionDetector,
    RangingResidualDetector,
    SecocAuthDetector,
    Signal,
    default_detectors,
)
from repro.sentinel.engine import IGNORED_KINDS, MACHINE_PARAMS, SentinelEngine
from repro.sentinel.report import SentinelSchemaError, validate_sentinel_dict
from repro.sentinel.trust import (
    DEFAULT_WEIGHTS,
    TrustEvent,
    TrustPhase,
    TrustRegistry,
    TrustScore,
)

__all__ = [
    "Signal",
    "Detector",
    "CanRateDetector",
    "SecocAuthDetector",
    "RangingResidualDetector",
    "CloudBudgetDetector",
    "DidResolutionDetector",
    "default_detectors",
    "AlarmState",
    "AlarmTransition",
    "AlarmMachine",
    "TrustPhase",
    "TrustEvent",
    "TrustScore",
    "TrustRegistry",
    "DEFAULT_WEIGHTS",
    "Incident",
    "CascadeCorrelator",
    "SentinelEngine",
    "MACHINE_PARAMS",
    "IGNORED_KINDS",
    "SCENARIO_ANCHORS",
    "run_sentinel_scenario",
    "run_sentinel_campaign",
    "sentinel_scenario_names",
    "SentinelSchemaError",
    "validate_sentinel_dict",
]
