"""Multi-anchor trust policy and accreditation chains (paper §IV).

The paper's central SSI argument: "hardware, vehicle software, and cloud
components often originate from different companies that may want to
check the authenticity of a piece of software by themselves. This
creates the need for a distributed authentication and certification
infrastructure with **multiple trust anchors**."

:class:`TrustPolicy` holds, per credential type, the set of anchor DIDs
a verifier accepts.  An issuer is trusted either directly (it *is* an
anchor) or through an **accreditation chain**: anchor → accreditation
credential → intermediate issuer → ... → leaf issuer, each hop a signed
"AccreditationCredential" whose subject is the next issuer.  This is the
SSI analogue of a certificate chain, but with as many independent roots
as there are stakeholders — the property the Fig. 7 bench quantifies
against a single-root PKI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.vc import VerifiableCredential, VerificationResult

__all__ = ["TrustPolicy", "ACCREDITATION_TYPE"]

ACCREDITATION_TYPE = "AccreditationCredential"


@dataclass
class TrustPolicy:
    """Anchors per credential type + accreditation-chain verification.

    Args:
        registry: the shared verifiable data registry.
        max_chain_length: accreditation hops allowed between an anchor
            and a leaf issuer (1 = issuer must be directly accredited).
    """

    registry: VerifiableDataRegistry
    max_chain_length: int = 3
    _anchors: dict[str, set[str]] = field(default_factory=dict)
    _accreditations: dict[str, list[VerifiableCredential]] = field(default_factory=dict)

    def add_anchor(self, credential_type: str, anchor_did: str) -> None:
        """Accept ``anchor_did`` as a root of trust for ``credential_type``."""
        self._anchors.setdefault(credential_type, set()).add(str(anchor_did))

    def anchors_for(self, credential_type: str) -> set[str]:
        return set(self._anchors.get(credential_type, set()))

    def record_accreditation(self, credential: VerifiableCredential) -> None:
        """Register an accreditation credential (issuer accredits subject)."""
        if credential.credential_type != ACCREDITATION_TYPE:
            raise ValueError("not an accreditation credential")
        self._accreditations.setdefault(credential.subject, []).append(credential)

    def _issuer_trusted(self, issuer: str, credential_type: str, *,
                        now: float, depth: int) -> bool:
        anchors = self._anchors.get(credential_type, set())
        if issuer in anchors:
            return True
        if depth >= self.max_chain_length:
            return False
        for accreditation in self._accreditations.get(issuer, []):
            scope = accreditation.claims.get("accreditedFor", [])
            if credential_type not in scope:
                continue
            if not accreditation.verify(self.registry, now=now):
                continue
            if self._issuer_trusted(accreditation.issuer, credential_type,
                                    now=now, depth=depth + 1):
                return True
        return False

    def verify_credential(self, credential: VerifiableCredential, *,
                          now: float,
                          check_revocation: bool = True) -> VerificationResult:
        """Cryptographic verification + trust-anchor policy check.

        ``check_revocation=False`` is the offline-verification path: only
        cached/anchored material is consulted (see
        :mod:`repro.ssi.charging`).
        """
        result = credential.verify(self.registry, now=now,
                                   check_revocation=check_revocation)
        if not result:
            return result
        if not self._issuer_trusted(credential.issuer, credential.credential_type,
                                    now=now, depth=0):
            return VerificationResult(
                False, f"issuer {credential.issuer} not reachable from any anchor")
        return VerificationResult(True)

    def chain_length_to_anchor(self, issuer: str, credential_type: str, *,
                               now: float) -> int | None:
        """Shortest accreditation chain from an anchor to ``issuer`` (0 = anchor).

        Returns None when no chain exists within ``max_chain_length``.
        """
        if issuer in self._anchors.get(credential_type, set()):
            return 0
        best: int | None = None
        for accreditation in self._accreditations.get(issuer, []):
            if credential_type not in accreditation.claims.get("accreditedFor", []):
                continue
            if not accreditation.verify(self.registry, now=now):
                continue
            parent = self.chain_length_to_anchor(accreditation.issuer,
                                                 credential_type, now=now)
            if parent is not None and parent + 1 <= self.max_chain_length:
                candidate = parent + 1
                if best is None or candidate < best:
                    best = candidate
        return best
