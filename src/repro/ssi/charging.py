"""Plug-and-charge authentication: hierarchical PKI vs SSI (paper §IV-C).

"We have many charging station operators, different vehicle types, and
many possible charging service providers ... ISO-15118 builds up a
complex public key infrastructure; it was shown in [32] that this can
also be done by using SSI technology."

Two interchangeable flows over the same cast (vehicle, charging-station
operator CPO, e-mobility provider eMSP):

* :class:`Iso15118Pki` — a single V2G root CA, sub-CAs per role, X.509-
  style chains; verification requires the full chain and an online OCSP
  analogue. Roaming means every CPO must trust the same single root.
* :class:`SsiChargingFlow` — the vehicle holds a ``ChargingContract``
  credential from its eMSP; the CPO trusts any eMSP anchored in its
  policy (multiple, independent anchors) and can verify **offline** —
  the [34] scenario — because only cached anchor documents are needed.

The Fig. 7 bench compares anchor counts, chain lengths, message counts,
and offline capability between the two.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.ssi.did import KeyPair
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.trust import TrustPolicy
from repro.ssi.wallet import Wallet

__all__ = ["CertError", "Certificate", "Iso15118Pki", "ChargeAuthorization", "SsiChargingFlow", "CHARGING_CONTRACT"]

CHARGING_CONTRACT = "ChargingContract"


class CertError(Exception):
    """Raised for malformed or unverifiable certificates."""


@dataclass(frozen=True)
class Certificate:
    """A minimal X.509 stand-in: subject, issuer, public key, signature."""

    subject: str
    issuer: str
    public_key: bytes
    signature: bytes

    def signing_input(self) -> bytes:
        return f"{self.subject}|{self.issuer}".encode() + self.public_key


class Iso15118Pki:
    """Single-root hierarchical PKI for plug-and-charge.

    Structure: V2G root → {CPO sub-CA, eMSP sub-CA} → leaf certs
    (charging stations, contract certs). All parties must embed the one
    root — the interoperability pain point the paper contrasts SSI with.
    """

    def __init__(self, root_name: str = "v2g-root") -> None:
        self._keys: dict[str, KeyPair] = {}
        self._certs: dict[str, Certificate] = {}
        self._revoked: set[str] = set()
        self.root_name = root_name
        root_key = self._keypair(root_name)
        self._certs[root_name] = Certificate(
            root_name, root_name, root_key.public,
            root_key.sign(f"{root_name}|{root_name}".encode() + root_key.public),
        )

    def _keypair(self, name: str) -> KeyPair:
        if name not in self._keys:
            self._keys[name] = KeyPair.from_seed_label(f"pki:{name}")
        return self._keys[name]

    def issue(self, subject: str, issuer: str) -> Certificate:
        """Issue a certificate for ``subject`` signed by ``issuer``."""
        if issuer not in self._certs:
            raise CertError(f"unknown issuer {issuer!r}")
        subject_key = self._keypair(subject)
        issuer_key = self._keypair(issuer)
        cert = Certificate(
            subject, issuer, subject_key.public,
            issuer_key.sign(f"{subject}|{issuer}".encode() + subject_key.public),
        )
        self._certs[subject] = cert
        return cert

    def revoke(self, subject: str) -> None:
        self._revoked.add(subject)

    def chain_to_root(self, subject: str) -> list[Certificate]:
        """The verification chain leaf → root; raises on a broken chain."""
        chain = []
        current = subject
        for _ in range(10):
            cert = self._certs.get(current)
            if cert is None:
                raise CertError(f"missing certificate {current!r}")
            chain.append(cert)
            if cert.issuer == cert.subject:
                return chain
            current = cert.issuer
        raise CertError("chain too long")

    def verify(self, subject: str, *, online: bool = True) -> bool:
        """Verify the chain; revocation is only checkable online (OCSP)."""
        from repro.crypto import ed25519

        try:
            chain = self.chain_to_root(subject)
        except CertError:
            return False
        if chain[-1].subject != self.root_name:
            return False
        for cert in chain:
            issuer_key = self._keys[cert.issuer]
            if not ed25519.verify(issuer_key.public, cert.signing_input(),
                                  cert.signature):
                return False
            if online and cert.subject in self._revoked:
                return False
        return True

    @property
    def trust_anchor_count(self) -> int:
        return 1  # the defining property of the hierarchical design

    def message_count(self) -> int:
        """Messages in the ISO 15118 contract-authentication exchange
        (certificate installation + chain transfer + OCSP)."""
        return 6


@dataclass(frozen=True)
class ChargeAuthorization:
    """Outcome of a charging authorization attempt."""

    authorized: bool
    vehicle: str
    provider: str
    offline: bool
    reason: str


@dataclass
class SsiChargingFlow:
    """SSI-based plug-and-charge: contract credentials + anchor policy.

    The CPO's trust policy anchors every eMSP it roams with — adding a
    roaming partner is one ``add_anchor`` call, not a re-rooting of a
    PKI. Offline mode skips registry revocation lookups and relies on
    cached DID documents (the [34] offline-token scenario).
    """

    registry: VerifiableDataRegistry
    policy: TrustPolicy
    _cached_docs: dict[str, object] = field(default_factory=dict)

    def subscribe(self, vehicle: Wallet, provider: Wallet, *, now: float,
                  tariff: str = "standard") -> None:
        """The eMSP issues a charging contract to the vehicle."""
        credential = provider.issue(
            credential_type=CHARGING_CONTRACT,
            subject=vehicle.did,
            claims={"tariff": tariff, "provider": str(provider.did)},
            issued_at=now,
        )
        vehicle.store(credential)

    def cache_for_offline(self, dids: list[str]) -> None:
        """Pre-cache DID documents at the charging station."""
        for did in dids:
            self._cached_docs[did] = self.registry.resolve(did)

    def authorize(self, vehicle: Wallet, *, now: float,
                  offline: bool = False) -> ChargeAuthorization:
        """The charging station authorizes a plug-in vehicle."""
        challenge = hashlib.sha256(f"plug:{vehicle.did}:{now}".encode()).digest()[:16]
        try:
            presentation = vehicle.present([CHARGING_CONTRACT], challenge)
        except KeyError:
            return ChargeAuthorization(False, str(vehicle.did), "-", offline,
                                       "no charging contract")
        contract = presentation.credentials[0]
        if offline:
            # Offline: cached DID documents only, no revocation lookup.
            for did in (presentation.holder, contract.issuer):
                if did not in self._cached_docs:
                    return ChargeAuthorization(False, str(vehicle.did),
                                               contract.issuer, offline,
                                               f"{did} not cached for offline use")
            result = presentation.verify(self.registry, now=now,
                                         expected_challenge=challenge,
                                         check_revocation=False)
        else:
            result = presentation.verify(self.registry, now=now,
                                         expected_challenge=challenge)
        if not result:
            return ChargeAuthorization(False, str(vehicle.did), contract.issuer,
                                       offline, result.reason)
        trust = self.policy.verify_credential(contract, now=now,
                                              check_revocation=not offline)
        if not trust:
            return ChargeAuthorization(False, str(vehicle.did), contract.issuer,
                                       offline, trust.reason)
        return ChargeAuthorization(True, str(vehicle.did), contract.issuer,
                                   offline, "ok")

    def message_count(self) -> int:
        """Messages in the SSI exchange (challenge + presentation + result)."""
        return 3
