"""Software & platform layer (paper §IV, Fig. 7): self-sovereign identity
for software-defined vehicles.

* :mod:`repro.ssi.did` / :mod:`repro.ssi.registry` — DIDs, DID
  documents, and the immutable verifiable data registry.
* :mod:`repro.ssi.vc` / :mod:`repro.ssi.wallet` — verifiable
  credentials, presentations, and actor wallets.
* :mod:`repro.ssi.trust` — multi-anchor trust policies with
  accreditation chains (the "multiple trust anchors" requirement).
* :mod:`repro.ssi.sdv` — zero-trust component reconfiguration (§IV-A).
* :mod:`repro.ssi.documents` — signed/linked/encrypted evidence data (§IV-B).
* :mod:`repro.ssi.charging` — plug-and-charge, ISO 15118 PKI vs SSI (§IV-C).
"""

from repro.ssi.charging import (
    CHARGING_CONTRACT,
    CertError,
    Certificate,
    ChargeAuthorization,
    Iso15118Pki,
    SsiChargingFlow,
)
from repro.ssi.did import Did, DidDocument, KeyPair, VerificationMethod
from repro.ssi.documents import DocumentStore, EncryptedEnvelope, SignedDocument
from repro.ssi.mobility import (
    MobilityServiceDirectory,
    OfflineToken,
    OfflineTokenBook,
    SpendRecord,
)
from repro.ssi.registry import (
    CachingResolver,
    RegistryEntry,
    RegistryUnavailable,
    VerifiableDataRegistry,
)
from repro.ssi.sdv import (
    HW_CREDENTIAL,
    SW_CREDENTIAL,
    PlacementDecision,
    ReconfigurationController,
)
from repro.ssi.trust import ACCREDITATION_TYPE, TrustPolicy
from repro.ssi.vc import VerifiableCredential, VerifiablePresentation, VerificationResult
from repro.ssi.wallet import Wallet

__all__ = [
    "Did",
    "DidDocument",
    "KeyPair",
    "VerificationMethod",
    "VerifiableDataRegistry",
    "RegistryEntry",
    "RegistryUnavailable",
    "CachingResolver",
    "VerifiableCredential",
    "VerifiablePresentation",
    "VerificationResult",
    "Wallet",
    "TrustPolicy",
    "ACCREDITATION_TYPE",
    "ReconfigurationController",
    "PlacementDecision",
    "HW_CREDENTIAL",
    "SW_CREDENTIAL",
    "SignedDocument",
    "DocumentStore",
    "EncryptedEnvelope",
    "MobilityServiceDirectory",
    "OfflineTokenBook",
    "OfflineToken",
    "SpendRecord",
    "Iso15118Pki",
    "Certificate",
    "CertError",
    "SsiChargingFlow",
    "ChargeAuthorization",
    "CHARGING_CONTRACT",
]
