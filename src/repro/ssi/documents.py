"""Signed, linked, and encrypted evidence documents (paper §IV-B).

"Crash reports, logs, or scenario data ... are needed to analyze errors
or unexpected behaviors ... it is important to ensure the authenticity
of such data. ... In complex scenarios, such signed documents need to be
linked, e.g., to describe a complex scenario with different hardware and
software components."

Two primitives:

* :class:`SignedDocument` — a content document signed by its author and
  *linked* (by content hash) to other documents; :func:`verify_chain`
  walks the link graph and checks every signature and hash, so one
  tampered document invalidates everything that references it;
* :class:`EncryptedEnvelope` — confidentiality for privacy-sensitive
  payloads: ephemeral X25519 ECDH to the recipient's key, HKDF, then
  AES-GCM (sign-then-encrypt with the author's Ed25519 signature inside).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.crypto import ed25519
from repro.crypto.kdf import hkdf
from repro.crypto.modes import AuthenticationError, Gcm
from repro.crypto.x25519 import x25519, x25519_base
from repro.ssi.did import KeyPair
from repro.ssi.registry import VerifiableDataRegistry

__all__ = ["SignedDocument", "DocumentStore", "EncryptedEnvelope"]


@dataclass(frozen=True)
class SignedDocument:
    """An authored document linking to prior documents by hash."""

    author: str                 # DID string
    doc_type: str               # "crash-report", "sensor-log", "scenario", ...
    content: dict
    links: tuple[str, ...]      # content hashes of referenced documents
    signature: bytes = b""

    def signing_input(self) -> bytes:
        body = {
            "author": self.author,
            "type": self.doc_type,
            "content": self.content,
            "links": list(self.links),
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()

    def content_hash(self) -> str:
        return hashlib.sha256(self.signing_input() + self.signature).hexdigest()

    @classmethod
    def create(cls, *, author_did: str, author_key: KeyPair, doc_type: str,
               content: dict, links: list[str] | None = None) -> "SignedDocument":
        draft = cls(author_did, doc_type, dict(content), tuple(links or ()))
        return replace(draft, signature=author_key.sign(draft.signing_input()))


@dataclass
class DocumentStore:
    """Hash-addressed storage with chain verification."""

    registry: VerifiableDataRegistry
    _docs: dict[str, SignedDocument] = field(default_factory=dict)

    def add(self, document: SignedDocument) -> str:
        """Store a document; all its links must already be present."""
        for link in document.links:
            if link not in self._docs:
                raise KeyError(f"dangling link {link[:12]}...")
        digest = document.content_hash()
        self._docs[digest] = document
        return digest

    def get(self, digest: str) -> SignedDocument:
        return self._docs[digest]

    def verify_chain(self, digest: str) -> bool:
        """Verify the document at ``digest`` and everything it references."""
        seen: set[str] = set()
        stack = [digest]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            document = self._docs.get(current)
            if document is None or document.content_hash() != current:
                return False
            try:
                author_doc = self.registry.resolve(document.author)
            except KeyError:
                return False
            if not author_doc.verify(document.signing_input(), document.signature):
                return False
            stack.extend(document.links)
        return True


@dataclass(frozen=True)
class EncryptedEnvelope:
    """X25519 + AES-GCM envelope around a signed payload."""

    ephemeral_public: bytes
    nonce: bytes
    ciphertext: bytes
    tag: bytes

    _INFO = b"repro-ssi-envelope"

    @classmethod
    def seal(cls, payload: bytes, *, recipient_x25519_public: bytes,
             sender_signing_key: KeyPair, seed_label: str = "envelope") -> "EncryptedEnvelope":
        """Sign ``payload`` (Ed25519) then encrypt to the recipient."""
        signature = sender_signing_key.sign(payload)
        plaintext = len(signature).to_bytes(2, "big") + signature + payload
        ephemeral_secret = hashlib.sha256(f"eph:{seed_label}".encode()).digest()
        ephemeral_public = x25519_base(ephemeral_secret)
        shared = x25519(ephemeral_secret, recipient_x25519_public)
        key = hkdf(shared, info=cls._INFO, length=16)
        nonce = hashlib.sha256(ephemeral_public).digest()[:12]
        ciphertext, tag = Gcm(key).encrypt(nonce, plaintext, aad=ephemeral_public)
        return cls(ephemeral_public, nonce, ciphertext, tag)

    def open(self, *, recipient_x25519_secret: bytes,
             sender_ed25519_public: bytes) -> bytes | None:
        """Decrypt and verify; returns the payload or None."""
        shared = x25519(recipient_x25519_secret, self.ephemeral_public)
        key = hkdf(shared, info=self._INFO, length=16)
        try:
            plaintext = Gcm(key).decrypt(self.nonce, self.ciphertext, self.tag,
                                         aad=self.ephemeral_public)
        except AuthenticationError:
            return None
        sig_len = int.from_bytes(plaintext[:2], "big")
        signature = plaintext[2 : 2 + sig_len]
        payload = plaintext[2 + sig_len :]
        if not ed25519.verify(sender_ed25519_public, payload, signature):
            return None
        return payload
