"""SDV component reconfiguration with zero-trust mutual authentication
(paper §IV-A, Fig. 7).

"If some control unit fails, software may have to be placed on other
components, and it needs to be ensured that the software and new
hardware are fully compatible ... authentication is essential."

The model: hardware platforms and software components are SSI wallets;
their *vendors* issue

* ``HardwarePlatformCredential`` — attesting a platform's type and
  capabilities;
* ``SoftwareReleaseCredential`` — attesting a software release and the
  platform types it is approved for.

:class:`ReconfigurationController` authorizes a placement only after
**mutual** verification: the software's release credential chains to a
trusted anchor *and* names the target platform type; the hardware's
platform credential chains to a trusted anchor. This is the zero-trust
check of [29]: neither side is trusted by position, only by credential.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ssi.trust import TrustPolicy
from repro.ssi.wallet import Wallet

__all__ = [
    "HW_CREDENTIAL",
    "SW_CREDENTIAL",
    "PlacementDecision",
    "ReconfigurationController",
]

HW_CREDENTIAL = "HardwarePlatformCredential"
SW_CREDENTIAL = "SoftwareReleaseCredential"


@dataclass(frozen=True)
class PlacementDecision:
    """Outcome of a placement authorization."""

    authorized: bool
    software: str
    hardware: str
    reason: str
    verification_steps: int


class ReconfigurationController:
    """Authorizes software placements under a trust policy.

    Args:
        policy: trust policy with anchors for HW and SW credential types.
    """

    def __init__(self, policy: TrustPolicy) -> None:
        self.policy = policy
        self.placements: dict[str, str] = {}  # software did -> hardware did
        self.audit_log: list[PlacementDecision] = []

    def authorize_placement(self, software: Wallet, hardware: Wallet, *,
                            now: float) -> PlacementDecision:
        """Mutually authenticate and check compatibility."""
        steps = 0

        def deny(reason: str) -> PlacementDecision:
            decision = PlacementDecision(False, str(software.did),
                                         str(hardware.did), reason, steps)
            self.audit_log.append(decision)
            return decision

        sw_creds = software.find(SW_CREDENTIAL)
        if not sw_creds:
            return deny("software has no release credential")
        hw_creds = hardware.find(HW_CREDENTIAL)
        if not hw_creds:
            return deny("hardware has no platform credential")

        sw_cred = max(sw_creds, key=lambda c: c.issued_at)
        hw_cred = max(hw_creds, key=lambda c: c.issued_at)

        # Holder binding: each side proves key possession over a fresh
        # challenge (the mutual-authentication half of zero trust).
        for wallet, ctype in ((software, SW_CREDENTIAL), (hardware, HW_CREDENTIAL)):
            challenge = wallet.new_challenge(f"placement:{now}")
            presentation = wallet.present([ctype], challenge)
            steps += 1
            result = presentation.verify(self.policy.registry, now=now,
                                         expected_challenge=challenge)
            if not result:
                return deny(f"{wallet.did} presentation failed: {result.reason}")

        # Anchor policy on both credentials.
        steps += 1
        sw_trust = self.policy.verify_credential(sw_cred, now=now)
        if not sw_trust:
            return deny(f"software credential untrusted: {sw_trust.reason}")
        steps += 1
        hw_trust = self.policy.verify_credential(hw_cred, now=now)
        if not hw_trust:
            return deny(f"hardware credential untrusted: {hw_trust.reason}")

        # Compatibility: the release must approve the platform type.
        steps += 1
        platform_type = hw_cred.claims.get("platformType")
        approved = sw_cred.claims.get("approvedPlatforms", [])
        if platform_type not in approved:
            return deny(f"platform {platform_type!r} not approved "
                        f"(release approves {approved})")

        self.placements[str(software.did)] = str(hardware.did)
        decision = PlacementDecision(True, str(software.did), str(hardware.did),
                                     "ok", steps)
        self.audit_log.append(decision)
        return decision

    def failover(self, software: Wallet, candidates: list[Wallet], *,
                 now: float) -> PlacementDecision:
        """Re-place ``software`` on the first authorized candidate.

        The §IV-A failover scenario: a control unit fails and the
        software must move — but only onto compatible, authenticated
        hardware. Returns the last (failed) decision if none qualifies.
        """
        if not candidates:
            raise ValueError("failover needs at least one candidate")
        decision = PlacementDecision(False, str(software.did), "-",
                                     "no candidates", 0)
        for candidate in candidates:
            decision = self.authorize_placement(software, candidate, now=now)
            if decision.authorized:
                return decision
        return decision
