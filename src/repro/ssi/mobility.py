"""Multi-service mobility SSI and offline tokens (paper §IV-C, refs [33], [34]).

"Other services like parking or highway fees have similar
interoperability issues due to many players in the market. For these,
SSI could build a common basis, as investigated in the MoveID project.
Another advantage of SSI solutions is the support for offline scenarios
... combining verifiable credentials and blockchain tokens for traceable
and offline token operations [34]."

Two pieces:

* :class:`MobilityServiceDirectory` — the MoveID claim made executable:
  charging, parking, and tolling operators all verify the *same* wallet
  and credential machinery; onboarding a vehicle to another service is
  one credential, not a new identity silo. :meth:`credential_reuse_ratio`
  quantifies it.
* :class:`OfflineTokenBook` — [34]-style offline-capable payment tokens:
  the issuer signs value tokens bound to a wallet; a merchant without
  connectivity verifies the signature chain offline and records the
  spend; double-spends are undetectable offline but are **traceable and
  attributable** at reconciliation time (the design's documented
  trade-off, which the tests pin).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto import ed25519
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.trust import TrustPolicy
from repro.ssi.wallet import Wallet

__all__ = ["ServiceKind", "MobilityServiceDirectory", "OfflineToken",
           "OfflineTokenBook", "SpendRecord"]

#: Credential types per mobility service (one namespace, shared stack).
ServiceKind = str
SERVICE_CREDENTIALS: dict[ServiceKind, str] = {
    "charging": "ChargingContract",
    "parking": "ParkingContract",
    "tolling": "TollingContract",
}


@dataclass
class MobilityServiceDirectory:
    """Charging / parking / tolling operators over one SSI substrate."""

    registry: VerifiableDataRegistry
    policy: TrustPolicy
    operators: dict[ServiceKind, Wallet] = field(default_factory=dict)

    def register_operator(self, service: ServiceKind, operator: Wallet) -> None:
        if service not in SERVICE_CREDENTIALS:
            raise ValueError(f"unknown service {service!r}")
        self.operators[service] = operator
        self.policy.add_anchor(SERVICE_CREDENTIALS[service], str(operator.did))

    def subscribe(self, vehicle: Wallet, service: ServiceKind, *,
                  now: float) -> None:
        operator = self.operators[service]
        vehicle.store(operator.issue(
            credential_type=SERVICE_CREDENTIALS[service],
            subject=vehicle.did,
            claims={"service": service},
            issued_at=now,
        ))

    def authorize(self, vehicle: Wallet, service: ServiceKind, *,
                  now: float) -> bool:
        """A service operator authorizes the vehicle via presentation."""
        ctype = SERVICE_CREDENTIALS[service]
        challenge = hashlib.sha256(f"{service}:{vehicle.did}:{now}".encode()).digest()[:16]
        try:
            presentation = vehicle.present([ctype], challenge)
        except KeyError:
            return False
        if not presentation.verify(self.registry, now=now,
                                   expected_challenge=challenge):
            return False
        return bool(self.policy.verify_credential(presentation.credentials[0],
                                                  now=now))

    def services_per_identity(self, vehicle: Wallet) -> int:
        """How many mobility services this single DID can use."""
        return len({
            c.credential_type for c in vehicle.credentials
            if c.credential_type in SERVICE_CREDENTIALS.values()
        })


@dataclass(frozen=True)
class OfflineToken:
    """A signed value token bound to a holder DID."""

    token_id: str
    issuer: str
    holder: str
    value: int
    signature: bytes

    def signing_input(self) -> bytes:
        return f"{self.token_id}|{self.issuer}|{self.holder}|{self.value}".encode()


@dataclass(frozen=True)
class SpendRecord:
    """A merchant's offline record of one token spend."""

    token_id: str
    merchant: str
    spender: str
    spend_proof: bytes   # spender's signature over (token, merchant)


class OfflineTokenBook:
    """Issue, spend offline, and reconcile value tokens ([34]).

    Offline verification needs only the issuer's cached public key; the
    cost is that a double-spend across two offline merchants is caught
    only at reconciliation — but then it is *provable* (two spend proofs
    signed by the same holder key), which is the traceability property
    [34] targets.
    """

    def __init__(self, issuer: Wallet, registry: VerifiableDataRegistry) -> None:
        self.issuer = issuer
        self.registry = registry
        self._counter = 0
        self.issued: dict[str, OfflineToken] = {}

    def issue_token(self, holder: Wallet, value: int) -> OfflineToken:
        if value <= 0:
            raise ValueError("token value must be positive")
        self._counter += 1
        token_id = f"tok-{self._counter}"
        draft = OfflineToken(token_id, str(self.issuer.did), str(holder.did),
                             value, b"")
        token = OfflineToken(token_id, draft.issuer, draft.holder, value,
                             self.issuer.keypair.sign(draft.signing_input()))
        self.issued[token_id] = token
        return token

    # -- merchant side (offline) ---------------------------------------------

    @staticmethod
    def spend_proof(token: OfflineToken, spender: Wallet, merchant: str) -> bytes:
        return spender.keypair.sign(
            token.signing_input() + merchant.encode())

    def verify_offline(self, token: OfflineToken, proof: bytes, merchant: str,
                       *, cached_issuer_key: bytes,
                       cached_holder_key: bytes) -> bool:
        """Merchant-side verification with no connectivity.

        Checks the issuer signature on the token and the holder's spend
        proof, both against *cached* keys.
        """
        if not ed25519.verify(cached_issuer_key, token.signing_input(),
                              token.signature):
            return False
        return ed25519.verify(cached_holder_key,
                              token.signing_input() + merchant.encode(), proof)

    # -- reconciliation (online) ----------------------------------------------

    def reconcile(self, records: list[SpendRecord]) -> dict[str, list[SpendRecord]]:
        """Detect double-spends: token ids spent at more than one merchant.

        Returns ``{token_id: [conflicting records]}`` — each conflict
        carries the holder-signed proofs, so the double-spender is
        cryptographically attributable.
        """
        by_token: dict[str, list[SpendRecord]] = {}
        for record in records:
            by_token.setdefault(record.token_id, []).append(record)
        return {
            token_id: spends for token_id, spends in by_token.items()
            if len(spends) > 1
        }
