"""Verifiable credentials and presentations (paper §IV, refs [30], [32]).

A credential is a set of claims an **issuer** signs about a **subject**;
a presentation is one or more credentials a **holder** signs over a
verifier-chosen challenge (proving possession, preventing replay).
Signatures are Ed25519 over the canonical JSON of the document, and
verification resolves keys through the registry — so key rotation,
revocation, and unresolvable issuers all behave like the real ecosystem.

Time is explicit (``now`` parameters, seconds since epoch) so every test
and benchmark is deterministic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace

from repro.ssi.did import Did, KeyPair
from repro.ssi.registry import VerifiableDataRegistry

__all__ = ["VerifiableCredential", "VerifiablePresentation", "VerificationResult"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of credential/presentation verification."""

    valid: bool
    reason: str = "ok"

    def __bool__(self) -> bool:
        return self.valid


@dataclass(frozen=True)
class VerifiableCredential:
    """A signed claim set.

    Attributes:
        credential_id: unique id (derived from content when issued).
        credential_type: e.g. "CompatibilityCredential",
            "ChargingContract", "AccreditationCredential".
        issuer / subject: DIDs as strings.
        claims: the attested attributes.
        issued_at / expires_at: validity window (epoch seconds).
        proof: issuer signature (empty until issued).
    """

    credential_id: str
    credential_type: str
    issuer: str
    subject: str
    claims: dict
    issued_at: float
    expires_at: float
    proof: bytes = b""

    def signing_input(self) -> bytes:
        body = {
            "id": self.credential_id,
            "type": self.credential_type,
            "issuer": self.issuer,
            "subject": self.subject,
            "claims": self.claims,
            "issuedAt": self.issued_at,
            "expiresAt": self.expires_at,
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()

    @classmethod
    def issue(cls, *, credential_type: str, issuer: Did, issuer_key: KeyPair,
              subject: Did | str, claims: dict, issued_at: float,
              validity_s: float = 365 * 86400.0) -> "VerifiableCredential":
        """Create and sign a credential."""
        if validity_s <= 0:
            raise ValueError("validity must be positive")
        draft = cls(
            credential_id="",
            credential_type=credential_type,
            issuer=str(issuer),
            subject=str(subject),
            claims=dict(claims),
            issued_at=issued_at,
            expires_at=issued_at + validity_s,
        )
        cred_id = "urn:vc:" + hashlib.sha256(draft.signing_input()).hexdigest()[:32]
        draft = replace(draft, credential_id=cred_id)
        return replace(draft, proof=issuer_key.sign(draft.signing_input()))

    def verify(self, registry: VerifiableDataRegistry, *, now: float,
               check_revocation: bool = True) -> VerificationResult:
        """Full verification: signature, validity window, revocation."""
        if not self.proof:
            return VerificationResult(False, "unsigned credential")
        if now < self.issued_at:
            return VerificationResult(False, "not yet valid")
        if now > self.expires_at:
            return VerificationResult(False, "expired")
        try:
            issuer_doc = registry.resolve(self.issuer)
        except KeyError:
            return VerificationResult(False, f"issuer {self.issuer} unresolvable")
        if not issuer_doc.verify(self.signing_input(), self.proof):
            return VerificationResult(False, "bad signature")
        if check_revocation and registry.is_revoked(self.credential_id):
            return VerificationResult(False, "revoked")
        return VerificationResult(True)


@dataclass(frozen=True)
class VerifiablePresentation:
    """Holder-signed bundle of credentials over a verifier challenge."""

    holder: str
    credentials: tuple[VerifiableCredential, ...]
    challenge: bytes
    proof: bytes = b""

    def signing_input(self) -> bytes:
        digest = hashlib.sha256()
        digest.update(self.holder.encode())
        digest.update(self.challenge)
        for credential in self.credentials:
            digest.update(credential.signing_input())
            digest.update(credential.proof)
        return digest.digest()

    @classmethod
    def create(cls, *, holder: Did, holder_key: KeyPair,
               credentials: list[VerifiableCredential],
               challenge: bytes) -> "VerifiablePresentation":
        if not credentials:
            raise ValueError("a presentation needs at least one credential")
        draft = cls(str(holder), tuple(credentials), challenge)
        return replace(draft, proof=holder_key.sign(draft.signing_input()))

    def verify(self, registry: VerifiableDataRegistry, *, now: float,
               expected_challenge: bytes,
               check_revocation: bool = True) -> VerificationResult:
        """Verify holder binding, challenge freshness, and every credential."""
        if self.challenge != expected_challenge:
            return VerificationResult(False, "challenge mismatch (replay?)")
        try:
            holder_doc = registry.resolve(self.holder)
        except KeyError:
            return VerificationResult(False, f"holder {self.holder} unresolvable")
        if not holder_doc.verify(self.signing_input(), self.proof):
            return VerificationResult(False, "bad holder signature")
        for credential in self.credentials:
            if credential.subject != self.holder:
                return VerificationResult(
                    False, f"credential {credential.credential_id} not bound to holder")
            result = credential.verify(registry, now=now,
                                       check_revocation=check_revocation)
            if not result:
                return VerificationResult(
                    False, f"credential {credential.credential_id}: {result.reason}")
        return VerificationResult(True)
