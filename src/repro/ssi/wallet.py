"""Identity wallets: key custody, credential storage, presentations.

Every actor in the §IV use cases — ECUs, software components, vehicles,
charging providers, cloud services — is a :class:`Wallet`: it owns a
DID + key pair, registers its DID document, accumulates credentials
about itself, and answers verifier challenges with presentations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rng import python_rng
from repro.ssi.did import Did, DidDocument, KeyPair
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.vc import VerifiableCredential, VerifiablePresentation

__all__ = ["Wallet"]


@dataclass
class Wallet:
    """An SSI actor: DID, keys, and held credentials."""

    did: Did
    keypair: KeyPair
    credentials: list[VerifiableCredential] = field(default_factory=list)

    @classmethod
    def create(cls, name: str, registry: VerifiableDataRegistry,
               services: dict[str, str] | None = None) -> "Wallet":
        """Generate an identity and register its DID document."""
        did = Did(name)
        keypair = KeyPair.from_seed_label(name)
        registry.register(DidDocument.for_keypair(did, keypair, services))
        return cls(did, keypair)

    def rotate_keys(self, registry: VerifiableDataRegistry, *,
                    keep_old_key: bool = True) -> KeyPair:
        """Rotate to a fresh key pair and publish the new DID document.

        With ``keep_old_key`` the new document lists both keys, so
        signatures made before the rotation still verify (the standard
        DID-rotation grace behaviour); without it, old signatures die
        immediately (compromise recovery).
        """
        from repro.ssi.did import VerificationMethod

        new_keypair = KeyPair.from_seed_label(
            f"{self.did.name}:rotation:{len(registry.history(self.did)) + 1}")
        methods = [VerificationMethod(f"{self.did}#key-new", new_keypair.public)]
        if keep_old_key:
            methods.append(VerificationMethod(f"{self.did}#key-old",
                                              self.keypair.public))
        registry.register(DidDocument(self.did, methods))
        self.keypair = new_keypair
        return new_keypair

    # -- issuing -------------------------------------------------------------

    def issue(self, *, credential_type: str, subject: Did | str, claims: dict,
              issued_at: float, validity_s: float = 365 * 86400.0) -> VerifiableCredential:
        """Issue a credential about ``subject`` signed by this wallet."""
        return VerifiableCredential.issue(
            credential_type=credential_type,
            issuer=self.did,
            issuer_key=self.keypair,
            subject=subject,
            claims=claims,
            issued_at=issued_at,
            validity_s=validity_s,
        )

    # -- holding -------------------------------------------------------------

    def store(self, credential: VerifiableCredential) -> None:
        if credential.subject != str(self.did):
            raise ValueError("wallet only stores credentials about its own DID")
        self.credentials.append(credential)

    def find(self, credential_type: str) -> list[VerifiableCredential]:
        return [c for c in self.credentials if c.credential_type == credential_type]

    def present(self, credential_types: list[str],
                challenge: bytes) -> VerifiablePresentation:
        """Build a presentation of the newest credential of each type."""
        selected = []
        for ctype in credential_types:
            matching = self.find(ctype)
            if not matching:
                raise KeyError(f"no credential of type {ctype!r} in wallet")
            selected.append(max(matching, key=lambda c: c.issued_at))
        return VerifiablePresentation.create(
            holder=self.did, holder_key=self.keypair,
            credentials=selected, challenge=challenge,
        )

    def new_challenge(self, label: str = "challenge") -> bytes:
        """Verifier-side helper: a deterministic-per-label nonce."""
        return python_rng(f"{self.did}:{label}").randbytes(16)
