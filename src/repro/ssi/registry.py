"""Verifiable data registry: immutable DID storage + revocation lists.

The paper's §IV describes SSI as resting on "different trust anchors
stored in an immutable, publicly available storage".  This module is
that storage:

* :class:`VerifiableDataRegistry` — append-only DID-document store with
  a hash chain over entries (immutability is checkable, not assumed);
  re-registration appends a new version rather than rewriting history;
* revocation — credential ids can be revoked by their issuer; the
  registry records who revoked what, and verifiers consult it online
  (the *offline* verification path in :mod:`repro.ssi.charging` skips
  this lookup and accepts the staleness trade-off, as the paper's [34]
  offline scenario discussion does).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.ssi.did import Did, DidDocument

__all__ = ["RegistryEntry", "VerifiableDataRegistry"]


@dataclass(frozen=True)
class RegistryEntry:
    """One immutable ledger entry."""

    sequence: int
    did: str
    content_hash: str
    previous_hash: str

    def entry_hash(self) -> str:
        material = f"{self.sequence}|{self.did}|{self.content_hash}|{self.previous_hash}"
        return hashlib.sha256(material.encode()).hexdigest()


class VerifiableDataRegistry:
    """Append-only DID document store with revocation support."""

    GENESIS = "0" * 64

    def __init__(self) -> None:
        self._documents: dict[str, list[DidDocument]] = {}
        self._ledger: list[RegistryEntry] = []
        self._revoked: dict[str, str] = {}  # credential id -> revoking DID

    # -- DID documents -------------------------------------------------------

    def register(self, document: DidDocument) -> RegistryEntry:
        """Append a (new version of a) DID document."""
        key = str(document.did)
        previous = self._ledger[-1].entry_hash() if self._ledger else self.GENESIS
        entry = RegistryEntry(
            sequence=len(self._ledger),
            did=key,
            content_hash=document.content_hash(),
            previous_hash=previous,
        )
        self._ledger.append(entry)
        self._documents.setdefault(key, []).append(document)
        return entry

    def resolve(self, did: Did | str) -> DidDocument:
        """Latest document for ``did``; raises KeyError when unknown."""
        versions = self._documents.get(str(did))
        if not versions:
            raise KeyError(f"unresolvable DID {did}")
        return versions[-1]

    def history(self, did: Did | str) -> list[DidDocument]:
        return list(self._documents.get(str(did), []))

    def verify_chain(self) -> bool:
        """Check the ledger hash chain end to end."""
        previous = self.GENESIS
        for index, entry in enumerate(self._ledger):
            if entry.sequence != index or entry.previous_hash != previous:
                return False
            previous = entry.entry_hash()
        return True

    def __len__(self) -> int:
        return len(self._ledger)

    # -- revocation ----------------------------------------------------------

    def revoke_credential(self, credential_id: str, revoker: Did | str) -> None:
        if credential_id in self._revoked:
            raise ValueError(f"credential {credential_id!r} already revoked")
        self._revoked[credential_id] = str(revoker)

    def is_revoked(self, credential_id: str) -> bool:
        return credential_id in self._revoked
