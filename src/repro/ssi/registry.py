"""Verifiable data registry: immutable DID storage + revocation lists.

The paper's §IV describes SSI as resting on "different trust anchors
stored in an immutable, publicly available storage".  This module is
that storage:

* :class:`VerifiableDataRegistry` — append-only DID-document store with
  a hash chain over entries (immutability is checkable, not assumed);
  re-registration appends a new version rather than rewriting history;
* revocation — credential ids can be revoked by their issuer; the
  registry records who revoked what, and verifiers consult it online
  (the *offline* verification path in :mod:`repro.ssi.charging` skips
  this lookup and accepts the staleness trade-off, as the paper's [34]
  offline scenario discussion does).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.ssi.did import Did, DidDocument

__all__ = ["RegistryEntry", "VerifiableDataRegistry",
           "RegistryUnavailable", "CachingResolver"]


@dataclass(frozen=True)
class RegistryEntry:
    """One immutable ledger entry."""

    sequence: int
    did: str
    content_hash: str
    previous_hash: str

    def entry_hash(self) -> str:
        material = f"{self.sequence}|{self.did}|{self.content_hash}|{self.previous_hash}"
        return hashlib.sha256(material.encode()).hexdigest()


class VerifiableDataRegistry:
    """Append-only DID document store with revocation support."""

    GENESIS = "0" * 64

    def __init__(self) -> None:
        self._documents: dict[str, list[DidDocument]] = {}
        self._ledger: list[RegistryEntry] = []
        self._revoked: dict[str, str] = {}  # credential id -> revoking DID

    # -- DID documents -------------------------------------------------------

    def register(self, document: DidDocument) -> RegistryEntry:
        """Append a (new version of a) DID document."""
        key = str(document.did)
        previous = self._ledger[-1].entry_hash() if self._ledger else self.GENESIS
        entry = RegistryEntry(
            sequence=len(self._ledger),
            did=key,
            content_hash=document.content_hash(),
            previous_hash=previous,
        )
        self._ledger.append(entry)
        self._documents.setdefault(key, []).append(document)
        return entry

    def resolve(self, did: Did | str) -> DidDocument:
        """Latest document for ``did``; raises KeyError when unknown."""
        versions = self._documents.get(str(did))
        if not versions:
            raise KeyError(f"unresolvable DID {did}")
        return versions[-1]

    def history(self, did: Did | str) -> list[DidDocument]:
        return list(self._documents.get(str(did), []))

    def verify_chain(self) -> bool:
        """Check the ledger hash chain end to end."""
        previous = self.GENESIS
        for index, entry in enumerate(self._ledger):
            if entry.sequence != index or entry.previous_hash != previous:
                return False
            previous = entry.entry_hash()
        return True

    def __len__(self) -> int:
        return len(self._ledger)

    # -- revocation ----------------------------------------------------------

    def revoke_credential(self, credential_id: str, revoker: Did | str) -> None:
        if credential_id in self._revoked:
            raise ValueError(f"credential {credential_id!r} already revoked")
        self._revoked[credential_id] = str(revoker)

    def is_revoked(self, credential_id: str) -> bool:
        return credential_id in self._revoked


class RegistryUnavailable(Exception):
    """The registry cannot be reached (transient infrastructure failure).

    Distinct from ``KeyError`` (the DID genuinely does not exist):
    resilience machinery may retry or fall back to a cached document on
    unavailability, but must *not* paper over a missing DID.
    """


class CachingResolver:
    """DID resolution with a last-known-good cache for registry outages.

    The paper's SSI design assumes the verifiable data registry is
    "publicly available" — but availability is exactly what a fault
    campaign takes away.  This resolver keeps the latest successfully
    resolved document per DID and serves it *stale* while the registry
    is down, trading freshness (a rotated key or new endpoint would be
    missed) for availability, the same trade the offline-verification
    path in :mod:`repro.ssi.charging` makes deliberately.

    Args:
        registry: the backing registry.
        unavailable: optional predicate consulted per lookup; returning
            ``True`` models the registry being unreachable right now
            (chaos campaigns wire this to the fault injector).
    """

    def __init__(self, registry: VerifiableDataRegistry, *,
                 unavailable: Callable[[], bool] | None = None) -> None:
        self.registry = registry
        self.unavailable = unavailable
        self.hits = 0
        self.stale_hits = 0
        self.failures = 0
        self._cache: dict[str, DidDocument] = {}

    def resolve(self, did: Did | str) -> DidDocument:
        """Resolve ``did``, serving the cached document during outages.

        Raises :class:`RegistryUnavailable` when the registry is down
        and no cached copy exists; propagates ``KeyError`` for unknown
        DIDs while the registry is reachable.
        """
        key = str(did)
        if self.unavailable is not None and self.unavailable():
            cached = self._cache.get(key)
            if cached is not None:
                self.stale_hits += 1
                return cached
            self.failures += 1
            raise RegistryUnavailable(
                f"registry down and no cached document for {key}")
        document = self.registry.resolve(did)
        self._cache[key] = document
        self.hits += 1
        return document

    def to_dict(self) -> dict:
        return {"hits": self.hits, "staleHits": self.stale_hits,
                "failures": self.failures, "cached": len(self._cache)}
