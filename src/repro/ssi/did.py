"""Decentralized identifiers and DID documents (paper §IV, ref [30]).

Self-sovereign identity is the paper's proposed answer to the SDV trust
problem: "asynchronous cryptography with different trust anchors stored
in an immutable, publicly available storage".  This module provides the
identity layer:

* :class:`KeyPair` — Ed25519 signing keys (deterministic from a seed
  label for reproducibility);
* :class:`Did` — identifiers in a did:web-like scheme
  (``did:vreg:<name>``, resolved against the in-memory registry of
  :mod:`repro.ssi.registry`);
* :class:`DidDocument` — the public document: verification methods
  (public keys) and service endpoints, with canonical serialization so
  documents can be signed and stored immutably.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.crypto import ed25519

__all__ = ["KeyPair", "Did", "VerificationMethod", "DidDocument"]

_METHOD = "vreg"


@dataclass(frozen=True)
class KeyPair:
    """An Ed25519 key pair."""

    secret: bytes
    public: bytes

    @classmethod
    def from_seed_label(cls, label: str) -> "KeyPair":
        """Deterministic key generation from a textual label."""
        secret = hashlib.sha256(f"ssi-key:{label}".encode()).digest()
        return cls(secret, ed25519.generate_public_key(secret))

    def sign(self, message: bytes) -> bytes:
        return ed25519.sign(self.secret, message)


@dataclass(frozen=True)
class Did:
    """A decentralized identifier ``did:vreg:<name>``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or ":" in self.name or " " in self.name:
            raise ValueError(f"invalid DID name {self.name!r}")

    def __str__(self) -> str:
        return f"did:{_METHOD}:{self.name}"

    @classmethod
    def parse(cls, text: str) -> "Did":
        parts = text.split(":")
        if len(parts) != 3 or parts[0] != "did" or parts[1] != _METHOD:
            raise ValueError(f"not a did:{_METHOD} identifier: {text!r}")
        return cls(parts[2])


@dataclass(frozen=True)
class VerificationMethod:
    """A public key bound to a DID."""

    key_id: str
    public_key: bytes

    def to_dict(self) -> dict:
        return {"id": self.key_id, "publicKeyHex": self.public_key.hex()}


@dataclass
class DidDocument:
    """The resolvable public document for a DID."""

    did: Did
    verification_methods: list[VerificationMethod] = field(default_factory=list)
    services: dict[str, str] = field(default_factory=dict)

    @classmethod
    def for_keypair(cls, did: Did, keypair: KeyPair,
                    services: dict[str, str] | None = None) -> "DidDocument":
        method = VerificationMethod(f"{did}#key-1", keypair.public)
        return cls(did, [method], dict(services or {}))

    def primary_key(self) -> bytes:
        if not self.verification_methods:
            raise ValueError(f"{self.did} has no verification methods")
        return self.verification_methods[0].public_key

    def verify(self, message: bytes, signature: bytes) -> bool:
        """True if any of the document's keys verifies the signature."""
        return any(
            ed25519.verify(vm.public_key, message, signature)
            for vm in self.verification_methods
        )

    def to_json(self) -> str:
        """Canonical serialization (stable key order)."""
        return json.dumps({
            "id": str(self.did),
            "verificationMethod": [vm.to_dict() for vm in self.verification_methods],
            "service": dict(sorted(self.services.items())),
        }, sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()
