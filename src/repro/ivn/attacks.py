"""Network-layer attacks: masquerade, replay, bus flooding (paper §III).

"A key vulnerability of the CAN bus is the lack of authentication, which
allows attackers to impersonate safety-critical ECUs ... by using
legitimate ECU identifiers."  These attack models run against the
:class:`repro.ivn.bus.CanBus` simulator and the SECOC/CANsec channels so
the IDS and protocol tests can measure what gets through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rng import python_rng
from repro.ivn.bus import CanBus
from repro.ivn.frames import CanFrame
from repro.ivn.secoc import SecOcProfile, SecuredPdu

__all__ = ["MasqueradeAttacker", "ReplayAttacker", "BusFloodAttacker", "blind_forgery_attempts"]


@dataclass
class MasqueradeAttacker:
    """A compromised node injecting frames with a victim's CAN id.

    CAN has no sender authentication, so the bus accepts the frames;
    whether receivers act on them depends on SECOC/CANsec/IDS deployment.
    """

    node_name: str
    victim_id: int
    injected: int = 0

    def inject(self, bus: CanBus, payload: bytes, count: int = 1) -> None:
        for _ in range(count):
            bus.send(self.node_name, CanFrame(self.victim_id, payload))
            self.injected += 1


@dataclass
class ReplayAttacker:
    """Records secured PDUs and replays them verbatim later.

    Defeated by freshness (SECOC/CANsec counters): a verbatim replay
    carries a stale counter and fails verification.
    """

    recorded: list[SecuredPdu] = field(default_factory=list)

    def observe(self, pdu: SecuredPdu) -> None:
        self.recorded.append(pdu)

    def replay_all(self) -> list[SecuredPdu]:
        return list(self.recorded)


@dataclass
class BusFloodAttacker:
    """Flood the bus with top-priority frames (DoS via arbitration).

    Because CAN arbitration always yields to the lowest id, a node
    transmitting id 0 back-to-back starves every legitimate sender —
    the availability attack in the catalog ("bus-flood-dos").
    """

    node_name: str
    flood_id: int = 0x000

    def flood(self, bus: CanBus, count: int) -> None:
        for _ in range(count):
            bus.send(self.node_name, CanFrame(self.flood_id, b"\x00" * 8))


def blind_forgery_attempts(profile: SecOcProfile, attempts: int, *,
                           seed_label: str = "forgery") -> int:
    """Simulate blind MAC forgery against a truncated-MAC profile.

    Returns how many of ``attempts`` random tags would verify. The
    expected count is ``attempts * 2^-mac_bits`` — the quantitative side
    of ablation ABL-2 (MAC truncation vs forgery resistance).
    """
    if attempts < 0:
        raise ValueError("attempts must be non-negative")
    rng = python_rng(seed_label)
    hits = 0
    for _ in range(attempts):
        guess = rng.getrandbits(profile.mac_bits)
        target = rng.getrandbits(profile.mac_bits)
        if guess == target:
            hits += 1
    return hits
