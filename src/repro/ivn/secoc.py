"""AUTOSAR Secure Onboard Communication (SECOC) — Table I, scenario S1.

SECOC [18] authenticates PDUs at the *application* layer: a truncated
**freshness value** and a truncated **CMAC** are appended to each secured
I-PDU. The truncations are the protocol's defining trade-off — classic
CAN has 8 payload bytes total, so AUTOSAR profiles carry e.g. 8 bits of
freshness and 24–28 bits of MAC (profile 1), trading forgery resistance
for bus load (ablation ABL-2).

Implemented here:

* :class:`FreshnessManager` — monotonic counters per PDU id with
  truncated transmission and window-based reconstruction at the
  receiver (the AUTOSAR FvM scheme);
* :class:`SecOcChannel` — secure/verify of PDUs between two parties
  sharing a key, with authentication-only semantics (SECOC provides *no
  confidentiality*, one of the S1 disadvantages the paper lists).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layers import Layer
from repro.crypto.modes import Cmac
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["SecOcProfile", "PROFILE_1", "PROFILE_3", "SecuredPdu", "FreshnessManager", "SecOcChannel"]


@dataclass(frozen=True)
class SecOcProfile:
    """A SECOC configuration profile.

    Attributes:
        name: profile label.
        freshness_bits: truncated freshness bits transmitted.
        mac_bits: truncated MAC bits transmitted.
    """

    name: str
    freshness_bits: int
    mac_bits: int

    def __post_init__(self) -> None:
        if self.freshness_bits < 0 or self.freshness_bits > 64:
            raise ValueError("freshness_bits must be in 0..64")
        if self.mac_bits % 8 or not 0 < self.mac_bits <= 128:
            raise ValueError("mac_bits must be a byte multiple in (0, 128]")

    @property
    def overhead_bits(self) -> int:
        return self.freshness_bits + self.mac_bits

    @property
    def overhead_bytes(self) -> int:
        return (self.overhead_bits + 7) // 8

    @property
    def forgery_probability(self) -> float:
        """Per-attempt blind forgery success probability (2^-mac_bits)."""
        return 2.0 ** -self.mac_bits


#: AUTOSAR profile 1 ("24Bit-CMAC-8Bit-FV"): classic-CAN friendly.
PROFILE_1 = SecOcProfile("profile1", freshness_bits=8, mac_bits=24)
#: AUTOSAR profile 3 style: wider MAC for FD/Ethernet payloads.
PROFILE_3 = SecOcProfile("profile3", freshness_bits=16, mac_bits=64)


@dataclass(frozen=True)
class SecuredPdu:
    """A secured I-PDU as transmitted."""

    pdu_id: int
    payload: bytes
    truncated_freshness: int
    truncated_mac: bytes

    def wire_payload(self, profile: SecOcProfile) -> bytes:
        """Payload + security trailer as the byte string put on the bus."""
        fv_bytes = (self.truncated_freshness.to_bytes(8, "big")
                    [-((profile.freshness_bits + 7) // 8) or len(b""):])
        if profile.freshness_bits == 0:
            fv_bytes = b""
        return self.payload + fv_bytes + self.truncated_mac


class FreshnessManager:
    """Monotonic freshness counters with truncated transmission.

    The sender transmits only the low ``freshness_bits`` of a 64-bit
    counter; the receiver reconstructs the full value by choosing the
    smallest counter consistent with the truncation that is strictly
    greater than the last accepted one (the AUTOSAR "attempt window").
    """

    def __init__(self, freshness_bits: int) -> None:
        if not 0 < freshness_bits <= 64:
            raise ValueError("freshness_bits must be in 1..64")
        self.freshness_bits = freshness_bits
        self._tx_counters: dict[int, int] = {}
        self._rx_counters: dict[int, int] = {}

    def next_tx(self, pdu_id: int) -> int:
        """Full freshness value for the next transmission of ``pdu_id``."""
        value = self._tx_counters.get(pdu_id, 0) + 1
        self._tx_counters[pdu_id] = value
        return value

    def truncate(self, value: int) -> int:
        return value & ((1 << self.freshness_bits) - 1)

    def reconstruct(self, pdu_id: int, truncated: int) -> int:
        """Receiver-side reconstruction of the full freshness value."""
        last = self._rx_counters.get(pdu_id, 0)
        mask = (1 << self.freshness_bits) - 1
        candidate = (last & ~mask) | (truncated & mask)
        if candidate <= last:
            candidate += 1 << self.freshness_bits
        return candidate

    def commit_rx(self, pdu_id: int, value: int) -> None:
        """Accept ``value`` as the latest verified freshness for ``pdu_id``."""
        if value <= self._rx_counters.get(pdu_id, 0):
            raise ValueError("freshness must increase monotonically")
        self._rx_counters[pdu_id] = value


class SecOcChannel:
    """A SECOC association between a sender and a receiver.

    One instance per direction per key, mirroring how AUTOSAR binds
    secured I-PDUs to key ids. The MAC covers
    ``pdu_id || payload || full_freshness`` per the SECOC spec.
    """

    def __init__(self, key: bytes, profile: SecOcProfile = PROFILE_1) -> None:
        self.profile = profile
        self._cmac = Cmac(key)
        self.tx_freshness = FreshnessManager(profile.freshness_bits)
        self.rx_freshness = FreshnessManager(profile.freshness_bits)

    def _mac_input(self, pdu_id: int, payload: bytes, freshness: int) -> bytes:
        return pdu_id.to_bytes(4, "big") + payload + freshness.to_bytes(8, "big")

    def secure(self, pdu_id: int, payload: bytes) -> SecuredPdu:
        """Build the secured PDU for transmission."""
        freshness = self.tx_freshness.next_tx(pdu_id)
        mac = self._cmac.tag(self._mac_input(pdu_id, payload, freshness),
                             tag_bits=self.profile.mac_bits)
        if OBS.enabled:
            OBS.count("ivn.secoc.pdus_secured")
        return SecuredPdu(
            pdu_id=pdu_id,
            payload=payload,
            truncated_freshness=self.tx_freshness.truncate(freshness),
            truncated_mac=mac,
        )

    def verify(self, pdu: SecuredPdu) -> bool:
        """Verify authenticity + freshness; commits freshness on success."""
        freshness = self.rx_freshness.reconstruct(pdu.pdu_id, pdu.truncated_freshness)
        expected = self._cmac.tag(
            self._mac_input(pdu.pdu_id, pdu.payload, freshness),
            tag_bits=self.profile.mac_bits,
        )
        if expected != pdu.truncated_mac:
            if OBS.enabled:
                OBS.count("ivn.secoc.mac_rejected")
                OBS.emit(EventKind.MAC_REJECTED, Layer.NETWORK,
                         f"pdu-{pdu.pdu_id:#x}",
                         f"CMAC mismatch ({self.profile.name})",
                         freshness=freshness, mac_bits=self.profile.mac_bits)
            return False
        self.rx_freshness.commit_rx(pdu.pdu_id, freshness)
        if OBS.enabled:
            OBS.count("ivn.secoc.mac_verified")
            OBS.emit(EventKind.MAC_VERIFIED, Layer.NETWORK,
                     f"pdu-{pdu.pdu_id:#x}",
                     f"CMAC + freshness accepted ({self.profile.name})",
                     freshness=freshness, mac_bits=self.profile.mac_bits)
        return True
