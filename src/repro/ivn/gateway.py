"""Zone-gateway frame filtering (paper §III, Fig. 3 zone controllers).

A zonal controller is not just a media converter: it is a natural
security boundary. This module models the gateway's **forwarding
policy** — which CAN ids may cross from which port to which port — and
quantifies how it contains the masquerade attack: a compromised ECU in
one zone can still spoof ids *inside* its own segment (CAN has no
sender authentication), but the gateway refuses to forward ids that do
not belong to that zone, so cross-zone masquerade dies at the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ForwardingRule", "GatewayFilter", "FilterDecision"]


@dataclass(frozen=True)
class ForwardingRule:
    """Allow frames with ids in [id_min, id_max] from one port to another."""

    source_port: str
    dest_port: str
    id_min: int
    id_max: int

    def __post_init__(self) -> None:
        if not 0 <= self.id_min <= self.id_max:
            raise ValueError("need 0 <= id_min <= id_max")

    def matches(self, source_port: str, dest_port: str, can_id: int) -> bool:
        return (source_port == self.source_port
                and dest_port == self.dest_port
                and self.id_min <= can_id <= self.id_max)


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of one forwarding check."""

    forwarded: bool
    rule: ForwardingRule | None
    reason: str


@dataclass
class GatewayFilter:
    """A default-deny forwarding policy for a zone controller.

    The whitelist approach is the §V-C philosophy applied to the
    gateway: only explicitly needed (source, destination, id-range)
    triples pass; everything else — including spoofed cross-zone ids —
    is dropped and counted.
    """

    name: str
    rules: list[ForwardingRule] = field(default_factory=list)
    stats: dict = field(default_factory=lambda: {"forwarded": 0, "dropped": 0})

    def allow(self, source_port: str, dest_port: str,
              id_min: int, id_max: int | None = None) -> ForwardingRule:
        rule = ForwardingRule(source_port, dest_port, id_min,
                              id_max if id_max is not None else id_min)
        self.rules.append(rule)
        return rule

    def check(self, source_port: str, dest_port: str, can_id: int) -> FilterDecision:
        """Default-deny forwarding decision."""
        for rule in self.rules:
            if rule.matches(source_port, dest_port, can_id):
                self.stats["forwarded"] += 1
                return FilterDecision(True, rule, "matched allow rule")
        self.stats["dropped"] += 1
        return FilterDecision(
            False, None,
            f"no rule allows id {can_id:#x} from {source_port} to {dest_port}")

    def reachable_ids(self, source_port: str, dest_port: str) -> list[tuple[int, int]]:
        """Id ranges an attacker on ``source_port`` can emit toward ``dest_port``."""
        return [(r.id_min, r.id_max) for r in self.rules
                if r.source_port == source_port and r.dest_port == dest_port]

    def exposure_count(self, source_port: str, dest_port: str) -> int:
        """Number of distinct forwardable ids on that direction (the
        cross-zone injection surface)."""
        total = 0
        for id_min, id_max in self.reachable_ids(source_port, dest_port):
            total += id_max - id_min + 1
        return total

    def ports(self) -> list[str]:
        """Every port named by at least one rule, sorted."""
        names = {r.source_port for r in self.rules} | {r.dest_port for r in self.rules}
        return sorted(names)

    def forward_pairs(self) -> list[tuple[str, str, int]]:
        """Directed ``(source_port, dest_port, forwardable_ids)`` triples.

        One entry per port pair with a non-empty allow surface — the
        edges a whole-system dataflow analysis must draw through this
        gateway.  Sorted for deterministic iteration.
        """
        pairs = sorted({(r.source_port, r.dest_port) for r in self.rules})
        return [(src, dst, self.exposure_count(src, dst))
                for src, dst in pairs
                if self.exposure_count(src, dst) > 0]
