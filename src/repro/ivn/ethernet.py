"""Point-to-point automotive Ethernet links and a store-and-forward switch.

The zonal architecture (Fig. 3) connects zone controllers to the central
computing unit "via point-to-point Ethernet".  The model provides:

* :class:`EthernetLink` — a full-duplex link with serialization +
  propagation delay;
* :class:`ZonalSwitch` — store-and-forward relaying with a fixed
  processing latency per hop, used by the zone controllers when
  forwarding between their CAN/T1S edge and the Ethernet backbone.

Latency accounting is analytic (serialization + propagation +
processing), which is exact for an unloaded full-duplex link and keeps
the scenario comparisons (Figs. 4–6) deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ivn.frames import EthernetFrame

__all__ = ["EthernetLink", "ZonalSwitch"]

_PROPAGATION_MPS = 2.0e8  # signal speed in copper, ~0.66 c


@dataclass(frozen=True)
class EthernetLink:
    """A full-duplex point-to-point Ethernet link."""

    name: str
    bitrate_bps: float = 1e9
    length_m: float = 5.0

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0 or self.length_m < 0:
            raise ValueError("invalid link parameters")

    def transfer_time_s(self, frame: EthernetFrame) -> float:
        """Serialization plus propagation for one frame."""
        return (frame.transmission_time_s(self.bitrate_bps)
                + self.length_m / _PROPAGATION_MPS)


@dataclass(frozen=True)
class ZonalSwitch:
    """Store-and-forward switching element (zone controller data plane).

    ``processing_s`` covers lookup + queueing under nominal load;
    ``security_processing_s`` is added per frame when the switch must
    terminate/re-originate a security protocol (the S1 gateway
    translation cost the paper calls the "software load imposed by the
    relatively 'heavy' AUTOSAR stack").
    """

    name: str
    processing_s: float = 5e-6
    security_processing_s: float = 20e-6

    def forward_time_s(self, frame: EthernetFrame, *,
                       security_termination: bool = False) -> float:
        extra = self.security_processing_s if security_termination else 0.0
        return self.processing_s + extra
