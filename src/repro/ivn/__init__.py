"""Network layer (paper §III): in-vehicle networks and their security stacks.

Implements Figs. 3–6 and Table I as executable models:

* :mod:`repro.ivn.frames` — bit-accurate CAN/CAN-FD/CAN-XL/Ethernet sizes.
* :mod:`repro.ivn.bus`, :mod:`repro.ivn.t1s`, :mod:`repro.ivn.ethernet` —
  medium simulators (arbitration, PLCA, switched links).
* :mod:`repro.ivn.topology` — the Fig. 3 zonal architecture.
* :mod:`repro.ivn.secoc` / :mod:`repro.ivn.macsec` /
  :mod:`repro.ivn.cansec` / :mod:`repro.ivn.canal` — the Table I
  protocol implementations with real cryptography.
* :mod:`repro.ivn.scenarios` — S1 / S2a / S2b / S3 comparisons.
* :mod:`repro.ivn.attacks`, :mod:`repro.ivn.ids` — masquerade/replay/DoS
  and the detectors that catch them.
"""

from repro.ivn.attacks import (
    BusFloodAttacker,
    MasqueradeAttacker,
    ReplayAttacker,
    blind_forgery_attempts,
)
from repro.ivn.bus import BusNode, CanBus
from repro.ivn.busoff import BusOffAttack, BusOffOutcome, ErrorCounter, simulate_busoff
from repro.ivn.canal import CanalCodec, CanalSegment
from repro.ivn.cansec import CANSEC_OVERHEAD_BYTES, CansecSecuredFrame, CansecZone
from repro.ivn.ethernet import EthernetLink, ZonalSwitch
from repro.ivn.gateway import FilterDecision, ForwardingRule, GatewayFilter
from repro.ivn.frames import (
    MACSEC_ICV_BYTES,
    MACSEC_SECTAG_BYTES,
    CanFdFrame,
    CanFrame,
    CanXlFrame,
    EthernetFrame,
    can_fd_dlc_for,
)
from repro.ivn.ids import FrequencyIds, IdsAlert, OnsetIds, SenderFingerprintIds
from repro.ivn.keymgmt import KeyLifecycleManager, RekeyEvent, run_traffic_with_rekey
from repro.ivn.macsec import MacsecFrame, MacsecPort, MkaSession, Sci
from repro.ivn.scenarios import (
    ScenarioReport,
    run_all_scenarios,
    run_s1,
    run_s2_end_to_end,
    run_s2_point_to_point,
    run_s3_canal,
)
from repro.ivn.secoc import (
    PROFILE_1,
    PROFILE_3,
    FreshnessManager,
    SecOcChannel,
    SecOcProfile,
    SecuredPdu,
)
from repro.ivn.streams import (
    DosResponseReport,
    PeriodicStream,
    TrafficScheduler,
    run_dos_response_experiment,
)
from repro.ivn.t1s import PlcaConfig, T1sSegment
from repro.ivn.timesync import (
    AsymmetryVerdict,
    CyclicAsymmetryDetector,
    DelayAttack,
    PtpResult,
    SyncNetwork,
    ptp_offset,
)
from repro.ivn.topology import Endpoint, Zone, ZonalArchitecture
from repro.ivn.vcan import VcidSpoofAttacker, VirtualCanNetwork

__all__ = [
    "CanFrame",
    "CanFdFrame",
    "CanXlFrame",
    "EthernetFrame",
    "can_fd_dlc_for",
    "MACSEC_SECTAG_BYTES",
    "MACSEC_ICV_BYTES",
    "CanBus",
    "BusNode",
    "T1sSegment",
    "PlcaConfig",
    "EthernetLink",
    "ZonalSwitch",
    "ZonalArchitecture",
    "Zone",
    "Endpoint",
    "SecOcChannel",
    "SecOcProfile",
    "SecuredPdu",
    "FreshnessManager",
    "PROFILE_1",
    "PROFILE_3",
    "MacsecPort",
    "MacsecFrame",
    "MkaSession",
    "KeyLifecycleManager",
    "RekeyEvent",
    "run_traffic_with_rekey",
    "Sci",
    "CansecZone",
    "CansecSecuredFrame",
    "CANSEC_OVERHEAD_BYTES",
    "CanalCodec",
    "CanalSegment",
    "ScenarioReport",
    "run_s1",
    "run_s2_end_to_end",
    "run_s2_point_to_point",
    "run_s3_canal",
    "run_all_scenarios",
    "MasqueradeAttacker",
    "ReplayAttacker",
    "BusFloodAttacker",
    "blind_forgery_attempts",
    "PeriodicStream",
    "TrafficScheduler",
    "DosResponseReport",
    "run_dos_response_experiment",
    "FrequencyIds",
    "SenderFingerprintIds",
    "OnsetIds",
    "IdsAlert",
    "SyncNetwork",
    "DelayAttack",
    "PtpResult",
    "ptp_offset",
    "CyclicAsymmetryDetector",
    "AsymmetryVerdict",
    "GatewayFilter",
    "ForwardingRule",
    "FilterDecision",
    "BusOffAttack",
    "BusOffOutcome",
    "ErrorCounter",
    "simulate_busoff",
    "VirtualCanNetwork",
    "VcidSpoofAttacker",
]
