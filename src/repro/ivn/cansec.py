"""CANsec (CiA 613-2) for CAN XL — Table I, data-link row for CAN.

CANsec [19] is "inspired by MACsec" (paper §III-A): it brings
authenticated encryption with freshness to CAN XL frames, carried in the
data phase and signalled by the frame's SEC bit.  The model mirrors the
MACsec object structure scaled to CAN:

* secure zones (the CANsec analogue of connectivity associations) share
  a key;
* each protected frame carries a freshness counter and an ICV over
  header + payload, with optional confidentiality (AES-CTR via GCM);
* the wire overhead (16-byte ICV + 8-byte freshness/header) is exposed
  for the Table I bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.modes import AuthenticationError, Gcm
from repro.ivn.frames import CanXlFrame

__all__ = ["CansecSecuredFrame", "CansecZone", "CANSEC_OVERHEAD_BYTES"]

#: Security trailer added to the CAN XL payload: 8-byte freshness +
#: association metadata, 16-byte ICV.
CANSEC_OVERHEAD_BYTES = 24


@dataclass(frozen=True)
class CansecSecuredFrame:
    """A CANsec-protected CAN XL frame as it appears on the bus."""

    frame: CanXlFrame
    freshness: int
    icv: bytes
    encrypted: bool


class CansecZone:
    """A CANsec secure zone: nodes sharing a zone key.

    One instance per (zone, direction-agnostic) key; sender and receiver
    sides keep their own freshness state, as in SECOC.
    """

    def __init__(self, key: bytes, *, encrypt: bool = True) -> None:
        if len(key) not in (16, 32):
            raise ValueError("zone key must be 128 or 256 bits")
        self._gcm = Gcm(key)
        self.encrypt = encrypt
        self._tx_freshness = 0
        self._rx_freshness = 0
        self.stats = {"protected": 0, "accepted": 0, "rejected": 0}

    def _nonce(self, freshness: int, priority_id: int) -> bytes:
        return freshness.to_bytes(8, "big") + priority_id.to_bytes(4, "big")

    def _aad(self, frame: CanXlFrame, freshness: int) -> bytes:
        return (frame.priority_id.to_bytes(2, "big")
                + bytes([frame.sdu_type, frame.vcid])
                + frame.acceptance_field.to_bytes(4, "big")
                + freshness.to_bytes(8, "big"))

    def protect(self, frame: CanXlFrame) -> CansecSecuredFrame:
        """Protect a CAN XL frame; returns the on-bus representation."""
        if frame.sec:
            raise ValueError("frame already marked as secured")
        self._tx_freshness += 1
        freshness = self._tx_freshness
        nonce = self._nonce(freshness, frame.priority_id)
        aad = self._aad(frame, freshness)
        if self.encrypt:
            body, icv = self._gcm.encrypt(nonce, frame.payload, aad=aad)
        else:
            body = frame.payload
            _, icv = self._gcm.encrypt(nonce, b"", aad=aad + frame.payload)
        secured = CanXlFrame(
            priority_id=frame.priority_id,
            payload=body + b"\x00" * CANSEC_OVERHEAD_BYTES,
            sdu_type=frame.sdu_type,
            vcid=frame.vcid,
            acceptance_field=frame.acceptance_field,
            sec=True,
        )
        self.stats["protected"] += 1
        return CansecSecuredFrame(secured, freshness, icv, self.encrypt)

    def verify(self, secured: CansecSecuredFrame) -> bytes | None:
        """Validate freshness + ICV; returns plaintext or None on drop."""
        if secured.freshness <= self._rx_freshness:
            self.stats["rejected"] += 1
            return None
        frame = secured.frame
        body = frame.payload[:-CANSEC_OVERHEAD_BYTES]
        inner = CanXlFrame(
            priority_id=frame.priority_id,
            payload=body if body else b"\x00",
            sdu_type=frame.sdu_type,
            vcid=frame.vcid,
            acceptance_field=frame.acceptance_field,
        )
        nonce = self._nonce(secured.freshness, frame.priority_id)
        aad = self._aad(inner, secured.freshness)
        try:
            if secured.encrypted:
                plaintext = self._gcm.decrypt(nonce, body, secured.icv, aad=aad)
            else:
                self._gcm.decrypt(nonce, b"", secured.icv, aad=aad + body)
                plaintext = body
        except AuthenticationError:
            self.stats["rejected"] += 1
            return None
        self._rx_freshness = secured.freshness
        self.stats["accepted"] += 1
        return plaintext
