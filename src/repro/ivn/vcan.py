"""Virtual CAN networks over CAN XL (paper §III).

CAN XL frames carry an 8-bit **VCID** (virtual CAN network id) and a
32-bit acceptance field, letting one physical segment host several
logical networks — e.g. a safety network and a comfort network sharing
a cable.  This module models the isolation question that raises:

* :class:`VirtualCanNetwork` — VCID-based delivery filtering: nodes
  subscribe to VCIDs and only see matching frames (the *functional*
  isolation);
* the **VCID spoofing** problem: filtering is not security — a
  compromised node can emit any VCID, crossing the logical boundary;
* the fix: CANsec (:mod:`repro.ivn.cansec`) authenticates the VCID and
  acceptance field inside its AAD, so a frame rewritten to another VCID
  fails verification at the receiver — which the tests demonstrate
  end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ivn.cansec import CansecSecuredFrame, CansecZone
from repro.ivn.frames import CanXlFrame

__all__ = ["VirtualCanNetwork", "VcidSpoofAttacker"]


@dataclass
class VirtualCanNetwork:
    """A physical CAN XL segment hosting VCID-separated logical networks."""

    name: str = "xl0"
    _subscriptions: dict[str, set[int]] = field(default_factory=dict)
    _inboxes: dict[str, list[CanXlFrame | CansecSecuredFrame]] = field(default_factory=dict)
    _zones: dict[int, CansecZone] = field(default_factory=dict)

    def attach(self, node: str, vcids: set[int]) -> None:
        if node in self._subscriptions:
            raise ValueError(f"duplicate node {node!r}")
        if any(not 0 <= v < 256 for v in vcids):
            raise ValueError("VCIDs are 8-bit")
        self._subscriptions[node] = set(vcids)
        self._inboxes[node] = []

    def secure_vcid(self, vcid: int, key: bytes) -> CansecZone:
        """Protect one virtual network with a CANsec zone key."""
        zone = CansecZone(key)
        self._zones[vcid] = zone
        return zone

    def zone_for(self, vcid: int) -> CansecZone | None:
        return self._zones.get(vcid)

    def send(self, sender: str, frame: CanXlFrame | CansecSecuredFrame) -> None:
        """Broadcast on the physical segment; VCID filters delivery."""
        if sender not in self._subscriptions:
            raise KeyError(f"unknown node {sender!r}")
        vcid = (frame.frame.vcid if isinstance(frame, CansecSecuredFrame)
                else frame.vcid)
        for node, vcids in self._subscriptions.items():
            if node != sender and vcid in vcids:
                self._inboxes[node].append(frame)

    def receive(self, node: str) -> list[CanXlFrame | CansecSecuredFrame]:
        """Drain a node's inbox."""
        frames = self._inboxes[node]
        self._inboxes[node] = []
        return frames

    def receive_verified(self, node: str, vcid: int) -> list[bytes]:
        """Drain + CANsec-verify frames of a secured VCID.

        Returns the plaintext payloads of frames that verify; everything
        else (plain frames on a secured VCID, frames failing the ICV) is
        dropped — the secured network accepts only authentic traffic.
        """
        zone = self._zones.get(vcid)
        if zone is None:
            raise KeyError(f"VCID {vcid} is not secured")
        accepted = []
        for frame in self.receive(node):
            if not isinstance(frame, CansecSecuredFrame):
                continue
            if frame.frame.vcid != vcid:
                continue
            plaintext = zone.verify(frame)
            if plaintext is not None:
                accepted.append(plaintext)
        return accepted


@dataclass
class VcidSpoofAttacker:
    """A compromised node emitting frames tagged with a foreign VCID."""

    node: str

    def spoof(self, network: VirtualCanNetwork, *, target_vcid: int,
              payload: bytes, priority: int = 0x40) -> None:
        """Inject an unauthenticated frame into another virtual network."""
        network.send(self.node, CanXlFrame(
            priority_id=priority, payload=payload, vcid=target_vcid))

    def replay_into_vcid(self, network: VirtualCanNetwork,
                         captured: CansecSecuredFrame, *,
                         target_vcid: int) -> None:
        """Re-tag a captured secured frame with a different VCID.

        The VCID is part of CANsec's authenticated data, so the
        receiver's verification fails — the cross-network replay dies.
        """
        original = captured.frame
        moved = CanXlFrame(
            priority_id=original.priority_id,
            payload=original.payload,
            sdu_type=original.sdu_type,
            vcid=target_vcid,
            acceptance_field=original.acceptance_field,
            sec=True,
        )
        network.send(self.node, CansecSecuredFrame(
            moved, captured.freshness, captured.icv, captured.encrypted))
