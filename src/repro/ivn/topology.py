"""Zonal E/E architecture builder (paper Fig. 3).

Fig. 3's simplified in-vehicle network: a **central computing** unit
(CC), zone controllers connected to it via point-to-point Ethernet, and
endpoints (ECUs) attached to each zone via classic CAN or 10BASE-T1S.

:class:`ZonalArchitecture` builds both views the reproduction needs:

* a :class:`repro.core.entities.SystemModel` for attack-surface and
  reachability analysis (which entry points reach which ECUs);
* analytic end-to-end latency between any two endpoints, summing edge
  serialization (CAN / T1S / Ethernet frame timing) and zone-controller
  forwarding costs — the data behind the FIG3 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer
from repro.core.threats import AccessLevel
from repro.ivn.ethernet import EthernetLink, ZonalSwitch
from repro.ivn.frames import CanFrame, EthernetFrame

__all__ = ["Endpoint", "Zone", "ZonalArchitecture"]


@dataclass(frozen=True)
class Endpoint:
    """An ECU at the network edge."""

    name: str
    attachment: str             # "can" or "t1s"
    criticality: int = 3

    def __post_init__(self) -> None:
        if self.attachment not in ("can", "t1s"):
            raise ValueError("attachment must be 'can' or 't1s'")


@dataclass
class Zone:
    """A zone controller and its attached endpoints."""

    name: str
    endpoints: list[Endpoint] = field(default_factory=list)
    uplink: EthernetLink | None = None
    switch: ZonalSwitch | None = None

    def __post_init__(self) -> None:
        if self.uplink is None:
            self.uplink = EthernetLink(f"{self.name}-uplink", bitrate_bps=1e9)
        if self.switch is None:
            self.switch = ZonalSwitch(self.name)


class ZonalArchitecture:
    """The Fig. 3 network: CC + zones + CAN/T1S endpoints."""

    CAN_BITRATE = 500e3
    T1S_BITRATE = 10e6

    def __init__(self, *, telematics_exposed: bool = True) -> None:
        self.zones: dict[str, Zone] = {}
        self.telematics_exposed = telematics_exposed

    def add_zone(self, zone: Zone) -> Zone:
        if zone.name in self.zones:
            raise ValueError(f"duplicate zone {zone.name!r}")
        for endpoint in zone.endpoints:
            for other in self.zones.values():
                if any(e.name == endpoint.name for e in other.endpoints):
                    raise ValueError(f"duplicate endpoint {endpoint.name!r}")
        self.zones[zone.name] = zone
        return zone

    @classmethod
    def figure3(cls) -> "ZonalArchitecture":
        """The exact Fig. 3 shape: two zones, CAN + 10BASE-T1S endpoints."""
        arch = cls()
        arch.add_zone(Zone("zc-left", [
            Endpoint("ecu-can-1", "can", criticality=5),
            Endpoint("ecu-can-2", "can", criticality=3),
            Endpoint("ecu-t1s-1", "t1s", criticality=3),
        ]))
        arch.add_zone(Zone("zc-right", [
            Endpoint("ecu-can-3", "can", criticality=4),
            Endpoint("ecu-t1s-2", "t1s", criticality=2),
            Endpoint("ecu-t1s-3", "t1s", criticality=2),
        ]))
        return arch

    # -- structural view -----------------------------------------------------

    def system_model(self, *, secured_links: bool = False) -> SystemModel:
        """Export to the core SystemModel for attack-surface analysis.

        ``secured_links`` marks every interface authenticated, modeling a
        fully deployed S1/S2/S3-style protection for before/after
        comparisons.
        """
        model = SystemModel("zonal-ivn")
        model.add_component(Component("cc", Layer.NETWORK, criticality=5,
                                      description="central computing"))
        if self.telematics_exposed:
            model.add_component(Component("telematics", Layer.NETWORK, criticality=2,
                                          exposed=True, description="connectivity unit"))
            model.connect(Interface("telematics", "cc", "ethernet",
                                    AccessLevel.REMOTE, authenticated=secured_links))
        for zone in self.zones.values():
            model.add_component(Component(zone.name, Layer.NETWORK, criticality=4))
            model.connect(Interface("cc", zone.name, "ethernet",
                                    authenticated=secured_links))
            model.connect(Interface(zone.name, "cc", "ethernet",
                                    authenticated=secured_links))
            for endpoint in zone.endpoints:
                model.add_component(Component(endpoint.name, Layer.NETWORK,
                                              criticality=endpoint.criticality))
                protocol = "can" if endpoint.attachment == "can" else "10base-t1s"
                model.connect(Interface(zone.name, endpoint.name, protocol,
                                        authenticated=secured_links))
                model.connect(Interface(endpoint.name, zone.name, protocol,
                                        authenticated=secured_links))
        return model

    # -- latency view --------------------------------------------------------

    def _zone_of(self, endpoint_name: str) -> tuple[Zone, Endpoint]:
        for zone in self.zones.values():
            for endpoint in zone.endpoints:
                if endpoint.name == endpoint_name:
                    return zone, endpoint
        raise KeyError(f"unknown endpoint {endpoint_name!r}")

    def _edge_time(self, endpoint: Endpoint, payload_len: int) -> float:
        """Serialization time on the endpoint's edge medium."""
        if endpoint.attachment == "can":
            # Classic CAN: segment into 8-byte frames.
            n_frames = max(1, (payload_len + 7) // 8)
            frame = CanFrame(0x100, b"\x00" * min(payload_len, 8))
            return n_frames * frame.transmission_time_s(self.CAN_BITRATE)
        frame = EthernetFrame("zc", "ecu", b"\x00" * payload_len)
        return frame.transmission_time_s(self.T1S_BITRATE)

    def path_latency_s(self, src: str, dst: str, payload_len: int = 8) -> float:
        """Analytic latency for ``payload_len`` bytes from ``src`` to ``dst``.

        Endpoints are edge names or "cc". The path is edge → zone uplink
        → CC (→ zone uplink → edge), with store-and-forward at each zone
        controller.
        """
        if src == dst:
            return 0.0
        total = 0.0
        eth_payload = EthernetFrame("a", "b", b"\x00" * payload_len)

        if src != "cc":
            zone, endpoint = self._zone_of(src)
            total += self._edge_time(endpoint, payload_len)
            total += zone.switch.forward_time_s(eth_payload)
            total += zone.uplink.transfer_time_s(eth_payload)
        if dst != "cc":
            zone, endpoint = self._zone_of(dst)
            total += zone.uplink.transfer_time_s(eth_payload)
            total += zone.switch.forward_time_s(eth_payload)
            total += self._edge_time(endpoint, payload_len)
        return total

    def latency_matrix(self, payload_len: int = 8) -> dict[tuple[str, str], float]:
        """All-pairs endpoint/CC latency table (the FIG3 bench output)."""
        names = ["cc"] + [e.name for z in self.zones.values() for e in z.endpoints]
        return {
            (a, b): self.path_latency_s(a, b, payload_len)
            for a in names for b in names if a != b
        }
