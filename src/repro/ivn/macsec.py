"""IEEE 802.1AE MACsec — Table I, scenarios S2/S3 (paper Figs. 5–6).

MACsec [20] provides hop-scoped (or, over CANAL, end-to-end)
authenticated encryption at the data-link layer:

* :class:`SecureChannel` / :class:`SecureAssociation` — the 802.1AE
  object model: a unidirectional SC identified by an SCI, carrying
  rotating SAs keyed by (AN, SAK), each with a monotonically increasing
  packet number used as the GCM nonce and for replay protection;
* :class:`MacsecPort` (the SecY) — protect/validate frames with GCM-AES,
  SecTAG encoding, replay window enforcement;
* :class:`MkaSession` — a minimal MACsec Key Agreement [25] model:
  peers holding the same CAK derive and distribute a SAK (HKDF from the
  CAK, as MKA's AES-KDF does) and install it into their SecYs.

The model carries real cryptography (AES-GCM from
:mod:`repro.crypto.modes`) so tamper/replay behaviour in the scenario
tests is enforced by the math, not by flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.kdf import hkdf
from repro.crypto.modes import AuthenticationError, Gcm

__all__ = ["Sci", "SecureAssociation", "SecureChannel", "MacsecFrame", "MacsecPort", "MkaSession"]


@dataclass(frozen=True)
class Sci:
    """Secure Channel Identifier: system address + port id."""

    system_id: str
    port: int = 1

    def encode(self) -> bytes:
        return self.system_id.encode()[:6].ljust(6, b"\x00") + self.port.to_bytes(2, "big")


@dataclass
class SecureAssociation:
    """One SA: association number, key, and next packet number."""

    an: int
    sak: bytes
    next_pn: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.an <= 3:
            raise ValueError("AN is a 2-bit field")
        if len(self.sak) not in (16, 32):
            raise ValueError("SAK must be 128 or 256 bits")


@dataclass
class SecureChannel:
    """A unidirectional secure channel with up to four rotating SAs."""

    sci: Sci
    associations: dict[int, SecureAssociation] = field(default_factory=dict)
    active_an: int = 0

    def install_sa(self, sa: SecureAssociation, *, activate: bool = True) -> None:
        self.associations[sa.an] = sa
        if activate:
            self.active_an = sa.an

    @property
    def active(self) -> SecureAssociation:
        try:
            return self.associations[self.active_an]
        except KeyError:
            raise RuntimeError("no active SA installed") from None


@dataclass(frozen=True)
class MacsecFrame:
    """A protected frame: SecTAG fields + ciphertext + ICV."""

    sci: Sci
    an: int
    pn: int
    ciphertext: bytes
    icv: bytes
    dst: str = ""
    src: str = ""


class MacsecPort:
    """A SecY: one transmit SC plus any number of receive SCs.

    Args:
        system_id: this station's identity (forms its SCI).
        replay_window: accepted out-of-order distance; 0 = strict order.
    """

    def __init__(self, system_id: str, *, replay_window: int = 0) -> None:
        if replay_window < 0:
            raise ValueError("replay window must be non-negative")
        self.sci = Sci(system_id)
        self.tx_sc = SecureChannel(self.sci)
        self.rx_scs: dict[bytes, SecureChannel] = {}
        self.replay_window = replay_window
        # Replay state is kept per (SC, AN): packet numbers restart at 1
        # when MKA installs a fresh SAK under a new association number.
        self._rx_highest: dict[tuple[bytes, int], int] = {}
        self._rx_seen: dict[tuple[bytes, int], set[int]] = {}
        self.stats = {"protected": 0, "validated": 0, "replay_dropped": 0, "auth_failed": 0}

    # -- key management ------------------------------------------------------

    def install_tx_sak(self, an: int, sak: bytes) -> None:
        self.tx_sc.install_sa(SecureAssociation(an, sak))

    def install_rx_sak(self, peer_sci: Sci, an: int, sak: bytes) -> None:
        key = peer_sci.encode()
        channel = self.rx_scs.setdefault(key, SecureChannel(peer_sci))
        channel.install_sa(SecureAssociation(an, sak))
        # A fresh SA restarts its packet numbers at 1; stale replay
        # state from a previous SAK that used the same AN must go.
        self._rx_highest.pop((key, an), None)
        self._rx_seen.pop((key, an), None)

    @property
    def stored_keys(self) -> int:
        """Number of SAKs held by this SecY (the key-storage census of S1/S2)."""
        count = len(self.tx_sc.associations)
        count += sum(len(sc.associations) for sc in self.rx_scs.values())
        return count

    # -- data path -----------------------------------------------------------

    def _nonce(self, sci: Sci, pn: int) -> bytes:
        return sci.encode() + pn.to_bytes(4, "big")

    def protect(self, payload: bytes, *, aad: bytes = b"",
                dst: str = "", src: str = "") -> MacsecFrame:
        """Encrypt-and-authenticate a frame for transmission."""
        sa = self.tx_sc.active
        pn = sa.next_pn
        sa.next_pn += 1
        gcm = Gcm(sa.sak)
        header = self.sci.encode() + bytes([sa.an]) + pn.to_bytes(4, "big") + aad
        ciphertext, icv = gcm.encrypt(self._nonce(self.sci, pn), payload, aad=header)
        self.stats["protected"] += 1
        return MacsecFrame(self.sci, sa.an, pn, ciphertext, icv, dst=dst, src=src)

    def validate(self, frame: MacsecFrame, *, aad: bytes = b"") -> bytes | None:
        """Verify and decrypt a received frame.

        Returns the plaintext, or None when the frame is dropped
        (unknown SC, authentication failure, or replay).
        """
        channel = self.rx_scs.get(frame.sci.encode())
        if channel is None or frame.an not in channel.associations:
            self.stats["auth_failed"] += 1
            return None
        sa = channel.associations[frame.an]
        sc_key = (frame.sci.encode(), frame.an)
        highest = self._rx_highest.get(sc_key, 0)
        if frame.pn <= highest - self.replay_window or frame.pn in self._rx_seen.get(sc_key, set()):
            self.stats["replay_dropped"] += 1
            return None
        gcm = Gcm(sa.sak)
        header = frame.sci.encode() + bytes([frame.an]) + frame.pn.to_bytes(4, "big") + aad
        try:
            plaintext = gcm.decrypt(self._nonce(frame.sci, frame.pn),
                                    frame.ciphertext, frame.icv, aad=header)
        except AuthenticationError:
            self.stats["auth_failed"] += 1
            return None
        self._rx_highest[sc_key] = max(highest, frame.pn)
        self._rx_seen.setdefault(sc_key, set()).add(frame.pn)
        self.stats["validated"] += 1
        return plaintext


class MkaSession:
    """Minimal MACsec Key Agreement: derive and install a SAK from a CAK.

    All members of a connectivity association share the CAK; the key
    server derives the SAK with a KDF over the CAK and a key number
    (802.1X-2020 §9.8 uses AES-CMAC-KDF; HKDF is the stand-in here) and
    installs it into every member's SecY.
    """

    def __init__(self, cak: bytes, members: list[MacsecPort]) -> None:
        if len(cak) not in (16, 32):
            raise ValueError("CAK must be 128 or 256 bits")
        if len(members) < 2:
            raise ValueError("a connectivity association needs >= 2 members")
        self.cak = cak
        self.members = members
        self.key_number = 0

    def distribute_sak(self) -> bytes:
        """Derive the next SAK and install it on all members (AN rotates)."""
        self.key_number += 1
        sak = hkdf(self.cak, info=b"IEEE8021 SAK" + self.key_number.to_bytes(4, "big"),
                   length=16)
        an = self.key_number % 4
        for member in self.members:
            member.install_tx_sak(an, sak)
            for peer in self.members:
                if peer is not member:
                    member.install_rx_sak(peer.sci, an, sak)
        return sak
