"""In-vehicle intrusion detection (paper §VIII, refs [51]-[53]).

The paper's network-layer defense story has two pillars: cryptographic
protocols (SECOC/MACsec/CANsec) and "additional defensive measures, such
as intrusion detection systems that monitor network activity".  Three
detectors are provided, mirroring the cited work:

* :class:`FrequencyIds` — per-id inter-arrival-time profiling; a
  masquerade injector doubles the apparent rate of the spoofed id
  (periodic CAN traffic makes this the classic first-line detector);
* :class:`SenderFingerprintIds` — models EASI-style [52] physical
  sender identification: each node has a voltage/timing fingerprint and
  the detector flags frames whose fingerprint does not match the id's
  registered owner;
* :class:`OnsetIds` — a payload-freshness guard that flags ids whose
  counters/freshness regress (replay symptom) — complementing SECOC
  where only a subset of ids is secured.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, stdev

from repro.core.rng import numpy_rng

__all__ = ["IdsAlert", "FrequencyIds", "SenderFingerprintIds", "OnsetIds"]


@dataclass(frozen=True)
class IdsAlert:
    """One IDS detection."""

    detector: str
    time: float
    can_id: int
    reason: str


class FrequencyIds:
    """Inter-arrival-time anomaly detection per CAN id.

    Training records the mean/std of inter-arrival times per id;
    monitoring flags arrivals more than ``sigma_threshold`` standard
    deviations too early (injection accelerates the apparent rate).
    """

    def __init__(self, *, sigma_threshold: float = 4.0, min_training: int = 10,
                 burst_threshold: int = 20, burst_window_s: float = 0.05) -> None:
        if sigma_threshold <= 0:
            raise ValueError("sigma_threshold must be positive")
        if burst_threshold < 2 or burst_window_s <= 0:
            raise ValueError("invalid burst detection parameters")
        self.sigma_threshold = sigma_threshold
        self.min_training = min_training
        self.burst_threshold = burst_threshold
        self.burst_window_s = burst_window_s
        self._training: dict[int, list[float]] = {}
        self._profile: dict[int, tuple[float, float]] = {}
        self._last_seen: dict[int, float] = {}
        self._unknown_bursts: dict[int, list[float]] = {}
        self.alerts: list[IdsAlert] = []

    def train(self, can_id: int, timestamp: float) -> None:
        last = self._last_seen.get(can_id)
        self._last_seen[can_id] = timestamp
        if last is None:
            return
        samples = self._training.setdefault(can_id, [])
        samples.append(timestamp - last)
        if len(samples) >= self.min_training:
            mu = mean(samples)
            sd = stdev(samples) if len(samples) > 1 else 0.0
            self._profile[can_id] = (mu, max(sd, 0.01 * mu))

    def monitor(self, can_id: int, timestamp: float) -> IdsAlert | None:
        last = self._last_seen.get(can_id)
        self._last_seen[can_id] = timestamp
        profile = self._profile.get(can_id)
        if profile is None:
            # An id never seen in training: tolerate sporadic frames but
            # flag a sustained burst (the flood-DoS signature).
            window = self._unknown_bursts.setdefault(can_id, [])
            window.append(timestamp)
            window[:] = [t for t in window if t > timestamp - self.burst_window_s]
            if len(window) >= self.burst_threshold:
                alert = IdsAlert("frequency", timestamp, can_id,
                                 f"unprofiled id bursting: {len(window)} frames "
                                 f"in {self.burst_window_s}s")
                self.alerts.append(alert)
                window.clear()
                return alert
            return None
        if last is None:
            return None
        mu, sd = profile
        gap = timestamp - last
        if gap < mu - self.sigma_threshold * sd:
            alert = IdsAlert("frequency", timestamp, can_id,
                             f"inter-arrival {gap:.6f}s << expected {mu:.6f}s")
            self.alerts.append(alert)
            return alert
        return None


class SenderFingerprintIds:
    """EASI-style sender identification from physical-layer features.

    Each node has a scalar fingerprint (abstracting voltage-edge
    features); at registration the detector learns which fingerprint
    legitimately transmits each id. A monitored frame whose measured
    fingerprint (noisy) is closer to a *different* node's than to the
    registered owner's is flagged.
    """

    def __init__(self, *, noise_sigma: float = 0.05, seed_label: str = "easi") -> None:
        self._noise = noise_sigma
        self._rng = numpy_rng(seed_label)
        self._node_fingerprints: dict[str, float] = {}
        self._id_owner: dict[int, str] = {}
        self.alerts: list[IdsAlert] = []

    def register_node(self, name: str, fingerprint: float) -> None:
        self._node_fingerprints[name] = fingerprint

    def register_id(self, can_id: int, owner: str) -> None:
        if owner not in self._node_fingerprints:
            raise KeyError(f"unknown node {owner!r}")
        self._id_owner[can_id] = owner

    def observe(self, can_id: int, actual_sender: str, timestamp: float) -> IdsAlert | None:
        owner = self._id_owner.get(can_id)
        if owner is None or actual_sender not in self._node_fingerprints:
            return None
        measured = (self._node_fingerprints[actual_sender]
                    + self._rng.normal(0.0, self._noise))
        # Classify the measured fingerprint to the nearest registered node.
        classified = min(self._node_fingerprints,
                         key=lambda n: abs(self._node_fingerprints[n] - measured))
        if classified != owner:
            alert = IdsAlert("fingerprint", timestamp, can_id,
                             f"id owned by {owner} but fingerprint matches {classified}")
            self.alerts.append(alert)
            return alert
        return None


class OnsetIds:
    """Counter-regression detector (replay symptom).

    Tracks the last payload counter per id (byte 0 by convention in the
    simulated traffic) and flags non-increasing values.
    """

    def __init__(self) -> None:
        self._last: dict[int, int] = {}
        self.alerts: list[IdsAlert] = []

    def observe(self, can_id: int, payload: bytes, timestamp: float) -> IdsAlert | None:
        if not payload:
            return None
        counter = payload[0]
        last = self._last.get(can_id)
        self._last[can_id] = counter
        if last is not None and counter <= last and not (last > 200 and counter < 50):
            alert = IdsAlert("onset", timestamp, can_id,
                             f"counter regressed {last} -> {counter}")
            self.alerts.append(alert)
            return alert
        return None
