"""Security protocol stack scenarios S1–S3 (paper Figs. 4–6).

The paper compares three ways of securing ECU ↔ central-computing (CC)
traffic across a zone controller (ZC):

* **S1** (Fig. 4): SECOC end-to-end at the application layer over the
  CAN edge, MACsec on the ZC–CC Ethernet hop. Disadvantages named by
  the paper: heavy AUTOSAR software load, authentication-only (no
  confidentiality on the CAN edge), and (session) key storage in the ZC.
* **S2** (Fig. 5): homogeneous Ethernet (10BASE-T1S edge) with MACsec
  either **end-to-end** (no ZC keys, no ZC security processing, but
  intermediate nodes cannot modify headers) or **point-to-point**
  (hardware-friendly per hop, but the ZC holds keys and sees plaintext).
* **S3** (Fig. 6): CANAL tunnels end-to-end MACsec over CAN XL — CAN
  endpoints get S2a's end-to-end properties.

Each ``run_s*`` function pushes a real payload through the actual
protocol implementations (SECOC CMAC, MACsec GCM, CANAL segmentation) so
delivery is verified cryptographically, then accounts wire bits and
processing time per hop. The resulting :class:`ScenarioReport` rows are
the data behind the FIG4/FIG5/FIG6 benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ivn.canal import CanalCodec
from repro.ivn.ethernet import EthernetLink, ZonalSwitch
from repro.ivn.frames import CanFrame, EthernetFrame
from repro.ivn.macsec import MacsecFrame, MacsecPort, MkaSession
from repro.ivn.secoc import PROFILE_1, SecOcChannel, SecOcProfile

__all__ = ["ScenarioReport", "run_s1", "run_s2_end_to_end", "run_s2_point_to_point", "run_s3_canal", "run_all_scenarios"]

_CAN_BITRATE = 500e3
_T1S_BITRATE = 10e6
_XL_NOMINAL = 500e3
_XL_DATA = 10e6


@dataclass(frozen=True)
class ScenarioReport:
    """Quantified properties of one scenario run."""

    name: str
    delivered: bool
    payload_bytes: int
    wire_bits_edge: int          # ECU <-> ZC segment
    wire_bits_backbone: int      # ZC <-> CC segment
    latency_s: float
    keys_at_ecu: int
    keys_at_zc: int
    keys_at_cc: int
    zc_sees_plaintext: bool
    confidentiality_on_edge: bool
    zc_can_modify_headers: bool

    @property
    def total_wire_bits(self) -> int:
        return self.wire_bits_edge + self.wire_bits_backbone

    @property
    def goodput_ratio(self) -> float:
        """Payload bits delivered per wire bit spent."""
        return 8 * self.payload_bytes / self.total_wire_bits


def _serialize_macsec(frame: MacsecFrame) -> bytes:
    """Flatten a MACsec frame for tunneling (SecTAG fields + body + ICV)."""
    return (frame.sci.encode() + bytes([frame.an]) + frame.pn.to_bytes(4, "big")
            + len(frame.ciphertext).to_bytes(2, "big") + frame.ciphertext + frame.icv)


def _deserialize_macsec(blob: bytes) -> MacsecFrame:
    from repro.ivn.macsec import Sci

    sci_raw, an, pn = blob[:8], blob[8], int.from_bytes(blob[9:13], "big")
    length = int.from_bytes(blob[13:15], "big")
    ciphertext = blob[15 : 15 + length]
    icv = blob[15 + length : 15 + length + 16]
    system_id = sci_raw[:6].rstrip(b"\x00").decode()
    return MacsecFrame(Sci(system_id, int.from_bytes(sci_raw[6:], "big")),
                       an, pn, ciphertext, icv)


def run_s1(payload: bytes, *, profile: SecOcProfile = PROFILE_1,
           key: bytes = b"\x10" * 16, edge: str = "can") -> ScenarioReport:
    """Scenario S1: SECOC over the CAN edge + MACsec on the backbone.

    ``edge`` selects the CAN flavour at the endpoint: ``"can"`` segments
    the secured PDU across classic 8-byte frames; ``"can-fd"`` carries
    it in 64-byte frames with bit-rate switching (the ablation showing
    why SECOC deployments prefer FD when payloads outgrow profile 1).
    """
    if edge not in ("can", "can-fd"):
        raise ValueError("edge must be 'can' or 'can-fd'")
    ecu_secoc = SecOcChannel(key, profile)
    cc_secoc = SecOcChannel(key, profile)
    zc_port = MacsecPort("zc")
    cc_port = MacsecPort("cc")
    MkaSession(b"\x20" * 16, [zc_port, cc_port]).distribute_sak()
    switch = ZonalSwitch("zc")
    uplink = EthernetLink("zc-cc", bitrate_bps=1e9)

    # ECU secures the PDU and segments it over the CAN edge.
    pdu = ecu_secoc.secure(0x100, payload)
    wire_payload = pdu.wire_payload(profile)
    if edge == "can":
        chunks = [wire_payload[i : i + 8] for i in range(0, len(wire_payload), 8)]
        can_frames = [CanFrame(0x100, chunk) for chunk in chunks]
        edge_bits = sum(f.wire_bits() for f in can_frames)
        edge_time = sum(f.transmission_time_s(_CAN_BITRATE) for f in can_frames)
    else:
        from repro.ivn.frames import CanFdFrame

        chunks = [wire_payload[i : i + 64] for i in range(0, len(wire_payload), 64)]
        fd_frames = [CanFdFrame(0x100, chunk) for chunk in chunks]
        edge_bits = sum(f.arbitration_phase_bits() + f.data_phase_bits()
                        for f in fd_frames)
        edge_time = sum(f.transmission_time_s(_CAN_BITRATE, 2e6)
                        for f in fd_frames)

    # ZC re-encapsulates the secured PDU into a MACsec-protected Ethernet
    # frame toward CC. The ZC does security processing (MACsec protect)
    # and therefore holds session keys — S1's named disadvantage.
    macsec_frame = zc_port.protect(wire_payload)
    eth = EthernetFrame("cc", "zc", macsec_frame.ciphertext, macsec=True)
    backbone_bits = eth.wire_bits()
    backbone_time = (switch.forward_time_s(eth, security_termination=True)
                     + uplink.transfer_time_s(eth))

    # CC validates MACsec, then verifies SECOC end-to-end.
    recovered = cc_port.validate(macsec_frame)
    delivered = False
    if recovered is not None and recovered == wire_payload:
        from repro.ivn.secoc import SecuredPdu

        fv_bytes = (profile.freshness_bits + 7) // 8
        mac_bytes = profile.mac_bits // 8
        body = recovered[: len(recovered) - fv_bytes - mac_bytes]
        fv = int.from_bytes(recovered[len(body) : len(body) + fv_bytes], "big")
        mac = recovered[len(body) + fv_bytes :]
        delivered = cc_secoc.verify(SecuredPdu(0x100, body, fv, mac))

    return ScenarioReport(
        name="S1 SECOC+MACsec" + ("" if edge == "can" else " (FD edge)"),
        delivered=delivered,
        payload_bytes=len(payload),
        wire_bits_edge=edge_bits,
        wire_bits_backbone=backbone_bits,
        latency_s=edge_time + backbone_time,
        keys_at_ecu=1,                      # SECOC key
        keys_at_zc=zc_port.stored_keys,     # MACsec session keys in the ZC
        keys_at_cc=1 + cc_port.stored_keys, # SECOC + MACsec
        zc_sees_plaintext=True,             # SECOC authenticates only
        confidentiality_on_edge=False,
        zc_can_modify_headers=True,
    )


def _s2_common(payload: bytes, *, end_to_end: bool) -> ScenarioReport:
    switch = ZonalSwitch("zc")
    uplink = EthernetLink("zc-cc", bitrate_bps=1e9)
    ecu_port = MacsecPort("ecu")
    cc_port = MacsecPort("cc")
    zc_port = MacsecPort("zc")

    if end_to_end:
        MkaSession(b"\x30" * 16, [ecu_port, cc_port]).distribute_sak()
        frame = ecu_port.protect(payload)
        edge_eth = EthernetFrame("cc", "ecu", frame.ciphertext, macsec=True)
        edge_bits = edge_eth.wire_bits()
        edge_time = edge_eth.transmission_time_s(_T1S_BITRATE)
        backbone_bits = edge_eth.wire_bits()
        backbone_time = (switch.forward_time_s(edge_eth)   # plain forwarding
                         + uplink.transfer_time_s(edge_eth))
        recovered = cc_port.validate(frame)
        delivered = recovered == payload
        zc_keys = zc_port.stored_keys          # zero — the point of S2a
        zc_plaintext = False
        zc_modify = False                      # header locked by the ICV
        name = "S2a MACsec end-to-end"
    else:
        MkaSession(b"\x31" * 16, [ecu_port, zc_port]).distribute_sak()
        MkaSession(b"\x32" * 16, [zc_port, cc_port]).distribute_sak()
        hop1 = ecu_port.protect(payload)
        edge_eth = EthernetFrame("zc", "ecu", hop1.ciphertext, macsec=True)
        edge_bits = edge_eth.wire_bits()
        edge_time = edge_eth.transmission_time_s(_T1S_BITRATE)
        middle = zc_port.validate(hop1)
        delivered = False
        backbone_bits = 0
        backbone_time = 0.0
        if middle is not None:
            hop2 = zc_port.protect(middle)
            backbone_eth = EthernetFrame("cc", "zc", hop2.ciphertext, macsec=True)
            backbone_bits = backbone_eth.wire_bits()
            backbone_time = (switch.forward_time_s(backbone_eth, security_termination=True)
                             + uplink.transfer_time_s(backbone_eth))
            recovered = cc_port.validate(hop2)
            delivered = recovered == payload
        zc_keys = zc_port.stored_keys
        zc_plaintext = True
        zc_modify = True
        name = "S2b MACsec point-to-point"

    return ScenarioReport(
        name=name,
        delivered=delivered,
        payload_bytes=len(payload),
        wire_bits_edge=edge_bits,
        wire_bits_backbone=backbone_bits,
        latency_s=edge_time + backbone_time,
        keys_at_ecu=ecu_port.stored_keys,
        keys_at_zc=zc_keys,
        keys_at_cc=cc_port.stored_keys,
        zc_sees_plaintext=zc_plaintext,
        confidentiality_on_edge=True,
        zc_can_modify_headers=zc_modify,
    )


def run_s2_end_to_end(payload: bytes) -> ScenarioReport:
    """Scenario S2 variant (1): MACsec end-to-end over Ethernet/T1S."""
    return _s2_common(payload, end_to_end=True)


def run_s2_point_to_point(payload: bytes) -> ScenarioReport:
    """Scenario S2 variant (2): MACsec hop-by-hop."""
    return _s2_common(payload, end_to_end=False)


def run_s3_canal(payload: bytes, *, canal_mode: str = "can-xl") -> ScenarioReport:
    """Scenario S3: end-to-end MACsec tunneled over CANAL on the CAN edge."""
    ecu_port = MacsecPort("ecu")
    cc_port = MacsecPort("cc")
    MkaSession(b"\x40" * 16, [ecu_port, cc_port]).distribute_sak()
    codec_tx = CanalCodec(mode=canal_mode)
    codec_rx = CanalCodec(mode=canal_mode)
    switch = ZonalSwitch("zc")
    uplink = EthernetLink("zc-cc", bitrate_bps=1e9)

    frame = ecu_port.protect(payload)
    blob = _serialize_macsec(frame)
    can_frames = codec_tx.encapsulate(blob)
    edge_bits = 0
    edge_time = 0.0
    for can_frame in can_frames:
        if canal_mode == "can":
            edge_bits += can_frame.wire_bits()
            edge_time += can_frame.transmission_time_s(_CAN_BITRATE)
        else:
            edge_bits += (can_frame.arbitration_phase_bits()
                          + can_frame.data_phase_bits())
            edge_time += can_frame.transmission_time_s(_XL_NOMINAL, _XL_DATA)

    # ZC reassembles the tunneled frame and forwards it as Ethernet — it
    # performs *no* security processing and stores *no* keys.
    reassembled = None
    for can_frame in can_frames:
        reassembled = codec_rx.reassemble(can_frame) or reassembled
    delivered = False
    backbone_bits = 0
    backbone_time = 0.0
    if reassembled is not None:
        eth = EthernetFrame("cc", "zc", reassembled, macsec=True)
        backbone_bits = eth.wire_bits()
        backbone_time = switch.forward_time_s(eth) + uplink.transfer_time_s(eth)
        recovered = cc_port.validate(_deserialize_macsec(reassembled))
        delivered = recovered == payload

    return ScenarioReport(
        name=f"S3 CANAL({canal_mode})+MACsec e2e",
        delivered=delivered,
        payload_bytes=len(payload),
        wire_bits_edge=edge_bits,
        wire_bits_backbone=backbone_bits,
        latency_s=edge_time + backbone_time,
        keys_at_ecu=ecu_port.stored_keys,
        keys_at_zc=0,
        keys_at_cc=cc_port.stored_keys,
        zc_sees_plaintext=False,
        confidentiality_on_edge=True,
        zc_can_modify_headers=False,
    )


def run_all_scenarios(payload: bytes) -> list[ScenarioReport]:
    """S1, S2a, S2b, S3 side by side (the Figs. 4–6 comparison table)."""
    return [
        run_s1(payload),
        run_s2_end_to_end(payload),
        run_s2_point_to_point(payload),
        run_s3_canal(payload),
    ]
