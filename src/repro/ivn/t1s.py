"""10BASE-T1S multidrop Ethernet with PLCA (paper §III, Fig. 3).

10BASE-T1S [15] runs 10 Mb/s Ethernet over a single twisted pair in
**multidrop** mode — several endpoints share one segment, which
"decreases cabling weight" (the paper's stated motivation for using it
at the zone edge).  Collision-free access is provided by **PLCA**
(Physical Layer Collision Avoidance, IEEE 802.3cg clause 148): a
round-robin of transmit opportunities rotating through node IDs.

The model captures what the scenario benchmarks need: per-node transmit
opportunities in strict rotation, per-opportunity overhead (beacon +
TO timers), and frame timing at 10 Mb/s — giving realistic end-to-end
latency for T1S endpoints vs switched point-to-point Ethernet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Simulator
from repro.ivn.frames import EthernetFrame

__all__ = ["PlcaConfig", "T1sSegment"]


@dataclass(frozen=True)
class PlcaConfig:
    """PLCA cycle parameters."""

    bitrate_bps: float = 10e6
    to_timer_s: float = 3.2e-6      # 32 bit-times transmit-opportunity timer
    beacon_s: float = 2.0e-6        # beacon per cycle (coordinator)

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0 or self.to_timer_s <= 0 or self.beacon_s < 0:
            raise ValueError("PLCA timing parameters must be positive")


@dataclass
class _T1sDelivery:
    sender: str
    frame: EthernetFrame
    enqueued_at: float
    completed_at: float

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.enqueued_at


class T1sSegment:
    """A shared 10BASE-T1S segment under PLCA round-robin.

    Nodes are registered in PLCA-ID order; each cycle visits every node
    once, spending ``to_timer_s`` if the node has nothing to send or the
    frame time if it transmits. All nodes receive every frame (shared
    medium), mirroring the CAN-style broadcast the paper's Fig. 3 zone
    model implies.
    """

    def __init__(self, sim: Simulator, *, name: str = "t1s0",
                 config: PlcaConfig | None = None) -> None:
        self.sim = sim
        self.name = name
        self.config = config or PlcaConfig()
        self.node_order: list[str] = []
        self._queues: dict[str, list[tuple[EthernetFrame, float]]] = {}
        self.delivered: list[_T1sDelivery] = []
        self.received: dict[str, list[_T1sDelivery]] = {}
        self._running = False

    def attach(self, name: str) -> None:
        if name in self._queues:
            raise ValueError(f"duplicate node {name!r}")
        self.node_order.append(name)
        self._queues[name] = []
        self.received[name] = []

    def send(self, sender: str, frame: EthernetFrame) -> None:
        if sender not in self._queues:
            raise KeyError(f"node {sender!r} not attached")
        self._queues[sender].append((frame, self.sim.now))
        if not self._running:
            self._running = True
            self.sim.schedule(0.0, self._run_cycle)

    def _pending(self) -> bool:
        return any(self._queues.values())

    def _run_cycle(self) -> None:
        """One full PLCA rotation; reschedules itself while work remains."""
        elapsed = self.config.beacon_s
        for node in self.node_order:
            queue = self._queues[node]
            if queue:
                frame, enqueued = queue.pop(0)
                frame_time = frame.transmission_time_s(self.config.bitrate_bps)
                elapsed += frame_time
                completed = self.sim.now + elapsed
                delivery = _T1sDelivery(node, frame, enqueued, completed)
                self.delivered.append(delivery)
                for other in self.node_order:
                    if other != node:
                        self.received[other].append(delivery)
            else:
                elapsed += self.config.to_timer_s

        def next_cycle() -> None:
            if self._pending():
                self._run_cycle()
            else:
                self._running = False

        self.sim.schedule(elapsed, next_cycle)
