"""CAN bus simulator with priority arbitration (paper §III, Fig. 3).

Models the shared-medium behaviour that matters for the network-layer
security discussion: non-destructive bitwise arbitration (lowest ID
wins), which is simultaneously CAN's real-time strength and its
masquerade/DoS weakness — *any* node can transmit *any* identifier
(:mod:`repro.ivn.attacks` exploits exactly this).

Runs on the deterministic event kernel (:mod:`repro.core.events`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.core.events import Simulator
from repro.core.layers import Layer
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["BusFrame", "CanBus", "BusNode"]


class _TimedFrame(Protocol):
    can_id: int

    def transmission_time_s(self, *args: float) -> float: ...


@dataclass(frozen=True)
class BusFrame:
    """A frame queued on the bus, tagged with its sender."""

    sender: str
    frame: object            # CanFrame / CanFdFrame / CanXlFrame
    enqueued_at: float
    priority: int            # arbitration id (lower wins)


@dataclass
class DeliveryRecord:
    """Bookkeeping for a completed transmission."""

    sender: str
    frame: object
    enqueued_at: float
    started_at: float
    completed_at: float

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.enqueued_at

    @property
    def queueing_delay_s(self) -> float:
        return self.started_at - self.enqueued_at


class BusNode:
    """A CAN node: receives every frame on the bus (broadcast medium)."""

    def __init__(self, name: str,
                 on_receive: Callable[[DeliveryRecord], None] | None = None) -> None:
        self.name = name
        self.received: list[DeliveryRecord] = []
        self._on_receive = on_receive

    def deliver(self, record: DeliveryRecord) -> None:
        self.received.append(record)
        if self._on_receive is not None:
            self._on_receive(record)


class CanBus:
    """A single CAN segment with priority arbitration.

    Frames queued while the bus is busy contend at the next idle instant;
    the lowest arbitration id wins (FIFO among same-priority frames).
    The model transmits whole frames (no mid-frame preemption), matching
    CAN's non-destructive arbitration semantics.

    Args:
        sim: shared event kernel.
        bitrate_bps: nominal bitrate (classic CAN) — for FD/XL frames the
            frame's own dual-rate timing is used with this as the
            nominal-phase rate.
        data_bitrate_bps: data-phase rate for FD/XL frames.
    """

    def __init__(self, sim: Simulator, *, name: str = "can0",
                 bitrate_bps: float = 500e3,
                 data_bitrate_bps: float = 2e6) -> None:
        self.sim = sim
        self.name = name
        self.bitrate_bps = bitrate_bps
        self.data_bitrate_bps = data_bitrate_bps
        self.nodes: dict[str, BusNode] = {}
        self.delivered: list[DeliveryRecord] = []
        self._queue: list[BusFrame] = []
        self._busy = False

    def attach(self, node: BusNode) -> BusNode:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        return node

    def send(self, sender: str, frame: object) -> None:
        """Queue ``frame`` for transmission by ``sender``."""
        if sender not in self.nodes:
            raise KeyError(f"node {sender!r} not attached to {self.name}")
        priority = getattr(frame, "can_id", None)
        if priority is None:
            priority = getattr(frame, "priority_id", None)
        if priority is None:
            raise TypeError("frame must carry can_id or priority_id")
        self._queue.append(BusFrame(sender, frame, self.sim.now, priority))
        if OBS.enabled:
            OBS.count("ivn.bus.frames_sent")
            if OBS.sample("ivn.bus.frame_sent"):
                OBS.emit(EventKind.FRAME_SENT, Layer.NETWORK, self.name,
                         f"{sender} queued id {priority:#x}", t=self.sim.now,
                         sender=sender, can_id=priority)
        if not self._busy:
            self._start_next()

    def _frame_time(self, frame: object) -> float:
        from repro.ivn.frames import CanFdFrame, CanFrame, CanXlFrame

        if isinstance(frame, CanFrame):
            return frame.transmission_time_s(self.bitrate_bps)
        if isinstance(frame, (CanFdFrame, CanXlFrame)):
            return frame.transmission_time_s(self.bitrate_bps, self.data_bitrate_bps)
        raise TypeError(f"unsupported frame type {type(frame).__name__}")

    def _start_next(self) -> None:
        if not self._queue:
            return
        # Arbitration: lowest priority id wins; FIFO among equals.
        winner_idx = min(
            range(len(self._queue)),
            key=lambda i: (self._queue[i].priority, self._queue[i].enqueued_at, i),
        )
        queued = self._queue.pop(winner_idx)
        self._busy = True
        started = self.sim.now
        duration = self._frame_time(queued.frame)

        def complete() -> None:
            record = DeliveryRecord(
                sender=queued.sender,
                frame=queued.frame,
                enqueued_at=queued.enqueued_at,
                started_at=started,
                completed_at=self.sim.now,
            )
            self.delivered.append(record)
            if OBS.enabled:
                OBS.count("ivn.bus.frames_delivered")
                if OBS.sample("ivn.bus.frame_delivered"):
                    OBS.observe("ivn.bus.latency_s", record.latency_s)
                    OBS.emit(EventKind.FRAME_DELIVERED, Layer.NETWORK,
                             self.name,
                             f"{queued.sender} id {queued.priority:#x} "
                             f"delivered",
                             t=self.sim.now, sender=queued.sender,
                             can_id=queued.priority,
                             latency_s=record.latency_s)
            for node in self.nodes.values():
                if node.name != queued.sender:
                    node.deliver(record)
            self._busy = False
            self._start_next()

        self.sim.schedule(duration, complete)

    @property
    def utilization_window(self) -> float:
        """Fraction of elapsed time the bus spent transmitting."""
        if self.sim.now <= 0:
            return 0.0
        busy_time = sum(r.completed_at - r.started_at for r in self.delivered)
        return busy_time / self.sim.now
