"""CAN bus simulator with priority arbitration (paper §III, Fig. 3).

Models the shared-medium behaviour that matters for the network-layer
security discussion: non-destructive bitwise arbitration (lowest ID
wins), which is simultaneously CAN's real-time strength and its
masquerade/DoS weakness — *any* node can transmit *any* identifier
(:mod:`repro.ivn.attacks` exploits exactly this).

Runs on the deterministic event kernel (:mod:`repro.core.events`).
Two transmission paths share identical semantics:

* the **scalar** path — every frame is a scheduled completion event,
  full per-frame fidelity (obs hooks, receive callbacks, interleaving
  with foreign events);
* the **batched** path (:meth:`CanBus.run_batch`) — when nothing needs
  per-frame fidelity, a queued burst is transmitted back-to-back with
  closed-form timing, no per-frame closure or event allocation, and
  memoized per-shape frame times (:func:`repro.ivn.frames.frame_time_s`).
  The produced :class:`DeliveryRecord` stream is byte-identical to the
  scalar path's (BENCH-KERNELS pins both the speedup and the equality).

Internally contending frames are plain ``(priority, enqueued_at, seq,
sender, frame)`` heap entries — ``seq`` is a per-bus monotonic counter
that makes ordering total, so the winner pop is O(log n) and the order
is exactly the old linear arbitration scan's ``(priority, enqueued_at,
queue position)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.events import Event, Simulator
from repro.core.layers import Layer
from repro.ivn.frames import frame_time_s
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["CanBus", "BusNode", "DeliveryRecord"]

#: A contending frame: (priority, enqueued_at, seq, sender, frame).
_QueuedFrame = tuple[int, float, int, str, object]


@dataclass
class DeliveryRecord:
    """Bookkeeping for a completed transmission."""

    sender: str
    frame: object
    enqueued_at: float
    started_at: float
    completed_at: float

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.enqueued_at

    @property
    def queueing_delay_s(self) -> float:
        return self.started_at - self.enqueued_at


class BusNode:
    """A CAN node: receives every frame on the bus (broadcast medium)."""

    def __init__(self, name: str,
                 on_receive: Callable[[DeliveryRecord], None] | None = None) -> None:
        self.name = name
        self.received: list[DeliveryRecord] = []
        self._on_receive = on_receive

    def deliver(self, record: DeliveryRecord) -> None:
        self.received.append(record)
        if self._on_receive is not None:
            self._on_receive(record)


class CanBus:
    """A single CAN segment with priority arbitration.

    Frames queued while the bus is busy contend at the next idle instant;
    the lowest arbitration id wins (FIFO among same-priority frames).
    The model transmits whole frames (no mid-frame preemption), matching
    CAN's non-destructive arbitration semantics.

    Args:
        sim: shared event kernel.
        bitrate_bps: nominal bitrate (classic CAN) — for FD/XL frames the
            frame's own dual-rate timing is used with this as the
            nominal-phase rate.
        data_bitrate_bps: data-phase rate for FD/XL frames.
    """

    def __init__(self, sim: Simulator, *, name: str = "can0",
                 bitrate_bps: float = 500e3,
                 data_bitrate_bps: float = 2e6) -> None:
        self.sim = sim
        self.name = name
        self.bitrate_bps = bitrate_bps
        self.data_bitrate_bps = data_bitrate_bps
        self.nodes: dict[str, BusNode] = {}
        self.delivered: list[DeliveryRecord] = []
        self._ready: list[_QueuedFrame] = []
        self._seq = 0
        self._busy = False
        self._inflight: _QueuedFrame | None = None
        self._inflight_started = 0.0
        self._completion: Event | None = None

    def attach(self, node: BusNode) -> BusNode:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        return node

    @property
    def pending_frames(self) -> int:
        """Frames contending for the bus (excluding any in flight)."""
        return len(self._ready)

    @staticmethod
    def _priority_of(frame: object) -> int:
        priority = getattr(frame, "can_id", None)
        if priority is None:
            priority = getattr(frame, "priority_id", None)
        if priority is None:
            raise TypeError("frame must carry can_id or priority_id")
        return priority

    def send(self, sender: str, frame: object) -> None:
        """Queue ``frame`` for transmission by ``sender``."""
        if sender not in self.nodes:
            raise KeyError(f"node {sender!r} not attached to {self.name}")
        priority = self._priority_of(frame)
        heapq.heappush(self._ready,
                       (priority, self.sim.now, self._seq, sender, frame))
        self._seq += 1
        if OBS.enabled:
            OBS.count("ivn.bus.frames_sent")
            if OBS.sample("ivn.bus.frame_sent"):
                OBS.emit(EventKind.FRAME_SENT, Layer.NETWORK, self.name,
                         f"{sender} queued id {priority:#x}", t=self.sim.now,
                         sender=sender, can_id=priority)
        if not self._busy:
            self._start_next()

    def send_batch(self, sender: str, frames: Iterable[object]) -> int:
        """Queue many frames from one sender; returns the count queued.

        Semantically identical to calling :meth:`send` per frame at the
        same instant — an idle bus starts the first frame immediately,
        before the rest are queued, so the in-flight frame (and with it
        the whole delivery order) matches the scalar path.  With obs
        disabled the per-frame hook checks are hoisted out of the loop.
        """
        if OBS.enabled:
            n = 0
            for frame in frames:
                self.send(sender, frame)
                n += 1
            return n
        if sender not in self.nodes:
            raise KeyError(f"node {sender!r} not attached to {self.name}")
        ready = self._ready
        now = self.sim.now
        seq = self._seq
        priority_of = self._priority_of
        push = heapq.heappush
        n = 0
        for frame in frames:
            push(ready, (priority_of(frame), now, seq, sender, frame))
            seq += 1
            n += 1
            if not self._busy:
                self._seq = seq
                self._start_next()
        self._seq = seq
        return n

    def _frame_time(self, frame: object) -> float:
        return frame_time_s(frame, self.bitrate_bps, self.data_bitrate_bps)

    def _start_next(self) -> None:
        if not self._ready:
            return
        # Arbitration: lowest priority id wins; FIFO among equals.
        queued = heapq.heappop(self._ready)
        priority, enqueued_at, _seq, sender, frame = queued
        self._busy = True
        self._inflight = queued
        started = self._inflight_started = self.sim.now
        duration = self._frame_time(frame)

        def complete() -> None:
            record = DeliveryRecord(
                sender=sender,
                frame=frame,
                enqueued_at=enqueued_at,
                started_at=started,
                completed_at=self.sim.now,
            )
            self.delivered.append(record)
            if OBS.enabled:
                OBS.count("ivn.bus.frames_delivered")
                if OBS.sample("ivn.bus.frame_delivered"):
                    OBS.observe("ivn.bus.latency_s", record.latency_s)
                    OBS.emit(EventKind.FRAME_DELIVERED, Layer.NETWORK,
                             self.name,
                             f"{sender} id {priority:#x} delivered",
                             t=self.sim.now, sender=sender,
                             can_id=priority,
                             latency_s=record.latency_s)
            for node in self.nodes.values():
                if node.name != sender:
                    node.deliver(record)
            self._busy = False
            self._inflight = None
            self._completion = None
            self._start_next()

        self._completion = self.sim.schedule(duration, complete)

    # -- batched transmission ------------------------------------------------

    def _batch_eligible(self) -> bool:
        """True when the closed-form burst provably matches the scalar path.

        Scalar fallback conditions (each one needs per-frame fidelity):
        obs hooks enabled, any node with a receive callback (it could
        queue frames or inspect mid-burst state), or a live foreign
        event in the kernel that would interleave with the burst.
        """
        if OBS.enabled:
            return False
        if any(node._on_receive is not None for node in self.nodes.values()):
            return False
        live = self.sim.live_events()
        if self._completion is None:
            return not live
        return all(event is self._completion for event in live)

    def run_batch(self) -> int:
        """Transmit every queued frame; returns the number delivered.

        Fast path: drains the ready heap back-to-back with closed-form
        timing — no completion events, no per-frame closures — and
        commits the final clock to the kernel.  Falls back to pumping
        the shared event loop (identical results, scalar speed) whenever
        :meth:`_batch_eligible` says per-frame fidelity is needed.
        """
        before = len(self.delivered)
        if not self._batch_eligible():
            if OBS.enabled:
                OBS.count("ivn.bus.batch_fallbacks")
            self.sim.run()
            return len(self.delivered) - before

        delivered = self.delivered
        # (is-sender-name, received-list) pairs; name check stays by
        # value, exactly as the scalar delivery loop does it.
        sinks = [(node.name, node.received) for node in self.nodes.values()]
        frame_time = self._frame_time
        ready = self._ready
        now = self.sim.now
        processed = 0

        # Finish the in-flight frame first: its completion instant is
        # already fixed (started + duration), exactly what the canceled
        # event would have fired at.
        if self._busy:
            assert self._inflight is not None and self._completion is not None
            _priority, enqueued_at, _seq, sender, frame = self._inflight
            started = self._inflight_started
            self._completion.cancel()
            now = started + frame_time(frame)
            record = DeliveryRecord(sender, frame, enqueued_at, started, now)
            delivered.append(record)
            for name, received in sinks:
                if name != sender:
                    received.append(record)
            processed += 1
            self._busy = False
            self._inflight = None
            self._completion = None

        pop = heapq.heappop
        while ready:
            _priority, enqueued_at, _seq, sender, frame = pop(ready)
            started = now
            now = started + frame_time(frame)
            record = DeliveryRecord(sender, frame, enqueued_at, started, now)
            delivered.append(record)
            for name, received in sinks:
                if name != sender:
                    received.append(record)
            processed += 1

        self.sim.advance_to(now, processed=processed)
        return len(delivered) - before

    @property
    def utilization_window(self) -> float:
        """Fraction of elapsed time the bus spent transmitting.

        Includes the partial busy interval of any frame currently in
        flight, so mid-transmission queries (e.g. ``bus_busy_fraction``
        in the trace scenarios) see the active transmission too.
        """
        if self.sim.now <= 0:
            return 0.0
        busy_time = sum(r.completed_at - r.started_at for r in self.delivered)
        if self._busy:
            busy_time += self.sim.now - self._inflight_started
        return busy_time / self.sim.now
