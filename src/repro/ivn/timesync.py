"""Secure time synchronization: PTP delay attacks and PTPsec-style
cyclic path asymmetry detection (paper §VIII, ref [53]).

Time-sensitive networking in vehicles synchronizes clocks with PTP; its
offset computation assumes *symmetric* path delays, so an attacker who
delays traffic in **one direction only** shifts the slave clock by half
the injected delay without breaking any cryptography — a pure
physical/logical-layer attack.  Finkenzeller et al. [53] (PTPsec) detect
and localize it using redundant paths: measured one-way delays around a
cycle must be direction-symmetric; an asymmetric link sticks out.

Model:

* :class:`SyncNetwork` — nodes + directional link delays;
* :func:`ptp_offset` — the standard two-step offset/delay computation
  over a path;
* :class:`DelayAttack` — adds delay to one direction of one link;
* :class:`CyclicAsymmetryDetector` — measures cycle traversal times in
  both directions; a residual above noise flags the attack, and probing
  individual cycles localizes the tampered link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rng import numpy_rng

__all__ = ["SyncNetwork", "DelayAttack", "PtpResult", "ptp_offset",
           "CyclicAsymmetryDetector", "AsymmetryVerdict"]


@dataclass
class SyncNetwork:
    """Directed link delays between nodes (seconds)."""

    jitter_s: float = 20e-9
    seed_label: str = "ptp"
    _delays: dict[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._rng = numpy_rng(self.seed_label)

    def add_link(self, a: str, b: str, delay_s: float) -> None:
        """A bidirectional link with symmetric nominal delay."""
        if delay_s <= 0:
            raise ValueError("link delay must be positive")
        self._delays[(a, b)] = delay_s
        self._delays[(b, a)] = delay_s

    def add_asymmetry(self, src: str, dst: str, extra_s: float) -> None:
        """Inject extra one-way delay (the attack primitive)."""
        if (src, dst) not in self._delays:
            raise KeyError(f"no link {src}->{dst}")
        self._delays[(src, dst)] += extra_s

    def one_way_delay(self, path: list[str], *, noisy: bool = True) -> float:
        """Propagation time along ``path`` (with jitter when ``noisy``)."""
        if len(path) < 2:
            raise ValueError("path needs at least two nodes")
        total = 0.0
        for a, b in zip(path, path[1:]):
            if (a, b) not in self._delays:
                raise KeyError(f"no link {a}->{b}")
            total += self._delays[(a, b)]
            if noisy:
                total += abs(float(self._rng.normal(0.0, self.jitter_s)))
        return total


@dataclass(frozen=True)
class DelayAttack:
    """Asymmetric delay injection on one directed link."""

    src: str
    dst: str
    extra_delay_s: float

    def apply(self, network: SyncNetwork) -> None:
        if self.extra_delay_s <= 0:
            raise ValueError("attack delay must be positive")
        network.add_asymmetry(self.src, self.dst, self.extra_delay_s)

    @property
    def induced_offset_error_s(self) -> float:
        """PTP's resulting clock error: half the injected asymmetry."""
        return self.extra_delay_s / 2.0


@dataclass(frozen=True)
class PtpResult:
    """One PTP offset/delay measurement."""

    measured_offset_s: float
    measured_delay_s: float
    true_offset_s: float

    @property
    def offset_error_s(self) -> float:
        return self.measured_offset_s - self.true_offset_s


def ptp_offset(network: SyncNetwork, path: list[str], *,
               true_offset_s: float = 0.0) -> PtpResult:
    """The standard PTP computation over ``path`` (master first).

    t1: master send; t2 = t1 + d_ms + offset (slave clock);
    t3: slave send; t4 = t3 - offset + d_sm (master clock).
    offset = ((t2-t1) - (t4-t3)) / 2, which is exact only if
    d_ms == d_sm — the symmetry assumption the attack breaks.
    """
    d_ms = network.one_way_delay(path)
    d_sm = network.one_way_delay(list(reversed(path)))
    t1 = 0.0
    t2 = t1 + d_ms + true_offset_s
    t3 = t2 + 1e-6
    t4 = t3 - true_offset_s + d_sm
    measured_offset = ((t2 - t1) - (t4 - t3)) / 2.0
    measured_delay = ((t2 - t1) + (t4 - t3)) / 2.0
    return PtpResult(measured_offset, measured_delay, true_offset_s)


@dataclass(frozen=True)
class AsymmetryVerdict:
    """Cyclic-asymmetry detector output for one cycle."""

    cycle: tuple[str, ...]
    residual_s: float
    threshold_s: float

    @property
    def attack_detected(self) -> bool:
        return abs(self.residual_s) > self.threshold_s


class CyclicAsymmetryDetector:
    """PTPsec-style detection over redundant network cycles.

    For a cycle C, the forward traversal time equals the backward
    traversal time when every link is symmetric; an attacked link adds
    its asymmetry to exactly one direction, so the residual
    ``forward - backward`` reveals (and, across multiple cycles,
    localizes) the attack.
    """

    def __init__(self, network: SyncNetwork, *,
                 threshold_s: float | None = None,
                 n_probes: int = 8) -> None:
        if n_probes < 1:
            raise ValueError("need at least one probe")
        self.network = network
        # Jitter accumulates per hop per probe; 6 sigma over the mean of
        # n probes is a comfortable noise bound.
        self.threshold_s = (threshold_s if threshold_s is not None
                            else 6.0 * network.jitter_s)
        self.n_probes = n_probes

    def measure_cycle(self, cycle: list[str]) -> AsymmetryVerdict:
        """Probe one cycle (first node repeated at the end implicitly)."""
        if len(cycle) < 3:
            raise ValueError("a cycle needs at least three nodes")
        loop = list(cycle) + [cycle[0]]
        forward = sum(self.network.one_way_delay(loop)
                      for _ in range(self.n_probes)) / self.n_probes
        backward = sum(self.network.one_way_delay(list(reversed(loop)))
                       for _ in range(self.n_probes)) / self.n_probes
        return AsymmetryVerdict(tuple(cycle), forward - backward, self.threshold_s)

    def localize(self, cycles: list[list[str]]) -> set[frozenset[str]]:
        """Suspicious (undirected) links: intersection logic over cycles.

        A link is suspect when *every* flagged cycle contains it and no
        clean cycle does.
        """
        flagged = [set(self._links(c)) for c in cycles
                   if self.measure_cycle(c).attack_detected]
        clean = [set(self._links(c)) for c in cycles
                 if not self.measure_cycle(c).attack_detected]
        if not flagged:
            return set()
        suspects = set.intersection(*flagged)
        for clean_links in clean:
            suspects -= clean_links
        return suspects

    @staticmethod
    def _links(cycle: list[str]) -> list[frozenset[str]]:
        loop = list(cycle) + [cycle[0]]
        return [frozenset((a, b)) for a, b in zip(loop, loop[1:])]
