"""On-wire frame models: CAN 2.0, CAN FD, CAN XL, Ethernet (paper §III).

Scenario comparisons S1–S3 (Figs. 4–6) and the Table I protocol overhead
analysis all reduce to *how many bits cross which wire* — so this module
models frame sizes bit-accurately for classic CAN and closely (documented
below) for CAN FD / CAN XL, whose specs interleave dual-bitrate phases:

* **CAN 2.0 A/B** — exact field layout per the Bosch spec, including
  worst-case bit stuffing over the stuffable region.
* **CAN FD** — dual bitrate (arbitration vs data phase); CRC17/CRC21
  with fixed stuff bits, per the Bosch CAN FD spec 1.0 [17]. The
  arbitration/data phase split is modeled at field granularity.
* **CAN XL** — payloads up to 2048 bytes, priority + acceptance-field
  addressing, the SEC bit marking CANsec protection, and a 32-bit CRC.
  Field sizes follow CiA 610-1; the handful of transition bits (ADS/DAS)
  are aggregated into the phase constants.
* **Ethernet** — 802.3 with optional 802.1Q tag and MACsec SecTAG/ICV
  expansion, minimum-payload padding, preamble and IFG accounted.

All sizes are per-frame *wire* costs, which is what the benchmarks
aggregate into goodput/overhead tables.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CanFrame",
    "CanFdFrame",
    "CanXlFrame",
    "EthernetFrame",
    "MACSEC_SECTAG_BYTES",
    "MACSEC_SECTAG_SCI_BYTES",
    "MACSEC_ICV_BYTES",
    "can_fd_dlc_for",
    "frame_shape_key",
    "frame_time_s",
]

MACSEC_SECTAG_BYTES = 8        # 802.1AE SecTAG without SCI
MACSEC_SECTAG_SCI_BYTES = 16   # SecTAG with explicit SCI
MACSEC_ICV_BYTES = 16          # GCM-AES ICV

_CAN_FD_PAYLOADS = (0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64)


def can_fd_dlc_for(length: int) -> int:
    """Smallest valid CAN FD payload size >= ``length`` (DLC coding)."""
    for size in _CAN_FD_PAYLOADS:
        if size >= length:
            return size
    raise ValueError(f"CAN FD payload limited to 64 bytes, got {length}")


@dataclass(frozen=True)
class CanFrame:
    """Classic CAN 2.0 data frame (11-bit base or 29-bit extended ID)."""

    can_id: int
    payload: bytes
    extended: bool = False

    def __post_init__(self) -> None:
        limit = 1 << (29 if self.extended else 11)
        if not 0 <= self.can_id < limit:
            raise ValueError(f"CAN id {self.can_id:#x} out of range")
        if len(self.payload) > 8:
            raise ValueError("classic CAN payload limited to 8 bytes")

    @property
    def stuffable_bits(self) -> int:
        """Bits subject to stuffing: SOF through CRC (exclusive of delimiters)."""
        base = 34 if not self.extended else 54
        return base + 8 * len(self.payload)

    def wire_bits(self, *, worst_case_stuffing: bool = True) -> int:
        """Total bits on the wire for one frame, including 3-bit IFS.

        Fixed fields: 44 (base) / 64 (extended) + data; worst-case
        stuffing adds one bit per 4 stuffable bits after the first.
        """
        fixed = (44 if not self.extended else 64) + 8 * len(self.payload)
        stuff = (self.stuffable_bits - 1) // 4 if worst_case_stuffing else 0
        return fixed + stuff + 3  # interframe space

    def transmission_time_s(self, bitrate_bps: float = 500e3) -> float:
        """Frame time on a single-bitrate classic CAN bus."""
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        return self.wire_bits() / bitrate_bps


@dataclass(frozen=True)
class CanFdFrame:
    """CAN FD frame: dual bitrate, up to 64 payload bytes."""

    can_id: int
    payload: bytes
    extended: bool = False

    #: Arbitration-phase bits (SOF, ID, RRS, IDE, FDF, res, BRS) plus the
    #: nominal-rate trailer (CRC delim, ACK, EOF, IFS).
    _ARB_BITS_BASE = 19
    _ARB_BITS_EXT = 39
    _TRAILER_BITS = 14

    def __post_init__(self) -> None:
        limit = 1 << (29 if self.extended else 11)
        if not 0 <= self.can_id < limit:
            raise ValueError(f"CAN id {self.can_id:#x} out of range")
        if len(self.payload) > 64:
            raise ValueError("CAN FD payload limited to 64 bytes")

    @property
    def padded_payload_len(self) -> int:
        return can_fd_dlc_for(len(self.payload))

    def data_phase_bits(self, *, worst_case_stuffing: bool = True) -> int:
        """Bits transmitted at the (fast) data bitrate."""
        n = self.padded_payload_len
        crc_bits = 17 if n <= 16 else 21
        # ESI + DLC + data + stuff-count + CRC + fixed stuff bits (one per
        # 4 CRC bits, per spec) — aggregated.
        bits = 1 + 4 + 8 * n + 4 + crc_bits + (crc_bits // 4 + 1)
        if worst_case_stuffing:
            bits += (8 * n + 9) // 4
        return bits

    def arbitration_phase_bits(self) -> int:
        arb = self._ARB_BITS_EXT if self.extended else self._ARB_BITS_BASE
        return arb + self._TRAILER_BITS

    def transmission_time_s(self, nominal_bps: float = 500e3,
                            data_bps: float = 2e6) -> float:
        """Frame time with bit-rate switching."""
        if nominal_bps <= 0 or data_bps <= 0:
            raise ValueError("bitrates must be positive")
        return (self.arbitration_phase_bits() / nominal_bps
                + self.data_phase_bits() / data_bps)


@dataclass(frozen=True)
class CanXlFrame:
    """CAN XL frame: 1–2048 payload bytes, typed payload, security bit.

    Attributes:
        priority_id: 11-bit arbitration priority.
        payload: 1..2048 bytes.
        sdu_type: SDT field — identifies the payload kind (e.g. 0x03 for
            tunneled Ethernet frames, which is what CANAL uses).
        vcid: virtual CAN network id.
        acceptance_field: 32-bit AF used for addressing/filtering.
        sec: security indicator — set when CANsec protects the frame.
    """

    priority_id: int
    payload: bytes
    sdu_type: int = 0x01
    vcid: int = 0
    acceptance_field: int = 0
    sec: bool = False

    _ARB_BITS = 16       # SOF + 11-bit priority + mode/transition bits
    _TRAILER_BITS = 14   # DAS/ACK/EOF at nominal rate

    def __post_init__(self) -> None:
        if not 0 <= self.priority_id < (1 << 11):
            raise ValueError("CAN XL priority is 11 bits")
        if not 1 <= len(self.payload) <= 2048:
            raise ValueError("CAN XL payload must be 1..2048 bytes")
        if not 0 <= self.sdu_type < 256 or not 0 <= self.vcid < 256:
            raise ValueError("SDT and VCID are 8-bit fields")
        if not 0 <= self.acceptance_field < (1 << 32):
            raise ValueError("acceptance field is 32 bits")

    def data_phase_bits(self) -> int:
        """Data-phase bits: control header + payload + CRC32.

        Header: SDT(8) + SEC(1) + DLC(11) + stuff-count(8) + VCID(8) +
        AF(32) + preface CRC(13); frame CRC is 32 bits. CAN XL uses
        fixed-position stuffing in the data phase, aggregated here as
        one stuff bit per 10 data bits.
        """
        header = 8 + 1 + 11 + 8 + 8 + 32 + 13
        data = 8 * len(self.payload)
        crc = 32
        fixed_stuff = (header + data + crc) // 10
        return header + data + crc + fixed_stuff

    def arbitration_phase_bits(self) -> int:
        return self._ARB_BITS + self._TRAILER_BITS

    def transmission_time_s(self, nominal_bps: float = 500e3,
                            data_bps: float = 10e6) -> float:
        if nominal_bps <= 0 or data_bps <= 0:
            raise ValueError("bitrates must be positive")
        return (self.arbitration_phase_bits() / nominal_bps
                + self.data_phase_bits() / data_bps)


def frame_shape_key(frame: object) -> tuple:
    """Timing-equivalence key for a CAN-family frame.

    Wire time depends only on the frame *shape* — its type, id width,
    and payload length — never on the id value or payload bytes, so
    frames sharing a key share a transmission time.  Raises TypeError
    for frame types without a shape-invariant timing model.
    """
    if isinstance(frame, CanFrame):
        return ("can", frame.extended, len(frame.payload))
    if isinstance(frame, CanFdFrame):
        return ("fd", frame.extended, len(frame.payload))
    if isinstance(frame, CanXlFrame):
        return ("xl", len(frame.payload))
    raise TypeError(f"unsupported frame type {type(frame).__name__}")


#: (shape key, nominal bps, data bps) -> seconds.  Unbounded by design:
#: the key space is tiny (3 types x id widths x payload lengths).
_TIME_CACHE: dict[tuple, float] = {}


def frame_time_s(frame: object, nominal_bps: float, data_bps: float) -> float:
    """Memoized transmission time for one CAN-family frame.

    Bit-identical to calling ``frame.transmission_time_s(...)`` — the
    cache stores the exact float the frame's own method returned for
    the first frame of each (shape, bitrate) combination.  This is the
    hot-path entry the bus kernel uses: a saturated segment re-times
    the same handful of shapes millions of times.
    """
    key = (frame_shape_key(frame), nominal_bps, data_bps)
    cached = _TIME_CACHE.get(key)
    if cached is None:
        if isinstance(frame, CanFrame):
            cached = frame.transmission_time_s(nominal_bps)
        else:
            cached = frame.transmission_time_s(nominal_bps, data_bps)  # type: ignore[attr-defined]
        _TIME_CACHE[key] = cached
    return cached


@dataclass(frozen=True)
class EthernetFrame:
    """802.3 Ethernet frame with optional 802.1Q tag and MACsec expansion."""

    dst: str
    src: str
    payload: bytes
    vlan_tag: bool = False
    macsec: bool = False
    macsec_sci: bool = False
    ethertype: int = 0x0800

    MIN_PAYLOAD = 46
    MAX_PAYLOAD = 1500
    _HEADER = 14       # DA + SA + EtherType
    _FCS = 4
    _PREAMBLE = 8      # preamble + SFD
    _IFG = 12

    def __post_init__(self) -> None:
        if len(self.payload) > self.MAX_PAYLOAD:
            raise ValueError("payload exceeds Ethernet MTU")
        if self.macsec_sci and not self.macsec:
            raise ValueError("SCI requires MACsec")

    @property
    def security_overhead_bytes(self) -> int:
        """Extra bytes MACsec adds to this frame (SecTAG + ICV)."""
        if not self.macsec:
            return 0
        sectag = MACSEC_SECTAG_SCI_BYTES if self.macsec_sci else MACSEC_SECTAG_BYTES
        return sectag + MACSEC_ICV_BYTES

    def frame_bytes(self) -> int:
        """Bytes from DA through FCS (the 'frame size' in 802.3 terms)."""
        body = max(len(self.payload), self.MIN_PAYLOAD)
        tag = 4 if self.vlan_tag else 0
        return self._HEADER + tag + self.security_overhead_bytes + body + self._FCS

    def wire_bits(self) -> int:
        """Total wire cost including preamble and inter-frame gap."""
        return 8 * (self._PREAMBLE + self.frame_bytes() + self._IFG)

    def transmission_time_s(self, bitrate_bps: float = 100e6) -> float:
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        return self.wire_bits() / bitrate_bps
