"""Periodic CAN traffic, DoS flooding, and the detect→respond loop.

Ties three pieces of the paper together on the event kernel:

* real-time periodic streams (how control traffic actually looks on a
  CAN segment, and why §VI-B calls real-time data DoS-critical);
* the arbitration-priority flood (catalog attack "bus-flood-dos");
* the §VIII loop: the frequency IDS raises alerts, the REACT-style
  :class:`~repro.core.response.ResponseEngine` escalates to isolation,
  and — once the compromised node is isolated — the streams' deadline
  behaviour recovers.

:func:`run_dos_response_experiment` packages the whole loop for the
EXT-1 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import Simulator
from repro.core.layers import Layer
from repro.core.response import ResponseAction, ResponseEngine, SecurityAlert, Severity
from repro.ivn.bus import BusNode, CanBus
from repro.ivn.frames import CanFrame
from repro.ivn.ids import FrequencyIds

__all__ = ["PeriodicStream", "TrafficScheduler", "DosResponseReport", "run_dos_response_experiment"]


@dataclass(frozen=True)
class PeriodicStream:
    """A periodic control stream on the bus."""

    can_id: int
    sender: str
    period_s: float
    payload_len: int = 8
    deadline_s: float | None = None   # defaults to one period

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if not 0 <= self.payload_len <= 8:
            raise ValueError("classic CAN payload is 0..8 bytes")

    @property
    def effective_deadline_s(self) -> float:
        return self.deadline_s if self.deadline_s is not None else self.period_s


@dataclass
class StreamStats:
    """Per-stream delivery statistics.

    A frame *misses* when it is delivered after its deadline **or never
    delivered at all** (starved in the queue when the run ends) — the
    latter is what a priority flood actually does to victims.
    """

    sent: int = 0
    delivered: int = 0
    deadline_misses: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def worst_latency_s(self) -> float:
        return max(self.latencies, default=0.0)

    @property
    def on_time(self) -> int:
        return self.delivered - self.deadline_misses

    @property
    def miss_rate(self) -> float:
        if not self.sent:
            return 0.0
        return 1.0 - self.on_time / self.sent


class TrafficScheduler:
    """Drives periodic streams over a :class:`CanBus` and records stats."""

    def __init__(self, sim: Simulator, bus: CanBus,
                 streams: list[PeriodicStream]) -> None:
        ids = [s.can_id for s in streams]
        if len(ids) != len(set(ids)):
            raise ValueError("stream CAN ids must be unique")
        self.sim = sim
        self.bus = bus
        self.streams = {s.can_id: s for s in streams}
        self.stats = {s.can_id: StreamStats() for s in streams}
        self._sequence = {s.can_id: 0 for s in streams}
        self._stopped = False
        bus.delivered_hook = None

    def start(self, duration_s: float) -> None:
        """Schedule all periodic sends over ``duration_s``."""
        for stream in self.streams.values():
            k = 1
            while True:
                t = k * stream.period_s
                if t > duration_s * (1 + 1e-9):
                    break
                self.sim.schedule_at(t, self._make_send(stream))
                k += 1

    def _make_send(self, stream: PeriodicStream):
        def send() -> None:
            seq = self._sequence[stream.can_id] = (
                self._sequence[stream.can_id] + 1) % 256
            payload = bytes([seq]) + b"\x00" * (stream.payload_len - 1)
            self.bus.send(stream.sender, CanFrame(stream.can_id, payload))
            self.stats[stream.can_id].sent += 1
        return send

    def harvest(self) -> None:
        """Fold the bus's delivery records into per-stream statistics."""
        for record in self.bus.delivered:
            can_id = getattr(record.frame, "can_id", None)
            stream = self.streams.get(can_id)
            if stream is None or record.sender != stream.sender:
                continue
            stats = self.stats[can_id]
            stats.delivered += 1
            stats.latencies.append(record.latency_s)
            if record.latency_s > stream.effective_deadline_s:
                stats.deadline_misses += 1


@dataclass(frozen=True)
class DosResponseReport:
    """Outcome of the detect→respond DoS experiment."""

    attack_frames_sent: int
    attack_frames_on_bus: int
    detection_time_s: float | None
    isolation_time_s: float | None
    miss_rate_no_attack: float
    miss_rate_attack_no_response: float
    miss_rate_attack_with_response: float
    worst_latency_attack_s: float
    worst_latency_with_response_s: float


def _run_scenario(*, attack: bool, respond: bool,
                  duration_s: float = 1.0) -> tuple[TrafficScheduler, dict]:
    """One simulation: periodic traffic, optional flood, optional response."""
    sim = Simulator()
    bus = CanBus(sim)
    for name in ("engine", "brake", "steer", "compromised"):
        bus.attach(BusNode(name))
    streams = [
        PeriodicStream(0x0A0, "engine", period_s=0.010),
        PeriodicStream(0x0B0, "brake", period_s=0.010),
        PeriodicStream(0x0C0, "steer", period_s=0.020),
    ]
    scheduler = TrafficScheduler(sim, bus, streams)
    scheduler.start(duration_s)

    info = {"attack_sent": 0, "attack_delivered": 0,
            "detected_at": None, "isolated_at": None}

    ids = FrequencyIds(min_training=10)
    engine = ResponseEngine(escalation_threshold=2)
    isolated = {"compromised": False}

    # The flood: from t=0.3 s the compromised node spams top-priority
    # frames faster than the bus can serve them (full starvation of
    # lower-priority arbitration) until isolated.
    flood_id = 0x000

    def flood() -> None:
        if isolated["compromised"] or sim.now > duration_s:
            return
        bus.send("compromised", CanFrame(flood_id, b"\x00" * 8))
        info["attack_sent"] += 1
        sim.schedule(0.0002, flood)

    if attack:
        sim.schedule_at(0.3, flood)

    # The IDS watches deliveries via a monitor node attached logically:
    # we sample the bus's delivered list as events complete, by polling
    # on a fine grid (an in-situ monitor would hook the PHY; polling the
    # shared-medium log is equivalent here).
    seen = {"count": 0}

    def monitor() -> None:
        while seen["count"] < len(bus.delivered):
            record = bus.delivered[seen["count"]]
            seen["count"] += 1
            can_id = getattr(record.frame, "can_id", 0)
            if sim.now < 0.25:
                ids.train(can_id, record.completed_at)
                continue
            alert = ids.monitor(can_id, record.completed_at)
            if alert is None:
                continue
            if info["detected_at"] is None:
                info["detected_at"] = sim.now
            if not respond:
                continue
            decision = engine.handle(SecurityAlert(
                sim.now, Layer.NETWORK, record.sender, "bus-flood-dos",
                Severity.CRITICAL))
            if (decision.action >= ResponseAction.ISOLATE_COMPONENT
                    and record.sender == "compromised"
                    and not isolated["compromised"]):
                isolated["compromised"] = True
                info["isolated_at"] = sim.now
        if sim.now < duration_s:
            sim.schedule(0.001, monitor)

    sim.schedule_at(0.0, monitor)
    sim.run(until=duration_s + 0.1)
    scheduler.harvest()
    info["attack_delivered"] = sum(
        1 for r in bus.delivered if r.sender == "compromised")
    return scheduler, info


def run_dos_response_experiment(duration_s: float = 1.0) -> DosResponseReport:
    """Three runs: baseline, attack w/o response, attack w/ response."""
    baseline, _ = _run_scenario(attack=False, respond=False, duration_s=duration_s)
    attacked, _ = _run_scenario(attack=True, respond=False, duration_s=duration_s)
    defended, info = _run_scenario(attack=True, respond=True, duration_s=duration_s)

    def overall_miss(scheduler: TrafficScheduler) -> float:
        sent = sum(s.sent for s in scheduler.stats.values())
        on_time = sum(s.on_time for s in scheduler.stats.values())
        return 1.0 - on_time / sent if sent else 0.0

    def worst(scheduler: TrafficScheduler) -> float:
        return max(s.worst_latency_s for s in scheduler.stats.values())

    return DosResponseReport(
        attack_frames_sent=info["attack_sent"],
        attack_frames_on_bus=info["attack_delivered"],
        detection_time_s=info["detected_at"],
        isolation_time_s=info["isolated_at"],
        miss_rate_no_attack=overall_miss(baseline),
        miss_rate_attack_no_response=overall_miss(attacked),
        miss_rate_attack_with_response=overall_miss(defended),
        worst_latency_attack_s=worst(attacked),
        worst_latency_with_response_s=worst(defended),
    )
