"""The bus-off attack: error-counter dynamics and targeted eviction
(paper §III's masquerade discussion, Cho & Shin-style attack model).

CAN's fault confinement uses per-node error counters: a transmit error
adds 8 to the transmit error counter (TEC), a successful transmission
subtracts 1; at TEC > 127 the node goes *error-passive*, at TEC > 255 it
enters **bus-off** and disconnects itself.  The bus-off attack abuses
this safety mechanism offensively: an attacker that synchronizes a
conflicting transmission with the victim's frames makes the *victim*
see bit errors, driving the victim's TEC up until CAN's own fault
confinement evicts the legitimate safety-critical ECU.

The model tracks TEC dynamics round by round and evaluates the standard
countermeasure the IDS literature proposes: detecting the attack's
error-burst signature early and isolating the attacker before the
victim reaches bus-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layers import Layer
from repro.obs.events import EventKind
from repro.obs.runtime import OBS

__all__ = ["ErrorCounter", "BusOffAttack", "BusOffOutcome", "simulate_busoff"]

_ERROR_PASSIVE = 128
_BUS_OFF = 256


@dataclass
class ErrorCounter:
    """A node's transmit error counter with CAN fault-confinement states."""

    tec: int = 0

    def on_tx_error(self) -> None:
        self.tec = min(self.tec + 8, _BUS_OFF)

    def on_tx_success(self) -> None:
        self.tec = max(self.tec - 1, 0)

    @property
    def error_passive(self) -> bool:
        return self.tec >= _ERROR_PASSIVE

    @property
    def bus_off(self) -> bool:
        return self.tec >= _BUS_OFF


@dataclass(frozen=True)
class BusOffAttack:
    """Synchronized-collision attack parameters.

    ``hit_probability`` is the chance the attacker successfully aligns a
    conflicting frame with one victim transmission (published attacks
    achieve near-1 by exploiting the preceding frame as a trigger).
    """

    hit_probability: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 <= self.hit_probability <= 1.0:
            raise ValueError("hit_probability must be in [0, 1]")


@dataclass(frozen=True)
class BusOffOutcome:
    """Result of one simulated campaign."""

    victim_bus_off: bool
    rounds_to_bus_off: int | None
    rounds_to_error_passive: int | None
    detection_round: int | None
    attacker_isolated: bool


@dataclass
class _BurstDetector:
    """Counts consecutive victim transmit errors; CAN traffic is nearly
    error-free in a healthy vehicle, so a short error burst on one id is
    the attack's unmistakable signature."""

    threshold: int = 4
    _streak: int = 0
    fired_at: int | None = None

    def observe(self, round_index: int, tx_error: bool) -> bool:
        if tx_error:
            self._streak += 1
            if self._streak >= self.threshold and self.fired_at is None:
                self.fired_at = round_index
                return True
        else:
            self._streak = 0
        return False


def simulate_busoff(attack: BusOffAttack, *, rounds: int = 100,
                    defend: bool = False, detector_threshold: int = 4,
                    seed_label: str = "busoff") -> BusOffOutcome:
    """Run a bus-off campaign against a periodic victim.

    Each round is one victim transmission attempt. With ``defend`` the
    burst detector's alert isolates the attacker (response engine
    semantics), after which transmissions succeed again and the TEC
    recovers.
    """
    from repro.core.rng import python_rng

    if rounds < 1:
        raise ValueError("need at least one round")
    rng = python_rng(seed_label)
    victim = ErrorCounter()
    detector = _BurstDetector(threshold=detector_threshold)
    attacker_active = True
    detection_round: int | None = None
    error_passive_round: int | None = None

    for round_index in range(rounds):
        attacked = attacker_active and rng.random() < attack.hit_probability
        if attacked:
            victim.on_tx_error()
        else:
            victim.on_tx_success()
        if defend and detector.observe(round_index, attacked) and attacker_active:
            detection_round = round_index
            attacker_active = False
            if OBS.enabled:
                OBS.emit(EventKind.IDS_ALERT, Layer.NETWORK, "busoff-detector",
                         f"error burst on victim id (round {round_index}); "
                         "attacker isolated", t=float(round_index),
                         tec=victim.tec)
        if victim.error_passive and error_passive_round is None:
            error_passive_round = round_index
        if victim.bus_off:
            if OBS.enabled:
                OBS.count("ivn.busoff.evictions")
                OBS.emit(EventKind.BUS_OFF, Layer.NETWORK, "victim-ecu",
                         f"TEC {victim.tec} >= 256: fault confinement evicted "
                         "the victim", t=float(round_index), tec=victim.tec)
            return BusOffOutcome(True, round_index, error_passive_round,
                                 detection_round, not attacker_active)
    return BusOffOutcome(False, None, error_passive_round,
                         detection_round, not attacker_active)
