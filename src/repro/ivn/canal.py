"""CAN Adaptation Layer (CANAL) — paper Fig. 6, scenario S3.

CANAL is the paper's own proposal sketch: "inspired by the ATM
Adaptation Layer [24], the CAN Adaptation Layer enables the deployment
of higher-layer Ethernet protocols and MACsec on CAN nodes."  The point
is that a CAN endpoint can then terminate **end-to-end MACsec** with the
central computing unit — no key storage or security processing in the
zone controller (the S1 disadvantage), and no Ethernet-only restriction
(the S2 limitation).

The adaptation layer does two jobs:

* **encapsulation** — carry a full Ethernet frame (here: a serialized
  MACsec frame) as the payload of CAN XL frames (whose 2048-byte payload
  usually fits a whole frame; SDT 0x03 marks tunneled Ethernet), or
  segmented across classic CAN / CAN FD frames with a small
  segmentation header (AAL5-style: index + total + length);
* **reassembly** — rebuild the Ethernet frame on the other side,
  tolerating loss (incomplete groups are discarded, like AAL5 CPCS).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ivn.frames import CanFdFrame, CanFrame, CanXlFrame

__all__ = ["CanalSegment", "CanalCodec", "SDT_TUNNELED_ETHERNET"]

SDT_TUNNELED_ETHERNET = 0x03

_HEADER_BYTES = 5  # stream id (1) + segment index (1) + total segments (1) + length (2)


@dataclass(frozen=True)
class CanalSegment:
    """One segment of an encapsulated frame (pre-CAN representation)."""

    stream_id: int
    index: int
    total: int
    chunk: bytes

    def encode(self) -> bytes:
        if not 0 <= self.stream_id < 256 or not 0 <= self.index < 256:
            raise ValueError("stream id / index out of range")
        if not 1 <= self.total <= 256 or len(self.chunk) > 0xFFFF:
            raise ValueError("invalid segment geometry")
        return (bytes([self.stream_id, self.index, self.total - 1])
                + len(self.chunk).to_bytes(2, "big") + self.chunk)

    @classmethod
    def decode(cls, data: bytes) -> "CanalSegment":
        if len(data) < _HEADER_BYTES:
            raise ValueError("segment too short")
        stream_id, index, total_minus_1 = data[:3]
        length = int.from_bytes(data[3:5], "big")
        chunk = data[5 : 5 + length]
        if len(chunk) != length:
            raise ValueError("truncated segment")
        return cls(stream_id, index, total_minus_1 + 1, chunk)


class CanalCodec:
    """Encapsulate/reassemble byte blobs over CAN frames.

    Args:
        mode: "can-xl" (single-frame tunneling when it fits), "can-fd"
            (64-byte frames), or "can" (8-byte classic frames).
        can_id: arbitration id / priority used for the emitted frames.
    """

    _MODES = ("can", "can-fd", "can-xl")

    def __init__(self, *, mode: str = "can-xl", can_id: int = 0x200) -> None:
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}")
        self.mode = mode
        self.can_id = can_id
        self._next_stream = 0
        self._partial: dict[int, dict[int, CanalSegment]] = {}

    @property
    def segment_payload_capacity(self) -> int:
        """Usable bytes per CAN frame after the CANAL header."""
        capacity = {"can": 8, "can-fd": 64, "can-xl": 2048}[self.mode]
        return capacity - _HEADER_BYTES

    def encapsulate(self, blob: bytes) -> list[CanFrame | CanFdFrame | CanXlFrame]:
        """Split ``blob`` into CAN frames carrying CANAL segments."""
        if not blob:
            raise ValueError("cannot encapsulate an empty blob")
        stream_id = self._next_stream
        self._next_stream = (self._next_stream + 1) % 256
        cap = self.segment_payload_capacity
        chunks = [blob[i : i + cap] for i in range(0, len(blob), cap)]
        if len(chunks) > 256:
            raise ValueError("blob too large for 8-bit segment index")
        frames: list[CanFrame | CanFdFrame | CanXlFrame] = []
        for index, chunk in enumerate(chunks):
            data = CanalSegment(stream_id, index, len(chunks), chunk).encode()
            if self.mode == "can":
                frames.append(CanFrame(self.can_id, data))
            elif self.mode == "can-fd":
                frames.append(CanFdFrame(self.can_id, data))
            else:
                frames.append(CanXlFrame(
                    priority_id=self.can_id,
                    payload=data,
                    sdu_type=SDT_TUNNELED_ETHERNET,
                ))
        return frames

    def reassemble(self, frame: CanFrame | CanFdFrame | CanXlFrame) -> bytes | None:
        """Feed one received frame; returns the blob when complete.

        Incomplete streams are held until all segments arrive; segments
        of a new stream with a recycled id replace stale state.
        """
        segment = CanalSegment.decode(frame.payload)
        bucket = self._partial.setdefault(segment.stream_id, {})
        if bucket and next(iter(bucket.values())).total != segment.total:
            bucket.clear()  # stale stream with recycled id
        bucket[segment.index] = segment
        if len(bucket) == segment.total:
            blob = b"".join(bucket[i].chunk for i in range(segment.total))
            del self._partial[segment.stream_id]
            return blob
        return None

    def overhead_bytes(self, blob_len: int) -> int:
        """CANAL header bytes added to carry ``blob_len`` bytes."""
        cap = self.segment_payload_capacity
        n_segments = (blob_len + cap - 1) // cap
        return n_segments * _HEADER_BYTES
