"""MACsec key lifecycle: packet-number exhaustion and automatic rekey.

802.1AE forbids reusing a (SAK, PN) pair — the GCM nonce is built from
it — so a SecY approaching PN exhaustion must get a fresh SAK from MKA
*before* the counter wraps.  Operationally this is the part of MACsec
deployments that actually breaks: the paper's S2/S3 scenarios assume
"(session) key storage" just works, and this module supplies the
machinery that makes it work:

* :class:`KeyLifecycleManager` — watches the tx PN of every member of a
  connectivity association and triggers
  :meth:`~repro.ivn.macsec.MkaSession.distribute_sak` when any member
  crosses the rekey threshold;
* :func:`run_traffic_with_rekey` — drives continuous protected traffic
  through the association and shows zero frame loss across rotations
  (the seamless-rekey property the tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ivn.macsec import MacsecPort, MkaSession

__all__ = ["KeyLifecycleManager", "RekeyEvent", "run_traffic_with_rekey"]


@dataclass(frozen=True)
class RekeyEvent:
    """One SAK rotation."""

    at_frame: int
    key_number: int
    triggered_by: str
    tx_pn_at_trigger: int


@dataclass
class KeyLifecycleManager:
    """Monitors PN consumption and rotates SAKs ahead of exhaustion.

    Args:
        session: the MKA session whose members it guards.
        pn_limit: the counter space of one SA (2^32 for 802.1AE; tests
            use small values to exercise rotation).
        rekey_fraction: rotate when tx PN exceeds this fraction of
            ``pn_limit``.
    """

    session: MkaSession
    pn_limit: int = 2**32
    rekey_fraction: float = 0.9
    events: list[RekeyEvent] = field(default_factory=list)
    _frames_seen: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.rekey_fraction < 1.0:
            raise ValueError("rekey_fraction must be in (0, 1)")
        if self.pn_limit < 2:
            raise ValueError("pn_limit must be at least 2")

    @property
    def threshold(self) -> int:
        return max(1, int(self.pn_limit * self.rekey_fraction))

    def observe_frame(self) -> RekeyEvent | None:
        """Call after each protected frame; rotates when due."""
        self._frames_seen += 1
        for member in self.session.members:
            pn = member.tx_sc.active.next_pn
            if pn > self.threshold:
                self.session.distribute_sak()
                event = RekeyEvent(
                    at_frame=self._frames_seen,
                    key_number=self.session.key_number,
                    triggered_by=member.sci.system_id,
                    tx_pn_at_trigger=pn,
                )
                self.events.append(event)
                return event
        return None


def run_traffic_with_rekey(n_frames: int, *, pn_limit: int = 64,
                           rekey_fraction: float = 0.8,
                           cak: bytes = b"\x28" * 16) -> tuple[int, list[RekeyEvent]]:
    """Send ``n_frames`` through a 2-member CA under lifecycle management.

    Returns ``(frames_delivered, rekey_events)``; with correct rotation
    every frame is delivered despite multiple SAK generations.
    """
    if n_frames < 1:
        raise ValueError("need at least one frame")
    sender = MacsecPort("sender")
    receiver = MacsecPort("receiver")
    session = MkaSession(cak, [sender, receiver])
    session.distribute_sak()
    manager = KeyLifecycleManager(session, pn_limit=pn_limit,
                                  rekey_fraction=rekey_fraction)
    delivered = 0
    for i in range(n_frames):
        frame = sender.protect(f"frame-{i}".encode())
        if receiver.validate(frame) is not None:
            delivered += 1
        manager.observe_frame()
    return delivered, manager.events
