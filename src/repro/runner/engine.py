"""The parallel, cached experiment-sweep scheduler.

:class:`SweepRunner` takes experiments from the registry and runs them
to completion across a :class:`~concurrent.futures.ProcessPoolExecutor`:

- **Parallelism** — ``jobs`` worker processes; each worker runs one
  experiment's bench file as a subprocess (so a crashing bench can never
  take the scheduler down) and hands back a plain result document.
- **Timeout + retry** — every experiment gets a hard per-run timeout;
  infrastructure failures (``timeout``/``error``, *not* deterministic
  test failures) are retried exactly once.
- **Caching** — results are looked up in / written to a
  content-addressed :class:`~repro.runner.cache.ResultCache`; a warm
  re-run reports unchanged experiments as ``cached`` without spawning
  anything.
- **Seed sharding** — each experiment's worker receives a seed derived
  with :func:`repro.core.rng.derive_seed` from the sweep's base seed,
  so replicated sweeps (``--base-seed N``) are deterministic per
  experiment and decorrelated across experiments.
- **Observability** — a ``runner.sweep`` span with one child span per
  executed experiment, ``runner.*`` counters/histograms, and
  experiment start/done events collected on a sweep
  :class:`~repro.obs.timeline.Timeline` (mirrored into the global
  :data:`~repro.obs.runtime.OBS` when instrumentation is enabled).
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.layers import Layer
from repro.core.rng import derive_seed
from repro.experiments import Experiment, benchmarks_dir
from repro.obs.events import EventKind, EventLog, SimEvent
from repro.obs.runtime import OBS
from repro.obs.trace import Span
from repro.runner.cache import ResultCache, experiment_key, tree_digest
from repro.runner.worker import execute

__all__ = ["ExperimentResult", "SweepRunner", "DEFAULT_COMMAND_TEMPLATE",
           "DEFAULT_TIMEOUT_S"]

#: Worker argv template; ``{python}`` and ``{bench}`` are substituted.
DEFAULT_COMMAND_TEMPLATE: tuple[str, ...] = (
    "{python}", "-m", "pytest", "{bench}", "--benchmark-only", "-q",
    "-p", "no:cacheprovider",
)

DEFAULT_TIMEOUT_S = 900.0

#: Statuses that count as success (a cache hit implies a past pass).
OK_STATUSES = frozenset({"passed", "cached"})

#: Statuses worth one automatic retry (worker trouble, not test verdicts).
RETRYABLE_STATUSES = frozenset({"timeout", "error"})

#: Minimum leftover timeout budget (seconds) worth spending on a retry.
RETRY_BUDGET_FLOOR_S = 0.05


@dataclass
class ExperimentResult:
    """Outcome of one experiment within a sweep."""

    exp_id: str
    status: str
    exit_code: int
    duration_s: float
    seed: int
    retries: int = 0
    cached: bool = False
    cache_key: str = ""
    artifacts: list[dict] = field(default_factory=list)
    output_tail: str = ""
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status in OK_STATUSES

    def to_dict(self) -> dict:
        return {
            "id": self.exp_id,
            "status": self.status,
            "exitCode": self.exit_code,
            "durationS": self.duration_s,
            "seed": self.seed,
            "retries": self.retries,
            "cached": self.cached,
            "cacheKey": self.cache_key,
            "artifacts": [dict(a) for a in self.artifacts],
            "error": self.error,
        }


class SweepRunner:
    """Schedule a set of experiments and collect a sweep report."""

    def __init__(self, experiments: Iterable[Experiment], *,
                 jobs: int = 1,
                 use_cache: bool = True,
                 cache: ResultCache | None = None,
                 cache_dir: str | Path | None = None,
                 cache_max_entries: int | None = None,
                 base_seed: int = 0,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 retry: bool = True,
                 bench_dir: Path | None = None,
                 command_template: Sequence[str] = DEFAULT_COMMAND_TEMPLATE,
                 digest_paths: Sequence[Path] | None = None,
                 on_result: Callable[[ExperimentResult], None] | None = None,
                 fault_hook: Callable[[dict, int], dict | None] | None = None,
                 ) -> None:
        self.experiments = list(experiments)
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.use_cache = use_cache
        # NB: not `cache or ...` — an *empty* ResultCache is falsy (len 0)
        self.cache = cache if cache is not None else ResultCache(
            cache_dir, max_entries=cache_max_entries)
        self.base_seed = base_seed
        self.timeout_s = timeout_s
        self.retry = retry
        self.bench_dir = Path(bench_dir) if bench_dir else benchmarks_dir()
        self.command_template = tuple(command_template)
        if digest_paths is None:
            src_tree = Path(__file__).resolve().parents[1]  # src/repro
            digest_paths = [src_tree, benchmarks_dir() / "conftest.py"]
        self.digest_paths = list(digest_paths)
        self.on_result = on_result
        # Consulted before every dispatch with (spec, attempt); returning a
        # result document simulates the worker dying with that outcome —
        # the deterministic worker-crash fault of repro.faults rides this.
        self.fault_hook = fault_hook
        self.events = EventLog(capacity=8192)
        self._t0 = 0.0

    # -- helpers -------------------------------------------------------------

    def seed_for(self, exp_id: str) -> int:
        """The deterministic per-experiment seed shard."""
        return derive_seed(f"sweep/{exp_id}", self.base_seed)

    def _command(self, bench_path: Path) -> list[str]:
        return [part.format(python=sys.executable, bench=str(bench_path))
                for part in self.command_template]

    def _spec(self, experiment: Experiment) -> dict:
        bench_path = self.bench_dir / experiment.bench_file
        return {
            "exp_id": experiment.exp_id,
            "command": self._command(bench_path),
            "timeout_s": self.timeout_s,
            "seed": self.seed_for(experiment.exp_id),
            "base_seed": self.base_seed,
        }

    def _emit(self, kind: EventKind, exp_id: str, message: str,
              **fields: str | int | float | bool) -> SimEvent:
        t = time.perf_counter() - self._t0
        event = self.events.emit(kind, Layer.SYSTEM_OF_SYSTEMS, exp_id,
                                 message, t=t, **fields)
        if OBS.enabled:
            OBS.emit(kind, Layer.SYSTEM_OF_SYSTEMS, exp_id, message,
                     t=t, **fields)
        return event

    def _record(self, result: ExperimentResult, root: object) -> None:
        """Book-keeping common to fresh and cached results."""
        if OBS.enabled:
            OBS.count(f"runner.{result.status}")
            OBS.count("runner.completed")
            if not result.cached:
                OBS.observe("runner.experiment_s", result.duration_s)
            if isinstance(root, Span):
                root.children.append(Span(
                    name=f"runner.exp.{result.exp_id}",
                    tags={"status": result.status,
                          "cached": result.cached,
                          "retries": result.retries},
                    wall_s=0.0 if result.cached else result.duration_s,
                    cpu_s=0.0,
                    status="ok" if result.ok else "error",
                    error=None if result.ok else (result.error
                                                  or result.status),
                ))
        self._emit(EventKind.EXPERIMENT_DONE, result.exp_id,
                   f"{result.status} in {result.duration_s:.3f}s"
                   + (" (cached)" if result.cached else ""),
                   status=result.status, cached=result.cached,
                   retries=result.retries)
        if self.on_result is not None:
            self.on_result(result)

    @staticmethod
    def _result_from_doc(document: dict, *, key: str, cached: bool,
                         retries: int = 0) -> ExperimentResult:
        return ExperimentResult(
            exp_id=str(document.get("id", "")),
            status="cached" if cached else str(document.get("status", "error")),
            exit_code=int(document.get("exitCode", -1)),
            duration_s=float(document.get("durationS", 0.0)),
            seed=int(document.get("seed", 0)),
            retries=retries,
            cached=cached,
            cache_key=key,
            artifacts=list(document.get("artifacts", [])),
            output_tail=str(document.get("outputTail", "")),
            error=str(document.get("error", "")),
        )

    # -- the sweep -----------------------------------------------------------

    def run(self) -> "SweepReport":
        from repro.runner.report import SweepReport

        self._t0 = time.perf_counter()
        tree = tree_digest(self.digest_paths)
        results: dict[str, ExperimentResult] = {}
        pending: list[tuple[Experiment, str]] = []

        with OBS.span("runner.sweep", jobs=self.jobs,
                      experiments=len(self.experiments)) as root:
            for experiment in self.experiments:
                key = experiment_key(
                    experiment.exp_id, self.bench_dir / experiment.bench_file,
                    tree=tree, base_seed=self.base_seed,
                    command_template=self.command_template)
                document = self.cache.get(key) if self.use_cache else None
                if document is not None:
                    result = self._result_from_doc(document, key=key,
                                                   cached=True)
                    result.exp_id = experiment.exp_id
                    results[experiment.exp_id] = result
                    self._record(result, root)
                else:
                    pending.append((experiment, key))

            interrupted = False
            if pending:
                workers = max(1, min(self.jobs, len(pending)))
                # The pool is managed by hand rather than as a context
                # manager: ProcessPoolExecutor.__exit__ is a blocking
                # shutdown(wait=True), which would hang a Ctrl-C right
                # back on the in-flight experiments the user is trying
                # to abandon.
                pool = ProcessPoolExecutor(max_workers=workers)
                try:
                    future_map: dict = {}
                    # Fault-hook outcomes complete without a worker; they
                    # queue here and drain through the same handling path.
                    injected: list[tuple[Experiment, str, int, dict, dict]] = []

                    def dispatch(experiment: Experiment, key: str,
                                 attempt: int, spec: dict,
                                 message: str) -> None:
                        self._emit(EventKind.EXPERIMENT_START,
                                   experiment.exp_id, message, attempt=attempt)
                        if OBS.enabled:
                            OBS.count("runner.scheduled")
                        if self.fault_hook is not None:
                            document = self.fault_hook(spec, attempt)
                            if document is not None:
                                injected.append((experiment, key, attempt,
                                                 spec, document))
                                return
                        future = pool.submit(execute, spec)
                        future_map[future] = (experiment, key, attempt, spec)

                    for experiment, key in pending:
                        dispatch(experiment, key, 0, self._spec(experiment),
                                 "dispatched")
                    while future_map or injected:
                        if injected:
                            experiment, key, attempt, spec, document = \
                                injected.pop(0)
                        else:
                            done, _ = wait(future_map,
                                           return_when=FIRST_COMPLETED)
                            future = next(iter(done))
                            experiment, key, attempt, spec = \
                                future_map.pop(future)
                            try:
                                document = future.result()
                            except Exception as exc:  # worker process died
                                document = {
                                    "id": experiment.exp_id, "status": "error",
                                    "exitCode": -1, "durationS": 0.0,
                                    "seed": self.seed_for(experiment.exp_id),
                                    "artifacts": [], "outputTail": "",
                                    "error": f"worker crashed: {exc!r}",
                                }
                        if (document["status"] in RETRYABLE_STATUSES
                                and attempt == 0 and self.retry):
                            # A retried worker only gets what is left of the
                            # experiment's timeout budget — a crash after
                            # consuming most of it must not win a fresh full
                            # timeout.
                            remaining = (float(spec["timeout_s"])
                                         - float(document.get("durationS",
                                                              0.0)))
                            if remaining > RETRY_BUDGET_FLOOR_S:
                                if OBS.enabled:
                                    OBS.count("runner.retries")
                                dispatch(experiment, key, 1,
                                         {**spec, "timeout_s": remaining},
                                         f"retrying after "
                                         f"{document['status']} "
                                         f"({remaining:.1f}s budget left)")
                                continue
                            note = "retry skipped: timeout budget exhausted"
                            error = str(document.get("error", ""))
                            document = {**document,
                                        "error": (f"{error}; {note}"
                                                  if error else note)}
                        result = self._result_from_doc(
                            document, key=key, cached=False,
                            retries=attempt)
                        if self.use_cache and result.status == "passed":
                            self.cache.put(key, document)
                        results[experiment.exp_id] = result
                        self._record(result, root)
                except KeyboardInterrupt:
                    # Keep every completed result: cancel what never
                    # started, abandon what is running, and fall through
                    # to emit a partial, schema-valid report.
                    interrupted = True
                    if OBS.enabled:
                        OBS.count("runner.interrupted")
                finally:
                    pool.shutdown(wait=not interrupted,
                                  cancel_futures=interrupted)

        wall_s = time.perf_counter() - self._t0
        ordered = [results[e.exp_id] for e in self.experiments
                   if e.exp_id in results]
        return SweepReport(ordered, jobs=self.jobs,
                           cache_enabled=self.use_cache,
                           base_seed=self.base_seed, wall_s=wall_s,
                           tree=tree, events=list(self.events),
                           interrupted=interrupted)
