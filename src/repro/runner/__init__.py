"""``repro.runner`` — the parallel, cached experiment-sweep engine.

The reproduction's whole-surface sweep (``python -m repro run all``)
used to be one sequential pytest subprocess; this package turns it into
a scheduled sweep: experiments from :data:`repro.experiments.EXPERIMENTS`
fan out across a process pool with per-experiment timeouts, one
automatic retry on worker failure, deterministic per-experiment seed
shards, and a content-addressed result cache keyed by the bench file +
the ``src/repro`` tree — so a warm re-run after an unrelated edit skips
everything unchanged and reports it as ``cached``.  The paper's
layered-defense argument depends on exactly this: cross-layer sweeps
cheap enough to re-run on every change.

Quickstart::

    from repro.experiments import EXPERIMENTS
    from repro.runner import SweepRunner

    report = SweepRunner(EXPERIMENTS, jobs=4).run()
    print(report.to_table())

CLI::

    python -m repro run all --jobs 4            # parallel, cached sweep
    python -m repro run all --jobs 4 --json     # validated sweep document
    python -m repro run fig2 --no-cache         # force one re-run
"""

from repro.runner.cache import (CACHE_VERSION, ResultCache, default_cache_dir,
                                experiment_key, tree_digest)
from repro.runner.engine import (DEFAULT_COMMAND_TEMPLATE, DEFAULT_TIMEOUT_S,
                                 ExperimentResult, SweepRunner)
from repro.runner.report import (SweepReport, SweepSchemaError,
                                 validate_sweep_dict)
from repro.runner.worker import execute, parse_artifacts

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_COMMAND_TEMPLATE",
    "DEFAULT_TIMEOUT_S",
    "ExperimentResult",
    "ResultCache",
    "SweepReport",
    "SweepRunner",
    "SweepSchemaError",
    "default_cache_dir",
    "execute",
    "experiment_key",
    "parse_artifacts",
    "tree_digest",
    "validate_sweep_dict",
]
