"""Sweep reports: summary table / timeline text and a validated JSON doc.

The JSON schema (version ``1.0``) mirrors the ``repro.lint`` and
``repro.obs`` report conventions — small, flat, stable::

    {
      "version": "1.0",
      "tool": {"name": "repro-runner", "version": "<package version>"},
      "sweep": {"jobs", "cache", "baseSeed", "wallS", "treeDigest",
                "interrupted"},
      "experiments": [
        {"id", "status", "exitCode", "durationS", "seed", "retries",
         "cached", "cacheKey", "artifacts": [{"title", "rows"}], "error"}
      ],
      "summary": {"total", "passed", "failed", "errors", "timeouts",
                  "cached", "ok"}
    }

:func:`validate_sweep_dict` checks a parsed document against that
schema and raises :class:`SweepSchemaError` on any violation — the CI
gate and the round-trip tests both call it.
"""

from __future__ import annotations

from repro.obs.events import SimEvent
from repro.obs.timeline import Timeline, render_timeline
from repro.runner.engine import ExperimentResult

__all__ = ["SweepReport", "SweepSchemaError", "validate_sweep_dict"]

SCHEMA_VERSION = "1.0"
TOOL_NAME = "repro-runner"

STATUSES = ("passed", "failed", "error", "timeout", "cached")

_STATUS_TO_SUMMARY = {"passed": "passed", "failed": "failed",
                      "error": "errors", "timeout": "timeouts",
                      "cached": "cached"}


class SweepSchemaError(ValueError):
    """A sweep JSON document does not match the documented schema."""


class SweepReport:
    """Everything one sweep produced, ready to render/export."""

    def __init__(self, results: list[ExperimentResult], *, jobs: int,
                 cache_enabled: bool, base_seed: int, wall_s: float,
                 tree: str, events: list[SimEvent] | None = None,
                 interrupted: bool = False) -> None:
        self.results = list(results)
        self.jobs = jobs
        self.cache_enabled = cache_enabled
        self.base_seed = base_seed
        self.wall_s = wall_s
        self.tree = tree
        self.events = list(events or [])
        #: The sweep stopped early on KeyboardInterrupt; ``results``
        #: holds only the experiments that completed before the signal.
        self.interrupted = interrupted

    # -- verdicts ------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def exit_code(self) -> int:
        """130 for an interrupted sweep (signal convention), else 0/1."""
        if self.interrupted:
            return 130
        return 0 if self.ok else 1

    def counts(self) -> dict[str, int]:
        counts = {name: 0 for name in _STATUS_TO_SUMMARY.values()}
        for result in self.results:
            counts[_STATUS_TO_SUMMARY[result.status]] += 1
        return counts

    # -- rendering -----------------------------------------------------------

    def timeline(self) -> Timeline:
        """The sweep's dispatch/completion events as a Timeline."""
        return Timeline().add(self.events)

    def render_timeline(self) -> str:
        return render_timeline(self.events)

    def to_table(self) -> str:
        """Aligned per-experiment summary plus a totals line."""
        width = max([len(r.exp_id) for r in self.results] + [len("id")])
        lines = [f"{'id'.ljust(width)}  {'status':8s}  {'time':>8s}  note",
                 f"{'-' * width}  {'-' * 8}  {'-' * 8}  {'-' * 30}"]
        for result in self.results:
            note = ""
            if result.cached:
                note = "cache hit"
            elif result.retries:
                note = f"after {result.retries} retry"
            if result.error:
                note = (note + "; " if note else "") + result.error
            lines.append(f"{result.exp_id.ljust(width)}  {result.status:8s}  "
                         f"{result.duration_s:7.2f}s  {note}")
        counts = self.counts()
        lines.append(
            f"sweep: {len(self.results)} experiment(s) in {self.wall_s:.2f}s "
            f"with {self.jobs} job(s) — {counts['passed']} passed, "
            f"{counts['cached']} cached, {counts['failed']} failed, "
            f"{counts['errors']} error(s), {counts['timeouts']} timeout(s)"
            + (" [interrupted — partial results]" if self.interrupted
               else ""))
        return "\n".join(lines)

    # -- export --------------------------------------------------------------

    def to_json_dict(self) -> dict:
        """The sweep document (see module docstring for the schema)."""
        from repro import __version__

        counts = self.counts()
        return {
            "version": SCHEMA_VERSION,
            "tool": {"name": TOOL_NAME, "version": __version__},
            "sweep": {
                "jobs": self.jobs,
                "cache": self.cache_enabled,
                "baseSeed": self.base_seed,
                "wallS": self.wall_s,
                "treeDigest": self.tree,
                "interrupted": self.interrupted,
            },
            "experiments": [result.to_dict() for result in self.results],
            "summary": {"total": len(self.results), **counts, "ok": self.ok},
        }


# --------------------------------------------------------------------------
# schema validation
# --------------------------------------------------------------------------

_EXPERIMENT_KEYS = {"id", "status", "exitCode", "durationS", "seed",
                    "retries", "cached", "cacheKey", "artifacts", "error"}
_SUMMARY_KEYS = {"total", "passed", "failed", "errors", "timeouts",
                 "cached", "ok"}
_SWEEP_KEYS = {"jobs", "cache", "baseSeed", "wallS", "treeDigest",
               "interrupted"}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SweepSchemaError(message)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _validate_artifact(entry: object, where: str) -> None:
    _require(isinstance(entry, dict) and set(entry) == {"title", "rows"},
             f"{where}: artifact must be {{title, rows}}")
    _require(isinstance(entry["title"], str) and entry["title"],
             f"{where}: title must be a non-empty string")
    _require(isinstance(entry["rows"], list)
             and all(isinstance(row, str) for row in entry["rows"]),
             f"{where}: rows must be a list of strings")


def _validate_experiment(entry: object, where: str) -> str:
    _require(isinstance(entry, dict), f"{where}: experiment must be an object")
    _require(set(entry) == _EXPERIMENT_KEYS,
             f"{where}: keys {sorted(entry)} != {sorted(_EXPERIMENT_KEYS)}")
    _require(isinstance(entry["id"], str) and entry["id"],
             f"{where}: id must be a non-empty string")
    _require(entry["status"] in STATUSES,
             f"{where}: bad status {entry['status']!r}")
    _require(_is_int(entry["exitCode"]), f"{where}: exitCode must be an int")
    _require(_is_number(entry["durationS"]) and entry["durationS"] >= 0,
             f"{where}: durationS must be a non-negative number")
    _require(_is_int(entry["seed"]) and entry["seed"] >= 0,
             f"{where}: seed must be a non-negative int")
    _require(_is_int(entry["retries"]) and entry["retries"] >= 0,
             f"{where}: retries must be a non-negative int")
    _require(isinstance(entry["cached"], bool),
             f"{where}: cached must be a bool")
    _require(entry["cached"] == (entry["status"] == "cached"),
             f"{where}: cached flag must match status == 'cached'")
    _require(isinstance(entry["cacheKey"], str),
             f"{where}: cacheKey must be a string")
    _require(isinstance(entry["error"], str),
             f"{where}: error must be a string")
    _require(isinstance(entry["artifacts"], list),
             f"{where}: artifacts must be a list")
    for index, artifact in enumerate(entry["artifacts"]):
        _validate_artifact(artifact, f"{where}.artifacts[{index}]")
    return entry["status"]


def validate_sweep_dict(document: dict) -> None:
    """Raise :class:`SweepSchemaError` unless ``document`` matches."""
    _require(isinstance(document, dict), "sweep report must be an object")
    required = {"version", "tool", "sweep", "experiments", "summary"}
    _require(set(document) == required,
             f"top-level keys {sorted(document)} != {sorted(required)}")
    _require(document["version"] == SCHEMA_VERSION,
             f"unsupported schema version {document['version']!r}")
    tool = document["tool"]
    _require(isinstance(tool, dict) and set(tool) == {"name", "version"},
             "tool must be {name, version}")
    _require(tool["name"] == TOOL_NAME,
             f"unexpected tool name {tool['name']!r}")

    sweep = document["sweep"]
    _require(isinstance(sweep, dict) and set(sweep) == _SWEEP_KEYS,
             f"sweep must be {sorted(_SWEEP_KEYS)}")
    _require(_is_int(sweep["jobs"]) and sweep["jobs"] >= 1,
             "sweep.jobs must be an int >= 1")
    _require(isinstance(sweep["cache"], bool), "sweep.cache must be a bool")
    _require(_is_int(sweep["baseSeed"]), "sweep.baseSeed must be an int")
    _require(_is_number(sweep["wallS"]) and sweep["wallS"] >= 0,
             "sweep.wallS must be a non-negative number")
    _require(isinstance(sweep["treeDigest"], str) and sweep["treeDigest"],
             "sweep.treeDigest must be a non-empty string")
    _require(isinstance(sweep["interrupted"], bool),
             "sweep.interrupted must be a bool")

    _require(isinstance(document["experiments"], list),
             "experiments must be a list")
    counts = {name: 0 for name in _STATUS_TO_SUMMARY.values()}
    seen_ids: set[str] = set()
    for index, entry in enumerate(document["experiments"]):
        status = _validate_experiment(entry, f"experiments[{index}]")
        counts[_STATUS_TO_SUMMARY[status]] += 1
        _require(entry["id"] not in seen_ids,
                 f"experiments[{index}]: duplicate id {entry['id']!r}")
        seen_ids.add(entry["id"])

    summary = document["summary"]
    _require(isinstance(summary, dict) and set(summary) == _SUMMARY_KEYS,
             f"summary must be {sorted(_SUMMARY_KEYS)}")
    _require(summary["total"] == len(document["experiments"]),
             "summary.total must equal len(experiments)")
    for name, value in counts.items():
        _require(summary[name] == value,
                 f"summary.{name} must count statuses (expected {value})")
    ok = counts["failed"] == counts["errors"] == counts["timeouts"] == 0
    _require(summary["ok"] == ok,
             "summary.ok must be true iff no failed/error/timeout entries")
