"""Content-addressed result cache for experiment sweeps.

A sweep result is reusable exactly when nothing that could change it has
changed: the bench file itself, the ``src/repro`` tree it imports, the
shared bench harness (``benchmarks/conftest.py``), the base seed, and
the worker command shape.  :func:`experiment_key` folds all of those
into one SHA-256 key; :class:`ResultCache` maps keys to the JSON result
documents the worker produced.  A warm re-run therefore skips every
experiment whose inputs are byte-identical and re-runs everything else —
no mtimes, no manual invalidation.

Cache layout (one file per key, atomically written)::

    <cache-dir>/
      <sha256-hex>.json

Only *passed* results are cached (failures always re-run), so a cache
hit is a proof the experiment passed against identical inputs.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable

__all__ = ["CACHE_VERSION", "ResultCache", "tree_digest", "experiment_key",
           "default_cache_dir"]

#: Bumped whenever the cached document shape changes; part of every key.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """The repo-local cache directory (``.repro-cache/runner``)."""
    from repro.experiments import benchmarks_dir

    return benchmarks_dir().parent / ".repro-cache" / "runner"


def _file_sha(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def tree_digest(paths: Iterable[Path]) -> str:
    """One digest over a set of files and directory trees.

    Directories contribute every ``*.py`` under them (recursively); the
    digest covers relative path *and* content, sorted, so renames and
    edits both invalidate.  Missing paths contribute a marker instead of
    raising — a deleted file is a change, not an error.
    """
    entries: list[tuple[str, str]] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                entries.append((str(file.relative_to(path)), _file_sha(file)))
        elif path.is_file():
            entries.append((path.name, _file_sha(path)))
        else:
            entries.append((str(path), "<missing>"))
    entries.sort()
    digest = hashlib.sha256()
    for name, sha in entries:
        digest.update(f"{name}={sha}\n".encode())
    return digest.hexdigest()


def experiment_key(exp_id: str, bench_path: Path, *, tree: str,
                   base_seed: int = 0,
                   command_template: Iterable[str] = ()) -> str:
    """The content-addressed cache key for one experiment."""
    try:
        bench_sha = _file_sha(Path(bench_path))
    except OSError:
        bench_sha = "<missing>"
    material = "|".join([
        f"v{CACHE_VERSION}", exp_id, bench_sha, tree, str(base_seed),
        " ".join(command_template),
    ])
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """On-disk key → JSON-document store with atomic writes.

    ``max_entries`` bounds the store: every :meth:`put` prunes the
    least-recently-used entries (by mtime — :meth:`get` refreshes it on
    hit, so a warm entry survives a cold one) down to the cap.  ``None``
    keeps the historical unbounded behaviour; the CLI default caps the
    shared ``.repro-cache/runner/`` so sweeps can't grow it forever.
    """

    def __init__(self, directory: str | Path | None = None, *,
                 max_entries: int | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.max_entries = max_entries

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached document, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict):
            return None
        try:
            os.utime(path)  # refresh LRU recency on hit
        except OSError:  # pragma: no cover - raced with prune/clear
            pass
        return document

    def put(self, key: str, document: dict) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        if self.max_entries is not None:
            self.prune(self.max_entries, keep=path)
        return path

    def prune(self, max_entries: int, *, keep: Path | None = None) -> int:
        """Evict least-recently-used entries beyond ``max_entries``.

        ``keep`` protects one path (the entry just written) even if a
        coarse mtime clock makes it look no fresher than its siblings.
        Returns the number of entries removed.
        """
        if not self.directory.is_dir():
            return 0
        entries = []
        for file in self.directory.glob("*.json"):
            try:
                mtime = file.stat().st_mtime
            except OSError:  # pragma: no cover - raced with clear
                continue
            entries.append((mtime, str(file), file))
        if len(entries) <= max_entries:
            return 0
        entries.sort()  # oldest first; path breaks mtime ties stably
        removed = 0
        excess = len(entries) - max_entries
        for _, _, file in entries:
            if removed >= excess:
                break
            if keep is not None and file == keep:
                continue
            file.unlink(missing_ok=True)
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for file in self.directory.glob("*.json"):
                file.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
