"""Content-addressed result cache for experiment sweeps.

A sweep result is reusable exactly when nothing that could change it has
changed: the bench file itself, the ``src/repro`` tree it imports, the
shared bench harness (``benchmarks/conftest.py``), the base seed, and
the worker command shape.  :func:`experiment_key` folds all of those
into one SHA-256 key; :class:`ResultCache` maps keys to the JSON result
documents the worker produced.  A warm re-run therefore skips every
experiment whose inputs are byte-identical and re-runs everything else —
no mtimes, no manual invalidation.

Cache layout (one file per key, atomically written)::

    <cache-dir>/
      <sha256-hex>.json

Only *passed* results are cached (failures always re-run), so a cache
hit is a proof the experiment passed against identical inputs.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable

__all__ = ["CACHE_VERSION", "ResultCache", "tree_digest", "experiment_key",
           "default_cache_dir"]

#: Bumped whenever the cached document shape changes; part of every key.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """The repo-local cache directory (``.repro-cache/runner``)."""
    from repro.experiments import benchmarks_dir

    return benchmarks_dir().parent / ".repro-cache" / "runner"


def _file_sha(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def tree_digest(paths: Iterable[Path]) -> str:
    """One digest over a set of files and directory trees.

    Directories contribute every ``*.py`` under them (recursively); the
    digest covers relative path *and* content, sorted, so renames and
    edits both invalidate.  Missing paths contribute a marker instead of
    raising — a deleted file is a change, not an error.
    """
    entries: list[tuple[str, str]] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                entries.append((str(file.relative_to(path)), _file_sha(file)))
        elif path.is_file():
            entries.append((path.name, _file_sha(path)))
        else:
            entries.append((str(path), "<missing>"))
    entries.sort()
    digest = hashlib.sha256()
    for name, sha in entries:
        digest.update(f"{name}={sha}\n".encode())
    return digest.hexdigest()


def experiment_key(exp_id: str, bench_path: Path, *, tree: str,
                   base_seed: int = 0,
                   command_template: Iterable[str] = ()) -> str:
    """The content-addressed cache key for one experiment."""
    try:
        bench_sha = _file_sha(Path(bench_path))
    except OSError:
        bench_sha = "<missing>"
    material = "|".join([
        f"v{CACHE_VERSION}", exp_id, bench_sha, tree, str(base_seed),
        " ".join(command_template),
    ])
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """On-disk key → JSON-document store with atomic writes."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached document, or ``None`` on miss/corruption."""
        try:
            document = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            return None
        return document if isinstance(document, dict) else None

    def put(self, key: str, document: dict) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for file in self.directory.glob("*.json"):
                file.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
