"""Worker-side execution of one experiment (runs in a pool process).

:func:`execute` is the only function the :class:`ProcessPoolExecutor`
ships across the process boundary, so it takes and returns plain dicts
(picklable, JSON-ready).  It runs the experiment's bench file as a
subprocess with a hard timeout, classifies the outcome, and parses the
``=== title ===`` artifact tables the bench harness prints into
structured rows — the per-experiment payload the sweep report and the
result cache both store.
"""

from __future__ import annotations

import re
import subprocess
import time

__all__ = ["execute", "parse_artifacts", "OUTPUT_TAIL_CHARS"]

#: How much trailing stdout/stderr a result keeps for display.
OUTPUT_TAIL_CHARS = 4000

#: pytest progress lines (``.  [100%]``) that leak between artifact rows.
_PROGRESS_RE = re.compile(r"^[.FEsxX]*\s*\[\s*\d+%\]$")


def parse_artifacts(stdout: str) -> list[dict]:
    """Extract ``=== title ===`` tables from a bench run's stdout.

    Each table is the contiguous block of non-blank lines following its
    banner; pytest's own progress markers are filtered out so the rows
    are identical whether the bench ran alone or inside a sweep.
    """
    artifacts: list[dict] = []
    current: dict | None = None
    for raw in stdout.splitlines():
        line = raw.rstrip()
        stripped = line.strip()
        if stripped.startswith("===") and stripped.endswith("===") and \
                stripped.strip("=").strip():
            current = {"title": stripped.strip("=").strip(), "rows": []}
            artifacts.append(current)
        elif current is not None:
            if not stripped:
                current = None
            elif not _PROGRESS_RE.match(stripped):
                current["rows"].append(line)
    return artifacts


def _tail(text: str) -> str:
    return text[-OUTPUT_TAIL_CHARS:] if len(text) > OUTPUT_TAIL_CHARS else text


def execute(spec: dict) -> dict:
    """Run one experiment to completion inside a worker process.

    ``spec`` carries: ``exp_id``, ``command`` (argv list), ``timeout_s``,
    ``seed`` (exported as ``REPRO_EXP_SEED``), and optionally
    ``base_seed`` (exported as ``REPRO_BASE_SEED`` when non-zero, which
    re-shards every ``repro.core.rng`` stream in the bench).

    Never raises on experiment trouble — failures, timeouts, and launch
    errors all come back as a status so the scheduler can decide whether
    to retry.  Statuses: ``passed`` | ``failed`` | ``timeout`` | ``error``.
    """
    import os

    env = dict(os.environ)
    env["REPRO_EXP_SEED"] = str(spec["seed"])
    if spec.get("base_seed"):
        env["REPRO_BASE_SEED"] = str(spec["base_seed"])

    t0 = time.perf_counter()
    stdout, stderr, error = "", "", ""
    try:
        proc = subprocess.run(
            list(spec["command"]), capture_output=True, text=True,
            timeout=spec["timeout_s"], env=env,
        )
        stdout, stderr = proc.stdout or "", proc.stderr or ""
        status = "passed" if proc.returncode == 0 else "failed"
        exit_code = proc.returncode
    except subprocess.TimeoutExpired as exc:
        stdout = exc.stdout.decode(errors="replace") \
            if isinstance(exc.stdout, bytes) else (exc.stdout or "")
        status, exit_code = "timeout", -1
        error = f"timed out after {spec['timeout_s']:g}s"
    except OSError as exc:
        status, exit_code = "error", -1
        error = f"could not launch worker command: {exc}"
    duration_s = time.perf_counter() - t0

    return {
        "id": spec["exp_id"],
        "status": status,
        "exitCode": exit_code,
        "durationS": duration_s,
        "seed": spec["seed"],
        "artifacts": parse_artifacts(stdout),
        "outputTail": _tail(stdout if stdout else stderr),
        "error": error,
    }
