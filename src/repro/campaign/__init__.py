"""Crash-safe, resumable campaign engine over the repro tool fleet.

``repro.campaign`` generalises :class:`repro.runner.engine.SweepRunner`
from pytest sweeps to arbitrary ``(tool, scenario, plan, seed)`` shard
matrices across ``chaos``, ``sentinel``, ``redteam``, ``flow`` and
``lint`` — and applies the paper's graceful-degradation discipline to
the harness itself:

* :mod:`repro.campaign.spec` — shard/campaign matrices with stable,
  content-derived identities;
* :mod:`repro.campaign.journal` — the fsynced append-only write-ahead
  journal every scheduling decision hits before the engine acts on it;
* :mod:`repro.campaign.supervisor` — heartbeat-supervised workers with
  hang detection, remaining-budget restarts and poison-shard
  quarantine;
* :mod:`repro.campaign.shard` — worker-side tool execution and the
  canonical result digest;
* :mod:`repro.campaign.engine` — the journal-driven scheduler and the
  resume path (``python -m repro campaign resume <id>``);
* :mod:`repro.campaign.report` — the deterministic report whose bytes
  a resumed campaign must reproduce exactly.
"""

from repro.campaign.engine import (
    CampaignEngine,
    CampaignError,
    default_journal_root,
    list_campaigns,
    load_campaign,
    plan_worker_faults,
)
from repro.campaign.journal import (
    Journal,
    JournalCorrupt,
    JournalState,
    read_records,
    replay,
)
from repro.campaign.report import (
    CAMPAIGN_SCHEMA_VERSION,
    CAMPAIGN_TOOL_NAME,
    CampaignReport,
    SchemaError,
    ShardEntry,
    validate_campaign_dict,
)
from repro.campaign.shard import execute_shard, result_digest
from repro.campaign.spec import CampaignSpec, CampaignTool, ShardSpec
from repro.campaign.supervisor import ShardOutcome, Supervisor

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CAMPAIGN_TOOL_NAME",
    "CampaignEngine",
    "CampaignError",
    "CampaignReport",
    "CampaignSpec",
    "CampaignTool",
    "Journal",
    "JournalCorrupt",
    "JournalState",
    "SchemaError",
    "ShardEntry",
    "ShardOutcome",
    "ShardSpec",
    "Supervisor",
    "default_journal_root",
    "execute_shard",
    "list_campaigns",
    "load_campaign",
    "plan_worker_faults",
    "read_records",
    "replay",
    "result_digest",
    "validate_campaign_dict",
]
